"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package installs in environments without the ``wheel`` module (offline
boxes), via ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    # `python -m repro --version` is the post-install sanity check; the
    # extras pull in what the test tiers and the perf benches need.
    extras_require={
        "test": ["pytest>=7"],
        "bench": ["pytest>=7", "pytest-benchmark"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
