"""Serving a live request stream with the WalkScheduler (PR 4).

Demonstrates the round-driven serving layer end to end:

1. open-loop Poisson traffic with a hot/cold source mixture and per-request
   deadlines, serviced in merged cohorts with budgeted maintenance;
2. what admission control does under overload (a tiny queue bound plus a
   drained shard → rejections instead of unbounded backlog);
3. the telemetry surfaces: scheduler stats, per-ticket outcomes, and the
   ledger's serve/pool-refill phase families balancing the session total.

Run with ``PYTHONPATH=src python examples/serve_traffic.py``.
"""

from __future__ import annotations

from repro import WalkEngine, random_regular_graph
from repro.serve import TrafficSpec, run_open_loop
from repro.util.rng import make_rng

N = 2000


def main() -> None:
    graph = random_regular_graph(N, 4, 7)
    engine = WalkEngine(graph, seed=7, record_paths=False, auto_maintain=False)
    scheduler = engine.scheduler(
        max_batch_requests=8,
        max_queue_depth=64,
        maintain_round_budget=128,   # deadline-driven: emptiest shard first
        default_deadline=6_000,      # simulated rounds, the paper's measure
    )

    print("== open-loop traffic: Poisson(3) arrivals/tick, 20% hot-source ==")
    spec = TrafficSpec(
        n=N, lengths=(256, 512), ks=(2, 4, 8), hot_fraction=0.2, hot_source=0
    )
    tickets = run_open_loop(scheduler, spec, make_rng(11), rate=3.0, ticks=12)
    stats = scheduler.stats()
    print(f"submitted {stats.submitted}, completed {stats.completed}, "
          f"rejected {stats.rejected}, deadline misses {stats.deadline_misses}")
    print(f"p50/p99 rounds-per-request: {stats.p50_rounds_per_request:.0f}/"
          f"{stats.p99_rounds_per_request:.0f}")
    print(f"p50/p99 latency (simulated rounds): {stats.p50_latency_rounds:.0f}/"
          f"{stats.p99_latency_rounds:.0f}")

    misses = [t for t in tickets if t.deadline_missed]
    if misses:
        t = misses[0]
        print(f"example miss: ticket {t.ticket_id} finished at round "
              f"{t.completed_round} vs deadline {t.deadline_round} — still served "
              f"(destinations {t.result.destinations})")

    print("\n== where the rounds went (session ledger) ==")
    ledger = engine.network.ledger
    for family in ("serve", "pool-refill"):
        print(f"  {family} family: {ledger.phase_total(family)} rounds")
    print(f"  per-request (report) total: {ledger.phase_rounds('report')} rounds")
    print(f"  session total: {engine.network.rounds} rounds")

    print("\n== per-ticket attribution: cohort shares sum exactly ==")
    done = [t for t in tickets if t.status == "done"][:5]
    for t in done:
        print(f"  ticket {t.ticket_id}: k={t.k} private {t.rounds:>3} rounds, "
              f"attributed {t.rounds_attributed:>4}, latency {t.latency_rounds}")

    print("\n== overload: tiny queue + tight deadlines → admission sheds load ==")
    overload = engine.scheduler(max_queue_depth=4, default_deadline=40)
    spec2 = TrafficSpec(n=N, lengths=(512,), ks=(8,), hot_fraction=1.0)
    run_open_loop(overload, spec2, make_rng(13), rate=6.0, ticks=6)
    st = overload.stats()
    print(f"submitted {st.submitted}, admitted {st.admitted}, "
          f"rejected {st.rejected} ({st.rejects_by_reason})")


if __name__ == "__main__":
    main()
