"""Three unequal tenants sharing one serving session — through churn and a crash.

Demonstrates the multi-tenant serving tier (PR 7) end to end:

1. a ``TenantRegistry`` with three clients — ``free`` (weight 1),
   ``pro`` (weight 4), and ``batch`` (weight 2, round-quota-metered) —
   attached to one ``WalkScheduler`` with walk-count cohort packing and
   the shared pipelined report phase;
2. saturating open-loop traffic from all three at once: deficit round
   robin splits served walks (and therefore attributed ledger rounds)
   by weight, while ``batch``'s token bucket throttles it whenever its
   attributed spend outruns its per-tick quota — deferred, never
   dropped;
3. the same stream continuing through a batched edge-churn event and a
   node crash/recover episode: evictions regenerate, the crashed
   source's tickets park and retry, and the extended ledger identity
   still balances *exactly* — Σ per-tenant attributed + maintain +
   churn + recovery = session delta.

Run with ``PYTHONPATH=src python examples/multi_tenant.py``.
"""

from __future__ import annotations

import numpy as np

from repro import WalkEngine, random_regular_graph
from repro.congest.faults import FaultSchedule, FaultStep
from repro.dynamic import sample_churn_delta
from repro.serve import TenantRegistry, TrafficSpec, run_tenant_loop

N = 2000


def tenant_table(stats) -> None:
    total = sum(t["rounds_attributed"] for t in stats.tenants.values()) or 1
    for name, t in stats.tenants.items():
        print(
            f"  {name:>5} (w={t['weight']:g}): walks {t['walks_served']:5d}  "
            f"attributed {t['rounds_attributed']:7d} ({t['rounds_attributed'] / total:5.1%})  "
            f"completed {t['completed']:3d}  throttled ticks {t['throttled_ticks']}"
        )


def main() -> None:
    graph = random_regular_graph(N, 4, 7)
    engine = WalkEngine(graph, seed=7, record_paths=False, auto_maintain=False)
    engine.prepare(length_hint=512)  # pool warm-up is session work, not serving
    snap = engine.network.ledger.capture()
    registry = TenantRegistry()
    registry.register("free", weight=1.0)
    registry.register("pro", weight=4.0)
    registry.register("batch", weight=2.0, quota=120)  # rounds per tick
    sched = engine.scheduler(
        tenants=registry,
        max_batch_walks=64,        # pack cohorts by Σk, split tickets that overflow
        pipelined_report=True,     # ONE height+Σk−1 convergecast per cohort
        maintain_round_budget=128,
        max_queue_depth=4096,
    )

    print("== saturating 3-tenant open loop (weights 1:4:2, batch quota-metered) ==")
    rng = np.random.default_rng(11)
    specs = [
        TrafficSpec(n=N, lengths=(256, 512), ks=(4, 8), tenant=name)
        for name in registry.order
    ]
    run_tenant_loop(sched, specs, rng, rate=6.0, ticks=30, drain=False)
    tenant_table(sched.stats())

    print("\n== a churn event mid-stream: evict exactly, regenerate, keep serving ==")
    delta = sample_churn_delta(
        engine.graph, rng, deletes=graph.m // 100, inserts=graph.m // 100
    )
    rep = engine.apply_churn(delta)
    print(
        f"  churn: {rep.edges_deleted} edges out / {rep.edges_inserted} in, "
        f"{rep.tokens_evicted} pooled tokens evicted, "
        f"{rep.tokens_regenerated} regenerated in {rep.regen_rounds} rounds"
    )

    print("\n== a crash/recover episode: parked tickets retry, never dropped ==")
    base = engine.network.rounds
    victim = int(specs[0].hot_source)  # node 0 — some queued walks start here
    engine.attach_faults(
        FaultSchedule(
            steps=(
                FaultStep(at_round=base, crash=(victim,)),
                FaultStep(at_round=base + 4_000, recover=(victim,)),
            )
        )
    )
    for name in registry.order:  # everyone wants the doomed source, urgently
        sched.submit([victim] * 4, 256, tenant=name, priority=-1)
    run_tenant_loop(sched, specs, rng, rate=1.0, ticks=10, drain=True)
    stats = sched.stats()
    print(
        f"  crashes/recoveries {stats.crashes_seen}/{stats.recoveries_seen}, "
        f"ticket retries {stats.ticket_retries}, recovery rounds {stats.recovery_rounds}"
    )
    tenant_table(stats)

    print("\n== the extended ledger identity, to the round ==")
    # Every simulated round since the post-warm-up snapshot is owned by
    # exactly one bucket: a tenant (its apportioned cohort share), the
    # maintenance sweeps, the churn cascade, or crash recovery.
    delta_r = engine.network.ledger.delta_since(snap)
    attributed = sum(t["rounds_attributed"] for t in stats.tenants.values())
    maintain = delta_r.phase_rounds.get("pool-refill/maintain", 0)
    churn = delta_r.phase_rounds.get("pool-refill/churn", 0)
    recovery = delta_r.phase_rounds.get("serve/recovery", 0)
    lhs = attributed + maintain + churn + recovery
    print(f"  Σ per-tenant attributed  {attributed}")
    print(f"  + maintain {maintain} + churn {churn} + recovery {recovery}")
    print(f"  = {lhs}  vs. session delta {delta_r.rounds}  -> balanced: {lhs == delta_r.rounds}")
    assert lhs == delta_r.rounds


if __name__ == "__main__":
    main()
