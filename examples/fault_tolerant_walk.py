#!/usr/bin/env python3
"""Random walks over lossy links (the paper's §5 'robust to failures' ask).

The paper closes by asking for walk algorithms that survive failures.
This demo runs the ACK/retransmit token walk of ``repro.congest.faults``
over links that drop messages with increasing probability, showing the
two facts that make the design right:

1. the walk's *law* is untouched — each hop is sampled once and the same
   choice is retransmitted until acknowledged, so reliability adds rounds,
   never bias;
2. the round cost inflates by roughly 1/(1−p)² per hop (token and ACK must
   both survive), a constant factor, not a blowup.

Run:  python examples/fault_tolerant_walk.py
"""

from __future__ import annotations

from repro.congest import reliable_walk
from repro.graphs import torus_graph
from repro.markov import WalkSpectrum
from repro.util.stats import total_variation_counts
from repro.util.tables import render_table


def main() -> None:
    graph = torus_graph(6, 6)
    length = 100
    trials = 200
    spec = WalkSpectrum(graph)
    exact = {v: float(p) for v, p in enumerate(spec.distribution(0, length)) if p > 1e-12}

    rows = []
    for p in (0.0, 0.1, 0.3, 0.5):
        total_rounds = 0
        total_retx = 0
        counts: dict[int, int] = {}
        for i in range(trials):
            proto, net = reliable_walk(
                graph, 0, length, drop_probability=p, seed=1000 + i, fault_seed=5000 + i
            )
            total_rounds += net.rounds
            total_retx += proto.retransmissions
            counts[proto.destination] = counts.get(proto.destination, 0) + 1
        tv = total_variation_counts(counts, exact)
        predicted = 1.0 / (1.0 - p) ** 2
        rows.append(
            (
                f"{p:.0%}",
                round(total_rounds / trials, 1),
                round((total_rounds / trials) / rows[0][1] if rows else 1.0, 2),
                f"{predicted:.2f}",
                round(total_retx / trials, 1),
                round(tv, 3),
            )
        )

    print(f"Reliable {length}-step walk on {graph.name}, {trials} trials per loss rate\n")
    print(
        render_table(
            ["loss rate", "avg rounds", "slowdown", "1/(1−p)²", "avg retransmissions", "TV to exact P^ℓ"],
            rows,
            title="Loss costs rounds, never correctness",
        )
    )
    print(
        "\nThe TV column is sampling noise (~0.14 at 200 samples over 36 nodes)"
        "\nand does not grow with the loss rate — the endpoint law is exact at"
        "\nevery p.  The measured slowdown stays *below* the naive 1/(1−p)²"
        "\nbound because the synchronous quiet-network signal detects a lost"
        "\nmessage in O(1) rounds instead of waiting out a fixed timeout."
    )


if __name__ == "__main__":
    main()
