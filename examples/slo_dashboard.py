"""Streaming SLOs + live dashboard on a stressed serve session — PR-10 tour.

Drives a three-tenant open-loop stream through a churn event and a
crash/recover episode while a :class:`~repro.obs.slo.SloMonitor` rolls
per-tenant sliding windows every scheduler tick:

1. declare SLOs up front — a pro-tenant latency burn-rate rule tuned
   tight enough that the crash episode fires it, plus a global
   reject-rate rule — and attach the monitor (with a tracer and a
   heatmap) in ONE call before any traffic;
2. serve tick by tick, rendering a dashboard frame after each tick:
   tenants × p50/p95 latency (exact fixed-bucket percentiles, in
   rounds), attributed rounds, quota debt, live burn rate, SLO badge,
   and any fire/resolve transitions from that tick;
3. show the alert history (edge-triggered: one fire, one resolve per
   episode) and the exact conservation identity on the congestion map
   that rode along;
4. everything is clocked in simulated rounds/ticks — rerunning this
   script reproduces the same percentiles, burn rates, and alert rounds
   bit-for-bit.

Run with ``PYTHONPATH=src python examples/slo_dashboard.py`` (in a color
terminal; pipe through ``cat`` to see the plain-text fallback).
"""

from __future__ import annotations

import dataclasses
import sys

import numpy as np

from repro import WalkEngine, random_regular_graph
from repro.congest.faults import FaultSchedule, FaultStep
from repro.dynamic import sample_churn_delta
from repro.obs import HeatmapSink, SloMonitor, SloSpec, Tracer, format_dashboard
from repro.obs.slo import ALL_TENANTS
from repro.serve import TenantRegistry, TrafficSpec, sample_request_args

N = 1_000
TICKS = 14
RATE = 2.0


def frame(sched, slo, new_alerts, *, color: bool) -> str:
    """One dashboard frame from live scheduler + monitor state."""
    rows = []
    for name in sched.tenants.order:
        tenant = sched.tenants.get(name)
        burn = max(
            (
                rule.last_burn
                for rule in slo._rules  # noqa: SLF001 - dashboards read live rule state
                if (rule.spec.tenant or ALL_TENANTS) in (name, ALL_TENANTS)
            ),
            default=0.0,
        )
        rows.append(
            {
                "tenant": name,
                "p50": slo.percentile(name, 0.50),
                "p95": slo.percentile(name, 0.95),
                "attributed": tenant.rounds_attributed,
                "quota_debt": max(0, -int(tenant.balance)),
                "status": slo.status(name),
                "burn": burn,
            }
        )
    return format_dashboard(
        tick=slo.last_tick,
        round_now=slo.last_round,
        queue_depth=slo.last_queue_depth,
        rows=rows,
        alerts=new_alerts,
        color=color,
    )


def main() -> None:
    color = sys.stdout.isatty()
    graph = random_regular_graph(N, 4, 7)
    engine = WalkEngine(graph, seed=7, record_paths=False, auto_maintain=False)

    print("== 1. declare SLOs, attach the monitor (one call, before traffic) ==")
    slo = SloMonitor(
        specs=[
            SloSpec.parse(
                "name=pro-lat,metric=latency,tenant=pro,"
                "target=2000,objective=0.25,burn=2,window=4,min_events=4"
            ),
            SloSpec.parse("name=rejects,metric=reject,objective=0.01,window=8"),
        ]
    )
    tracer, heatmap = Tracer(), HeatmapSink()
    engine.attach_observability(tracer=tracer, heatmap=heatmap, slo=slo)
    for spec in slo.specs:
        cell = dataclasses.asdict(spec)
        print(f"  {cell.pop('name')}: {cell}")

    print("\n== 2. serve: three tenants, churn at tick 4, crash at tick 6 ==")
    registry = TenantRegistry()
    registry.register("free", weight=1.0)
    registry.register("pro", weight=4.0)
    registry.register("batch", weight=2.0, quota=150)
    sched = engine.scheduler(
        tenants=registry,
        max_batch_walks=48,
        pipelined_report=True,
        maintain_round_budget=128,
        max_queue_depth=4096,
    )
    rng = np.random.default_rng(11)
    specs = [
        TrafficSpec(n=N, lengths=(256, 512), ks=(4, 8), tenant=name)
        for name in registry.order
    ]
    seen_alerts = 0
    for tick in range(TICKS):
        if tick == 4:
            engine.apply_churn(sample_churn_delta(engine.graph, rng, deletes=6, inserts=6))
        if tick == 6:
            base = engine.network.rounds
            engine.attach_faults(
                FaultSchedule(
                    steps=(
                        FaultStep(at_round=base, crash=(0,)),
                        FaultStep(at_round=base + 4_000, recover=(0,)),
                    )
                )
            )
            # victims aimed at the crashed node: their retries stretch the
            # pro latency tail and push the burn rate over threshold
            sched.submit([0] * 8, 512, tenant="pro", priority=-1)
        for spec in specs:
            for _ in range(int(rng.poisson(RATE))):
                sched.submit(**sample_request_args(spec, rng))
        sched.tick()
        new = slo.alerts[seen_alerts:]
        seen_alerts = len(slo.alerts)
        print(frame(sched, slo, new, color=color))
        print()
    while sched.queue_depth:
        sched.tick()
        new = slo.alerts[seen_alerts:]
        seen_alerts = len(slo.alerts)
        if new:
            print(frame(sched, slo, new, color=color))
            print()

    print("== 3. alert history (edge-triggered fire/resolve episodes) ==")
    for alert in slo.alerts:
        print(
            f"  {alert.kind:>7} {alert.spec} [{alert.tenant}] tick {alert.tick} "
            f"round {alert.round} burn {alert.burn:.2f} ({alert.bad}/{alert.total} bad)"
        )
    assert any(a.kind == "fire" for a in slo.alerts), "expected the crash to fire pro-lat"

    print("\n== 4. the congestion map that rode along conserves exactly ==")
    ledger = engine.network.ledger
    for phase, stats in ledger.phases.items():
        assert heatmap.attributed_messages(phase) == stats.messages, phase
    print(
        f"  located {heatmap.located_messages()} + retired {heatmap.retired_messages()} "
        f"+ residual {heatmap.residual_messages()} == ledger {ledger.messages} messages"
    )
    hot = heatmap.top_edges(3)
    print("  hottest edges: " + ", ".join(
        f"{row['src']}->{row['dst']} ({row['messages']} msgs)" for row in hot
    ))
    stats = sched.stats()
    print(
        f"  completed {stats.completed}/{stats.submitted} tickets over "
        f"{engine.network.rounds} rounds; {len(slo.alerts)} alert transitions"
    )


if __name__ == "__main__":
    main()
