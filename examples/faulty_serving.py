"""Serving exact walks while nodes crash and recover underneath (PR 6).

Demonstrates the crash-fault-tolerant serving surface end to end:

1. one ad-hoc crash/recover episode through ``engine.apply_faults`` —
   the victim's incident edges delete atomically (weights saved), its
   resident pooled tokens evict, the affected shards regenerate on the
   degraded topology, and recovery restores the exact former edges;
2. a ticket whose source is down when it reaches the head of the queue:
   parked, retried after the scheduled recovery, never dropped;
3. a scheduler draining a request stream over a seeded
   connectivity-preserving ``FaultSchedule`` — in-flight walks recover
   from surviving prefixes, every recovery round bills to
   ``"serve/recovery"``, and the session ledger still balances exactly:
   Σ attributed + maintain + churn + recovery = session delta.

Run with ``PYTHONPATH=src python examples/faulty_serving.py``.
"""

from __future__ import annotations

from repro import WalkEngine, random_regular_graph
from repro.congest.faults import FaultSchedule, FaultStep
from repro.engine.faults import RECOVERY_PHASE

N = 2000


def main() -> None:
    graph = random_regular_graph(N, 4, 7)
    engine = WalkEngine(graph, seed=7, record_paths=True, auto_maintain=False)
    engine.prepare(lam=5)
    engine.walk(0, 256)  # warm serving before anything fails

    print("== one crash/recover episode ==")
    victim = 42
    rep = engine.apply_faults(FaultStep(at_round=0, crash=(victim,)))
    print(f"node {victim} crashed: {rep.edges_deleted} edges down, "
          f"{rep.tokens_evicted}/{rep.tokens_scanned} pooled tokens evicted "
          f"({rep.tokens_lost_at_crashed} were resident at the victim), "
          f"{rep.tokens_regenerated} regenerated in {rep.regen_rounds} rounds")
    res = engine.walk(0, 256)  # exact P^l on the degraded graph
    print(f"serving continues around the hole: destination={res.destination}")
    rep = engine.apply_faults(FaultStep(at_round=0, recover=(victim,)))
    print(f"node {victim} recovered: {rep.edges_restored} edges restored, "
          f"degree back to {engine.graph.degree(victim)}\n")

    print("== a crashed source is parked, retried, never dropped ==")
    engine2 = WalkEngine(random_regular_graph(N, 4, 7), seed=13,
                         record_paths=True, auto_maintain=False)
    engine2.prepare(lam=5)
    base = engine2.network.rounds
    engine2.attach_faults(FaultSchedule(steps=(
        FaultStep(at_round=base, crash=(5,)),
        FaultStep(at_round=base + 2_000, recover=(5,)),
    )))
    sched = engine2.scheduler(max_batch_requests=2)
    parked = sched.submit([5], 128)     # source is about to crash
    live = sched.submit([0], 128)
    sched.drain()
    print(f"ticket on crashed source: status={parked.status}, "
          f"retries={parked.retries}; live ticket: status={live.status}\n")

    print("== draining a stream over a seeded fault schedule ==")
    engine3 = WalkEngine(random_regular_graph(N, 4, 7), seed=17,
                         record_paths=True, auto_maintain=False)
    engine3.prepare(lam=5)
    base = engine3.network.rounds
    engine3.attach_faults(FaultSchedule.sample(
        engine3.graph, crashes=10, start_round=base + 50,
        end_round=base + 30_000, recover_after=2_000, seed=23))
    sched = engine3.scheduler(max_batch_requests=4, maintain_round_budget=128,
                              default_deadline=40_000)
    snap = engine3.network.ledger.capture()
    tickets = [sched.submit([(i * 131) % N], 256) for i in range(12)]
    sched.drain()
    stats = sched.stats()
    delta = engine3.network.ledger.delta_since(snap)
    attributed = sum(t.rounds_attributed for t in tickets)
    maintain = delta.phase_rounds.get("pool-refill/maintain", 0)
    churn = delta.phase_rounds.get("pool-refill/churn", 0)
    recovery = delta.phase_rounds.get(RECOVERY_PHASE, 0)
    print(f"completed {stats.completed}/{stats.submitted} "
          f"(misses={stats.deadline_misses}, drops=0 by construction)")
    print(f"crashes={stats.crashes_seen} recoveries={stats.recoveries_seen} "
          f"walks recovered={stats.walks_recovered} restarted={stats.walks_restarted}")
    print(f"recovery bill: {recovery} rounds "
          f"(retries={stats.ticket_retries}, backoff waits={stats.backoff_waits})")
    print(f"ledger identity: {attributed} attributed + {maintain} maintain "
          f"+ {churn} churn + {recovery} recovery = {attributed + maintain + churn + recovery} "
          f"vs session delta {delta.rounds} -> "
          f"{'EXACT' if attributed + maintain + churn + recovery == delta.rounds else 'MISMATCH'}")


if __name__ == "__main__":
    main()
