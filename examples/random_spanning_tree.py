#!/usr/bin/env python3
"""Random spanning trees, distributed (Section 4.1 / Theorem 4.1).

Samples a uniform spanning tree of a grid with the distributed
Aldous–Broder algorithm, shows the doubling schedule and the round bill,
renders the tree as ASCII art, and sanity-checks uniformity on a small
graph against the exact matrix–tree law and Wilson's independent sampler.

Run:  python examples/random_spanning_tree.py
"""

from __future__ import annotations

from collections import Counter

from repro import WalkEngine
from repro.apps import random_spanning_tree, wilson_tree
from repro.graphs import complete_graph, diameter, grid_graph, tree_probabilities
from repro.util.rng import make_rng
from repro.util.stats import total_variation
from repro.util.tables import render_table


def render_grid_tree(rows: int, cols: int, edges: set[tuple[int, int]]) -> str:
    """ASCII rendering of a spanning tree on a grid graph."""
    lines = []
    for r in range(rows):
        horiz = []
        for c in range(cols):
            v = r * cols + c
            horiz.append("o")
            if c + 1 < cols:
                horiz.append("---" if (v, v + 1) in edges else "   ")
        lines.append("".join(horiz))
        if r + 1 < rows:
            vert = []
            for c in range(cols):
                v = r * cols + c
                vert.append("|" if (v, v + cols) in edges else " ")
                if c + 1 < cols:
                    vert.append("   ")
            lines.append("".join(vert))
    return "\n".join(lines)


def main() -> None:
    rows, cols = 7, 7
    graph = grid_graph(rows, cols)
    print(f"Sampling a uniform spanning tree of {graph.name} "
          f"(n={graph.n}, m={graph.m}, D={diameter(graph)})\n")

    result = WalkEngine(graph, seed=7).spanning_tree()
    print(render_grid_tree(rows, cols, set(result.tree)))
    print()
    print(
        render_table(
            ["phase ℓ", "walks", "covered?", "rounds"],
            [(p.length, p.walks, p.covered, p.rounds) for p in result.phases],
            title=(
                f"Doubling schedule — total {result.rounds} rounds, cover time "
                f"{result.cover_time} (naive cover walk alone would cost "
                f"{result.cover_time} rounds)"
            ),
        )
    )

    # Uniformity sanity-check on K4 (16 spanning trees, exactly enumerable).
    print("\nUniformity check on K4 (1000 samples per sampler):")
    k4 = complete_graph(4)
    expected = tree_probabilities(k4)
    rng = make_rng(3)
    distributed = Counter(
        random_spanning_tree(k4, seed=100 + i, initial_length=64).tree for i in range(1000)
    )
    wilson = Counter(wilson_tree(k4, 0, rng) for _ in range(1000))
    for name, counts in [("distributed Aldous-Broder", distributed), ("Wilson", wilson)]:
        emp = {t: c / 1000 for t, c in counts.items()}
        print(f"  {name:<28} distinct trees: {len(counts):>2}/16   "
              f"TV to uniform: {total_variation(emp, expected):.3f}")


if __name__ == "__main__":
    main()
