#!/usr/bin/env python3
"""The Section-3 lower bound, end to end (Figures 1 and 3–5, Theorems 3.2/3.7).

Walks through the construction: builds ``G_n`` (a long path woven under a
logarithmic-diameter binary tree), shows its structural annotations
(left/right leaf sets, breakpoints), runs the interval-merging verifier on
the planted path, and finally runs the weighted-walk reduction showing a
random walk on ``G'_n`` is forced along the path — so verifying the walk is
as hard as PATH-VERIFICATION.

Run:  python examples/lower_bound_demo.py
"""

from __future__ import annotations

from repro.graphs import build_lower_bound_graph, diameter, round_bound
from repro.lowerbound import (
    IntervalMergingVerifier,
    PathVerificationInstance,
    simulate_reduction,
)
from repro.util.tables import render_table


def main() -> None:
    inst = build_lower_bound_graph(512)
    g = inst.graph
    print(f"G_n: path of n'={inst.n_prime} vertices + binary tree with k'={inst.k_prime} leaves")
    print(f"     total {g.n} nodes, {g.m} edges, diameter {diameter(g)} (O(log n) by design)")
    print(f"     k (round parameter) = {inst.k}")
    print(f"     left subtree serves {len(inst.left_path_nodes())} path nodes, "
          f"right serves {len(inst.right_path_nodes())}")
    print(f"     breakpoints: {len(inst.left_breakpoints())} left, "
          f"{len(inst.right_breakpoints())} right "
          "(path nodes unreachable within k hops from the opposite side)\n")

    pv = PathVerificationInstance.from_lower_bound(inst)
    result = IntervalMergingVerifier(pv).run()
    curve = round_bound(pv.length)
    print(
        render_table(
            ["quantity", "value"],
            [
                ["path length ℓ", pv.length],
                ["verified", result.verified],
                ["verifying node", result.verifier_node],
                ["measured rounds", result.rounds],
                ["Ω(√(ℓ/log ℓ)) curve", f"{curve:.1f}"],
                ["trivial O(ℓ) algorithm", pv.length],
                ["messages exchanged", result.messages],
            ],
            title="PATH-VERIFICATION on G_n (interval-merging verifier)",
        )
    )
    growth = result.coverage_history
    milestones = [growth[i] for i in range(0, len(growth), max(1, len(growth) // 8))]
    print(f"\nLargest verified segment per ~eighth of the run: {milestones}")

    print("\nReduction (Theorem 3.7): weighted G'_n forces the walk onto P —")
    report = simulate_reduction(256, trials=25, seed=3)
    print(f"  walk followed the full path in {report.follow_fraction:.0%} of trials "
          f"(theory: ≥ {1 - 1 / 256:.2%})")
    print(f"  verifying the realized walk costs {report.verification_rounds} rounds "
          f"(curve: {report.lower_bound_curve:.1f}, diameter: {report.diameter_bound})")
    print("\nConclusion: any walk algorithm that certifies positions inherits the "
          "Ω(√(ℓ/log ℓ) + D) bound — the paper's Õ(√(ℓD)) upper bound is near-tight in ℓ.")


if __name__ == "__main__":
    main()
