#!/usr/bin/env python3
"""Decentralized mixing-time estimation (Section 4.2 / Theorem 4.6).

A network that can estimate its own mixing time can monitor its
connectivity and expansion without any central coordinator — the paper's
"topologically (self-)aware networks" motivation.  This example runs the
estimator on three topologies with very different mixing behaviour
(expander / torus / barbell), compares against the exact spectral values,
and derives the spectral-gap and conductance intervals of §4.2.

Run:  python examples/mixing_time_estimation.py
"""

from __future__ import annotations

from repro import WalkEngine
from repro.apps import power_iteration_mixing_time
from repro.graphs import barbell_graph, random_regular_graph, torus_graph
from repro.markov import conductance_exact, exact_mixing_time, spectral_gap
from repro.util.tables import render_table


def main() -> None:
    cases = [
        ("expander: random 4-regular (n=32)", random_regular_graph(32, 4, 9)),
        ("moderate: torus 5x5", torus_graph(5, 5)),
        ("bottlenecked: barbell(8,1)", barbell_graph(8, 1)),
    ]

    rows = []
    detail_rows = []
    for name, graph in cases:
        exact = exact_mixing_time(graph, 0)
        est = WalkEngine(graph, seed=11).mixing_time(0)
        base_tau, base_rounds = power_iteration_mixing_time(graph, 0)
        rows.append((name, exact, est.estimate, est.rounds, base_rounds))
        gap_iv = est.spectral_gap_bounds(graph.n)
        gap = spectral_gap(graph)
        phi = conductance_exact(graph, max_nodes=32) if graph.n <= 18 else None
        detail_rows.append(
            (
                name,
                f"{gap:.4f}",
                str(gap_iv),
                "-" if phi is None else f"{phi:.4f}",
                str(est.conductance_bounds(graph.n)),
            )
        )

    print(
        render_table(
            ["topology", "τ_mix exact", "τ̃ estimated", "est. rounds", "power-iter rounds"],
            rows,
            title="Mixing-time estimation: sampled walks vs exact vs power iteration",
        )
    )
    print()
    print(
        render_table(
            ["topology", "gap exact", "gap interval from τ̃", "Φ exact", "Φ interval from τ̃"],
            detail_rows,
            title="Derived network-health metrics (§4.2: 1/τ ≤ 1−λ₂ ≤ ln n/τ; Cheeger)",
        )
    )
    print(
        "\nReading: the barbell's tiny spectral gap / conductance interval flags"
        "\nits bottleneck edge — exactly the 'critical link' detection that"
        "\ntopology-aware networks use these estimates for."
    )


if __name__ == "__main__":
    main()
