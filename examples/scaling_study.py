#!/usr/bin/env python3
"""Scaling study: recover the paper's exponents from measurements.

Sweeps walk lengths on a low-diameter network and fits power laws to the
measured round counts of the three algorithms — the empirical counterpart
of the Õ(√(ℓD)) vs Õ(ℓ^{2/3}D^{1/3}) vs O(ℓ) comparison — then locates
the naive-vs-stitched crossover as a function of the diameter.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

from repro.graphs import diameter, hypercube_graph, torus_graph
from repro.util.fitting import fit_power_law
from repro.util.tables import render_table
from repro.walks import naive_random_walk, podc09_random_walk, single_random_walk


def main() -> None:
    graph = hypercube_graph(7)
    d = diameter(graph)
    lengths = [500, 1000, 2000, 4000, 8000, 16000]

    rows = []
    series = {"new": [], "podc09": [], "naive": []}
    for length in lengths:
        new = single_random_walk(graph, 0, length, seed=1, record_paths=False)
        old = podc09_random_walk(graph, 0, length, seed=1, record_paths=False)
        naive = naive_random_walk(graph, 0, length, seed=1, record_paths=False)
        series["new"].append(new.rounds)
        series["podc09"].append(old.rounds)
        series["naive"].append(naive.rounds)
        rows.append((length, new.rounds, old.rounds, naive.rounds))

    print(
        render_table(
            ["ℓ", "this paper", "PODC'09", "naive"],
            rows,
            title=f"Rounds vs walk length on {graph.name} (D={d})",
        )
    )

    print("\nFitted round-complexity exponents (theory: 0.50 / 0.67 / 1.00):")
    for name, theory in [("new", 0.5), ("podc09", 2 / 3), ("naive", 1.0)]:
        fit = fit_power_law(lengths, series[name])
        print(f"  {name:<8} rounds ~ ℓ^{fit.exponent:.3f}   (theory ℓ^{theory:.2f}, R²={fit.r_squared:.4f})")

    print("\nCrossover vs diameter (where the stitched algorithm starts to win):")
    for side in (4, 8, 16):
        g = torus_graph(side, side)
        dg = diameter(g)
        crossover = None
        length = max(4, dg)
        while length <= 65536 and crossover is None:
            new = single_random_walk(g, 0, length, seed=2, record_paths=False)
            if new.rounds < length:
                crossover = length
            length *= 2
        print(f"  torus({side}x{side})  D={dg:>2}  ->  first win at ℓ≈{crossover}  (ℓ/D≈{crossover // dg})")


if __name__ == "__main__":
    main()
