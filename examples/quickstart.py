#!/usr/bin/env python3
"""Quickstart: sample a long random walk in far fewer rounds than its length.

Builds a 16x16 torus (n=256, diameter 16), asks for an 8192-step random
walk from node 0 through the :class:`~repro.engine.core.WalkEngine`
façade, and compares the paper's Õ(√(ℓD)) algorithm against the naive
ℓ-round token walk and the PODC'09 baseline — printing the round bill for
each, plus the stitched algorithm's phase breakdown.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import WalkEngine
from repro.graphs import diameter, torus_graph
from repro.util.tables import render_table


def main() -> None:
    graph = torus_graph(16, 16)
    length = 8192
    print(f"Graph: {graph.name}  (n={graph.n}, m={graph.m}, D={diameter(graph)})")
    print(f"Task:  sample the endpoint of an {length}-step random walk from node 0\n")

    # One engine per algorithm: identical seed, independent ledgers, so the
    # round bills are an apples-to-apples comparison.
    result = WalkEngine(graph, seed=42).walk(0, length, pooled=False)
    naive = WalkEngine(graph, seed=42).walk(
        0, length, algorithm="naive", record_paths=False, report_to_source=False
    )
    podc09 = WalkEngine(graph, seed=42).walk(0, length, algorithm="podc09", record_paths=False)

    print(
        render_table(
            ["algorithm", "rounds", "speedup vs naive"],
            [
                ["SINGLE-RANDOM-WALK (this paper)", result.rounds, f"{naive.rounds / result.rounds:.1f}x"],
                ["PODC'09 baseline", podc09.rounds, f"{naive.rounds / podc09.rounds:.1f}x"],
                ["naive token walk", naive.rounds, "1.0x"],
            ],
            title="Round complexity",
        )
    )

    print()
    print(
        render_table(
            ["phase", "rounds"],
            sorted(result.phase_rounds.items(), key=lambda kv: -kv[1]),
            title="Where the stitched algorithm's rounds go",
        )
    )

    # The walk is exact: the recorded trajectory is a genuine 8192-step walk.
    result.verify_positions(graph)
    print(
        f"\nDestination: node {result.destination}; trajectory verified "
        f"({len(result.segments)} stitched segments of length in "
        f"[{result.lam}, {2 * result.lam - 1}], "
        f"{result.get_more_walks_calls} GET-MORE-WALKS refills)."
    )
    print("\nServing many queries on one graph?  Hold the engine: see")
    print("examples/engine_sessions.py for the persistent-pool session API.")


if __name__ == "__main__":
    main()
