"""A traced serving session, from attach to Perfetto — the PR-9 obs tour.

Walks through the whole observability loop on one multi-tenant session:

1. attach a :class:`~repro.obs.trace.Tracer` and a
   :class:`~repro.obs.metrics.MetricsRegistry` with ONE call —
   ``engine.attach_observability`` — before any traffic;
2. serve a two-tenant open-loop stream through a churn event and a
   crash/recover episode, exactly as an untraced session would (the
   observer is passive: same rounds, same destinations, same ledger);
3. show the trace *balancing* against the ledger: every simulated round
   since attach is owned by exactly one phase span (or the explicit
   unattributed bucket), globally and per phase name;
4. export — Chrome trace JSON for Perfetto, JSONL for ad-hoc tooling,
   Prometheus text for scrapers — and print the built-in summary.

Run with ``PYTHONPATH=src python examples/traced_serving.py``; then open
``traced_serving.trace.json`` at https://ui.perfetto.dev (or
``chrome://tracing``).  The timeline shows three named tracks — ledger
phases (nested serve/maintain/refill spans), request scopes (cohorts and
tickets, labeled with tenant + ticket id), and events (churn, crash,
recover) — with 1 simulated round rendered as 1 µs, so ruler distances
read directly in rounds.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import WalkEngine, random_regular_graph
from repro.congest.faults import FaultSchedule, FaultStep
from repro.dynamic import sample_churn_delta
from repro.obs import MetricsRegistry, Tracer, format_report, load_spans, summarize
from repro.serve import TenantRegistry, TrafficSpec, run_tenant_loop

N = 1_000
OUT = Path("traced_serving")


def main() -> None:
    graph = random_regular_graph(N, 4, 7)
    engine = WalkEngine(graph, seed=7, record_paths=False, auto_maintain=False)

    print("== 1. attach observability (one call, before any traffic) ==")
    tracer, metrics = Tracer(), MetricsRegistry()
    engine.attach_observability(tracer=tracer, metrics=metrics)
    print(f"  ledger observer installed at round {tracer.attached_round}")

    print("\n== 2. serve: two tenants, a churn event, a crash/recover episode ==")
    registry = TenantRegistry()
    registry.register("free", weight=1.0)
    registry.register("pro", weight=4.0)
    sched = engine.scheduler(
        tenants=registry,
        max_batch_walks=64,
        pipelined_report=True,
        maintain_round_budget=128,
        max_queue_depth=4096,
    )
    rng = np.random.default_rng(11)
    specs = [
        TrafficSpec(n=N, lengths=(256, 512), ks=(4, 8), tenant=name)
        for name in registry.order
    ]
    run_tenant_loop(sched, specs, rng, rate=3.0, ticks=10, drain=False)
    engine.apply_churn(sample_churn_delta(engine.graph, rng, deletes=8, inserts=8))
    base = engine.network.rounds
    engine.attach_faults(
        FaultSchedule(
            steps=(
                FaultStep(at_round=base, crash=(0,)),
                FaultStep(at_round=base + 3_000, recover=(0,)),
            )
        )
    )
    for name in registry.order:
        sched.submit([0] * 4, 256, tenant=name, priority=-1)
    run_tenant_loop(sched, specs, rng, rate=1.0, ticks=6, drain=True)
    stats = sched.stats()
    print(
        f"  completed {stats.completed}/{stats.submitted} tickets, "
        f"crashes/recoveries {stats.crashes_seen}/{stats.recoveries_seen}, "
        f"{engine.network.rounds} rounds total"
    )

    print("\n== 3. the trace balances against the ledger, to the round ==")
    ledger = engine.network.ledger
    lhs = tracer.total_self_rounds() + tracer.unattributed_rounds
    rhs = ledger.rounds - tracer.attached_round
    print(f"  Σ span self_rounds + unattributed = {lhs}  vs  ledger delta {rhs}")
    assert lhs == rhs
    per = tracer.self_rounds_by_phase()
    assert all(per.get(n, 0) == cell.rounds for n, cell in ledger.phases.items())
    print(f"  per-phase identity holds for all {len(ledger.phases)} phases")

    print("\n== 4. export: Perfetto, JSONL, Prometheus — plus the summary ==")
    chrome = tracer.write(OUT.with_suffix(".trace.json"))
    jsonl = tracer.write(OUT.with_suffix(".trace.jsonl"))
    prom = metrics.write(OUT.with_suffix(".prom"))
    print(f"  wrote {chrome} ({len(tracer.spans)} spans, {tracer.dropped} dropped)")
    print(f"  wrote {jsonl} and {prom} ({len(metrics)} metric series)")
    print(f"  -> open {chrome} at https://ui.perfetto.dev\n")
    print(format_report(summarize(load_spans(chrome))))


if __name__ == "__main__":
    main()
