#!/usr/bin/env python3
"""Session serving: one engine, one Phase-1 pool, a stream of queries.

The follow-up paper (arXiv:1201.1363) frames the short-walk pool as a
*served* resource: prepare it once, answer a stream of walk requests,
refill incrementally.  This example runs 50 walk queries two ways —

* **fresh** — one ``single_random_walk`` call per query (every call pays
  the full Θ(η·m) Phase-1 token preparation);
* **session** — one :class:`~repro.engine.core.WalkEngine` serving every
  query from its persistent pool, refilling dry connectors with
  GET-MORE-WALKS (charged to the ``"pool-refill"`` ledger phase);

then prints the amortized per-query round bill and the engine telemetry.

Run:  python examples/engine_sessions.py
"""

from __future__ import annotations

from repro import WalkEngine, single_random_walk
from repro.graphs import torus_graph
from repro.util.tables import render_table


def main() -> None:
    graph = torus_graph(12, 12)
    length = 1024
    queries = 50
    sources = [(13 * i) % graph.n for i in range(queries)]

    fresh_rounds = sum(
        single_random_walk(graph, s, length, seed=100 + i, record_paths=False).rounds
        for i, s in enumerate(sources)
    )

    engine = WalkEngine(graph, seed=100, record_paths=False)
    engine.prepare(length_hint=length)  # explicit warm-up (optional)
    session_rounds = sum(engine.walk(s, length).rounds for s in sources)
    stats = engine.stats()

    print(
        render_table(
            ["strategy", "total rounds", "rounds / query"],
            [
                ["fresh call per query", fresh_rounds, f"{fresh_rounds / queries:.0f}"],
                ["engine session (pooled)", session_rounds, f"{session_rounds / queries:.0f}"],
            ],
            title=f"{queries} x {length}-step walks on {graph.name}",
        )
    )

    print()
    print(
        render_table(
            ["telemetry", "value"],
            [
                ["full Phase-1 preparations", stats.full_preparations],
                ["GET-MORE-WALKS refills", stats.refills],
                ["tokens prepared", stats.tokens_prepared],
                ["tokens consumed", stats.tokens_consumed],
                ["pool occupancy now", stats.pool_unused],
                ["pool λ", stats.pool_lam],
                ["refill rounds charged", stats.phase_rounds.get("pool-refill", 0)],
            ],
            title="engine.stats()",
        )
    )

    speedup = fresh_rounds / session_rounds
    print(
        f"\nThe session amortizes Phase 1 across the stream: "
        f"{speedup:.1f}x fewer simulated rounds than {queries} fresh calls, "
        f"with {stats.full_preparations} full preparation(s) total."
    )


if __name__ == "__main__":
    main()
