"""Serving exact walks while the graph churns underneath (PR 5).

Demonstrates the ``repro.dynamic`` subsystem end to end:

1. a warm engine absorbs a batched edge delta through ``apply_churn`` —
   the vectorized path scan evicts exactly the invalidated pool tokens
   and the charged regeneration sweep (``pool-refill/churn``) restores
   the affected shards on the *new* topology;
2. the incremental path vs. the naive alternative: what discarding the
   pool and re-running Phase 1 would have cost in simulated rounds;
3. a scheduler serving an open-loop request stream with Poisson edge
   churn interleaved between ticks — deadlines, admission, maintenance,
   and churn all drawing from one session ledger that balances exactly.

Run with ``PYTHONPATH=src python examples/dynamic_churn.py``.
"""

from __future__ import annotations

from repro import WalkEngine, random_regular_graph
from repro.dynamic import ChurnSpec, run_churn_loop, sample_churn_delta
from repro.serve import TrafficSpec
from repro.util.rng import make_rng

N = 2000


def main() -> None:
    graph = random_regular_graph(N, 4, 7)
    engine = WalkEngine(graph, seed=7, record_paths=True, auto_maintain=False)
    engine.prepare(lam=5)
    engine.walk(0, 256)  # warm serving before the topology moves

    print("== one batched churn event: 1% of the edges ==")
    changes = graph.m // 100
    delta = sample_churn_delta(
        graph, make_rng(11), deletes=changes // 2, inserts=changes - changes // 2
    )
    report = engine.apply_churn(delta)
    print(f"churned {report.edges_deleted}+{report.edges_inserted} edges "
          f"({report.mutated_nodes} mutated endpoints)")
    print(f"evicted {report.tokens_evicted}/{report.tokens_scanned} pooled tokens "
          f"({report.tokens_evicted / max(1, report.tokens_scanned):.0%}), "
          f"regenerated {report.tokens_regenerated} in {report.regen_rounds} rounds")
    rebuild = WalkEngine(engine.graph, seed=7, record_paths=True, auto_maintain=False)
    base = rebuild.network.rounds
    rebuild.prepare(lam=5)
    print(f"naive discard-and-re-prepare would have cost "
          f"{rebuild.network.rounds - base} rounds "
          f"({(rebuild.network.rounds - base) / max(1, report.rounds):.1f}x more)")
    res = engine.walk(3, 256)
    print(f"serving continues on the new graph: mode={res.mode}, "
          f"destination={res.destination}\n")

    print("== scheduled serving under continuous churn ==")
    engine2 = WalkEngine(random_regular_graph(N, 4, 7), seed=13,
                         record_paths=True, auto_maintain=False)
    engine2.prepare(lam=5)
    sched = engine2.scheduler(max_batch_requests=8, maintain_round_budget=128,
                              default_deadline=8_000)
    traffic = TrafficSpec(n=N, lengths=(256, 512), ks=(2, 4), hot_fraction=0.2)
    churn = ChurnSpec(delete_rate=2.0, insert_rate=2.0)
    tickets, reports = run_churn_loop(
        sched, traffic, churn, make_rng(29), rate=3.0, ticks=12
    )
    stats = sched.stats()
    est = engine2.stats()
    print(f"completed {stats.completed}/{stats.submitted} requests through "
          f"{est.churn_events} churn events "
          f"({est.churn_tokens_evicted} tokens evicted, "
          f"{est.churn_tokens_regenerated} regenerated)")
    print(f"deadline misses: {stats.deadline_misses}, "
          f"p99 rounds-per-request: {stats.p99_rounds_per_request:.0f}")
    churn_rounds = est.phase_rounds.get("pool-refill/churn", 0)
    maintain_rounds = est.phase_rounds.get("pool-refill/maintain", 0)
    print(f"ledger: churn regeneration {churn_rounds} rounds, "
          f"background maintenance {maintain_rounds} rounds, "
          f"session total {engine2.network.rounds} rounds")


if __name__ == "__main__":
    main()
