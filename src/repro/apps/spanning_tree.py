"""Section 4.1: distributed random spanning trees in Õ(√(mD)) rounds.

Distributed simulation of Aldous–Broder, exactly as the paper schedules it:

* pick a root, set ``ℓ = n``;
* each *phase*, run ``⌈log₂ n⌉`` independent walks of length ``ℓ`` from the
  root (one MANY-RANDOM-WALKS call — this is where the √(ℓD) speedup
  enters), then check in ``O(D)`` whether any walk covered all nodes
  (a convergecast of per-walk visit bits);
* no cover → double ``ℓ`` and repeat; cover → regenerate the covering walk
  so every node knows its visit positions, let each non-root node pick the
  edge of its first visit (one local round), output the tree.

The doubling halts w.h.p. once ``ℓ`` reaches ~2× the cover time
``τ = O(mD)``, and each phase costs ``Õ(√(ℓD))``, giving Theorem 4.1's
``Õ(√(mD))`` total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.apps.wilson import cover_time_of, first_entry_tree
from repro.congest.network import Network
from repro.congest.phases import (
    PHASE1,
    RST_COVER_CHECK,
    RST_PICK_EDGES,
    RST_REGENERATE,
    RST_SETUP,
)
from repro.congest.primitives import BfsTree, build_bfs_tree, charged_convergecast
from repro.engine.model import ResultBase
from repro.errors import ConvergenceError, GraphError
from repro.graphs.graph import Graph
from repro.graphs.spanning import TreeKey, canonical_tree
from repro.util.rng import make_rng
from repro.walks.many_walks import many_random_walks

__all__ = ["PhaseRecord", "RSTResult", "random_spanning_tree"]


@dataclass(frozen=True)
class PhaseRecord:
    """One doubling phase of the RST schedule."""

    length: int
    walks: int
    covered: bool
    rounds: int


@dataclass
class RSTResult(ResultBase):
    """A sampled spanning tree plus the full cost breakdown.

    ``rounds``/``mode``/``phase_rounds`` come from
    :class:`~repro.engine.model.ResultBase` (``mode`` is ``"rst"``; the
    phase breakdown covers this request only, even on a shared network).
    """

    root: int
    tree: TreeKey
    phases: list[PhaseRecord] = field(default_factory=list)
    cover_time: int = 0
    final_length: int = 0

    @property
    def edges(self) -> list[tuple[int, int]]:
        return list(self.tree)


def _cover_check(
    network: Network,
    tree: BfsTree,
    trajectories: list[np.ndarray],
    n: int,
) -> int | None:
    """Which walk (if any) covered all nodes; charged as one convergecast.

    Each node holds one visited-bit per walk (``⌈log₂ n⌉`` bits — a single
    O(log n)-word), so the AND-aggregation is one sweep: ``height`` rounds.
    """
    k = len(trajectories)
    visited = np.zeros((n, k), dtype=bool)
    for j, traj in enumerate(trajectories):
        visited[np.unique(traj), j] = True
    values = [tuple(bool(b) for b in visited[v]) for v in range(n)]
    combined = charged_convergecast(
        network,
        tree,
        values,
        lambda a, b: tuple(x and y for x, y in zip(a, b)),
        words=1,
    )
    for j, all_visited in enumerate(combined):
        if all_visited:
            return j
    return None


def random_spanning_tree(
    graph: Graph,
    *,
    root: int = 0,
    seed=None,
    walks_per_phase: int | None = None,
    initial_length: int | None = None,
    max_phases: int = 40,
    lambda_constant: float = 1.0,
    network: Network | None = None,
) -> RSTResult:
    """Sample a uniform random spanning tree, distributedly.

    Defaults follow the paper: ``⌈log₂ n⌉`` walks per phase starting at
    ``ℓ = n``.  Raises :class:`ConvergenceError` if ``max_phases``
    doublings never produce a covering walk (pathological only: the
    schedule reaches 4× the cover time in ``O(log τ)`` phases w.h.p.).
    """
    if graph.n < 2:
        raise GraphError("spanning tree needs at least 2 nodes")
    if not 0 <= root < graph.n:
        raise GraphError(f"root {root} out of range")
    rng = make_rng(seed)
    net = network if network is not None else Network(graph, seed=rng)
    rounds_before = net.rounds
    ledger_before = net.ledger.capture()
    k = walks_per_phase if walks_per_phase is not None else max(1, math.ceil(math.log2(graph.n)))
    length = initial_length if initial_length is not None else graph.n

    tree_cache: dict[int, BfsTree] = {}
    with net.phase(RST_SETUP):
        bfs = build_bfs_tree(net, root, cache=tree_cache)

    phases: list[PhaseRecord] = []
    for _ in range(max_phases):
        phase_start = net.rounds
        walk_rng = rng.integers(0, 2**63 - 1)
        result = many_random_walks(
            graph,
            [root] * k,
            length,
            seed=int(walk_rng),
            lambda_constant=lambda_constant,
            record_paths=True,
            report_to_source=False,
            network=net,
        )
        assert result.positions is not None
        with net.phase(RST_COVER_CHECK):
            winner = _cover_check(net, bfs, result.positions, graph.n)
        phases.append(
            PhaseRecord(
                length=length,
                walks=k,
                covered=winner is not None,
                rounds=net.rounds - phase_start,
            )
        )
        if winner is None:
            length *= 2
            continue

        trajectory = result.positions[winner]
        cover_time = cover_time_of(trajectory, graph.n)
        assert cover_time is not None
        truncated = trajectory[: cover_time + 1]

        with net.phase(RST_REGENERATE):
            # Every node must learn its first-visit position.  The paper
            # charges this at most one Phase-1 equivalent (§2.2); for the
            # naive-parallel mode the token already told every node.
            if result.mode == "stitched":
                phase1 = net.ledger.phases.get(PHASE1)
                net.ledger.charge(phase1.rounds if phase1 else 0, messages=0, congestion=1)

        with net.phase(RST_PICK_EDGES):
            # Each non-root node asks the neighbor visited just before its
            # first visit for the shared edge — one local exchange round.
            net.ledger.charge(1, messages=graph.n - 1, congestion=1)
        edges = first_entry_tree(truncated, graph.n)
        if not graph.subgraph_is_spanning_tree(edges):
            raise GraphError("first-entry edges do not form a spanning tree (bug)")
        return RSTResult(
            root=root,
            tree=canonical_tree(edges),
            mode="rst",
            rounds=net.rounds - rounds_before,
            phase_rounds=dict(net.ledger.delta_since(ledger_before).phase_rounds),
            phases=phases,
            cover_time=cover_time,
            final_length=length,
        )

    raise ConvergenceError(
        f"no covering walk after {max_phases} doubling phases (reached length {length})"
    )
