"""Distribution identity testing against the stationary law (Batu et al.).

Theorem 4.5 (their result, restated in the paper): with ``Õ(√n·poly(1/ε))``
samples from an unknown distribution ``X`` one can PASS w.h.p. when
``|X−Y|₁`` is tiny and FAIL w.h.p. when ``|X−Y|₁ ≥ 6ε``, for a *known*
``Y``.  Appendix C.1 sketches the mechanics we implement:

* **bucketing** — nodes are grouped by their stationary probability into
  geometric buckets; the source only ever needs the exact total mass of the
  ``Õ(√n)`` buckets its samples touch (recoverable by broadcast+upcast in
  ``O(D + #buckets)`` rounds since every node knows its own π);
* **bucket-mass comparison** — empirical vs. exact bucket masses (an ℓ₁
  lower bound on the true distance; catches skew mismatches);
* **collision statistics** — an unbiased estimate of ``‖X−Y‖₂²`` from
  within-sample collision counts and cross-terms, which upper-bounds TV via
  ``TV ≤ ½·√(n·‖X−Y‖₂²)`` (catches mismatches the buckets cannot see —
  e.g. on regular graphs where every node falls into one bucket).

The verdict statistic is ``max(bucketed-TV, ½√(n·‖X−Y‖₂²-estimate))``, an
empirical proxy for TV.  Proof constants are impractical at simulation
scale; the defaults below are calibrated so the mixing-time sandwich of
Theorem 4.6 holds empirically on our graph families (see
``tests/test_mixing_time.py``), and both the threshold and sample count are
exposed for callers who want the asymptotic regime.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError

__all__ = ["TesterVerdict", "BucketingIdentityTester", "recommended_sample_count"]


def recommended_sample_count(n: int, *, constant: float = 12.0) -> int:
    """The ``Õ(√n)`` sample budget used per identity test."""
    if n < 2:
        raise GraphError("need n >= 2")
    return max(64, math.ceil(constant * math.sqrt(n) * math.log(n)))


@dataclass(frozen=True)
class TesterVerdict:
    """Outcome of one identity test."""

    passed: bool
    statistic: float
    threshold: float
    n_samples: int
    bucket_tv: float
    l2_upper: float


class BucketingIdentityTester:
    """Test whether samples come from a known reference distribution.

    Parameters
    ----------
    reference:
        The known distribution ``Y`` over ``{0..n-1}`` (for the mixing
        application: the stationary law, which every node knows locally).
    threshold:
        PASS when the TV-proxy statistic falls below this.  The mixing
        estimator sets it from its target ``ε`` (in the paper's ℓ₁ scale:
        ``threshold = ℓ₁-target / 2`` since TV = ℓ₁/2).
    bucket_ratio:
        Geometric bucket width (nodes with π in ``(r^{-(j+1)}, r^{-j}]``
        share bucket ``j``).
    """

    def __init__(
        self,
        reference: Sequence[float] | np.ndarray,
        *,
        threshold: float,
        bucket_ratio: float = 2.0,
    ) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        if ref.ndim != 1 or len(ref) < 2:
            raise GraphError("reference must be a 1-D distribution over >= 2 items")
        if np.any(ref < 0) or not np.isclose(ref.sum(), 1.0, atol=1e-8):
            raise GraphError("reference must be a probability distribution")
        if threshold <= 0:
            raise GraphError("threshold must be positive")
        if bucket_ratio <= 1:
            raise GraphError("bucket_ratio must exceed 1")
        self.reference = ref
        self.threshold = float(threshold)
        self.n = len(ref)
        with np.errstate(divide="ignore"):
            raw = np.floor(-np.log(np.where(ref > 0, ref, 1.0)) / math.log(bucket_ratio))
        self.bucket_of = np.where(ref > 0, raw, -1).astype(np.int64)
        self.bucket_mass: dict[int, float] = {}
        for b in np.unique(self.bucket_of):
            self.bucket_mass[int(b)] = float(ref[self.bucket_of == b].sum())
        self.ref_l2_sq = float(np.sum(ref * ref))

    # ------------------------------------------------------------------
    def bucket_statistic(self, samples: np.ndarray) -> float:
        """Bucketed total-variation: ``½ Σ_b |emp(b) − mass(b)|``."""
        counts = Counter(int(self.bucket_of[s]) for s in samples)
        k = len(samples)
        stat = 0.0
        seen = set()
        for b, c in counts.items():
            stat += abs(c / k - self.bucket_mass.get(b, 0.0))
            seen.add(b)
        for b, mass in self.bucket_mass.items():
            if b not in seen:
                stat += mass
        return 0.5 * stat

    def l2_statistic(self, samples: np.ndarray) -> float:
        """Unbiased estimate of ``‖X−Y‖₂²`` from collisions and cross-terms.

        ``‖X‖₂²`` is estimated by the sample collision rate
        ``#{i<j : s_i = s_j} / C(K,2)``; ``⟨X,Y⟩`` by the sample mean of
        ``Y(s_i)``; ``‖Y‖₂²`` is exact.
        """
        k = len(samples)
        if k < 2:
            raise GraphError("l2 statistic needs at least 2 samples")
        counts = np.bincount(samples, minlength=self.n)
        collisions = float(np.sum(counts * (counts - 1)) / 2.0)
        x_l2_sq = collisions / (k * (k - 1) / 2.0)
        cross = float(np.mean(self.reference[samples]))
        return x_l2_sq - 2.0 * cross + self.ref_l2_sq

    def test(self, samples: Sequence[int] | np.ndarray) -> TesterVerdict:
        """Run the combined test; PASS iff the TV proxy is below threshold."""
        arr = np.asarray(samples, dtype=np.int64)
        if arr.ndim != 1 or len(arr) < 2:
            raise GraphError("need at least 2 samples")
        if np.any(arr < 0) or np.any(arr >= self.n):
            raise GraphError("samples out of range")
        bucket_tv = self.bucket_statistic(arr)
        l2_sq = self.l2_statistic(arr)
        l2_upper = 0.5 * math.sqrt(max(l2_sq, 0.0) * self.n)
        statistic = max(bucket_tv, l2_upper)
        return TesterVerdict(
            passed=statistic < self.threshold,
            statistic=statistic,
            threshold=self.threshold,
            n_samples=len(arr),
            bucket_tv=bucket_tv,
            l2_upper=l2_upper,
        )

    # ------------------------------------------------------------------
    def aggregation_rounds(self, tree_height: int, samples: int) -> int:
        """CONGEST cost of recovering the needed bucket masses (App. C.3).

        The source broadcasts the bucket IDs it drew (≤ min(samples,
        #buckets) distinct values) and upcasts each bucket's exact count —
        ``O(D + #buckets)`` pipelined rounds.
        """
        distinct = min(samples, len(self.bucket_mass))
        return 2 * tree_height + distinct
