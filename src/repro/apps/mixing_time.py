"""Section 4.2: decentralized mixing-time estimation.

Given a source ``x``, estimate ``τ̃`` with ``τ^x_mix ≤ τ̃ ≤ τ^x(ε)``
(Theorem 4.6) using only random-walk samples and tree aggregation:

1. for a candidate length ``ℓ``, draw ``K = Õ(√n)`` endpoint samples of
   ℓ-step walks from ``x`` via MANY-RANDOM-WALKS (the speedup that makes
   this estimator beat the ``Õ(τ)`` power-iteration alternative when
   ``τ = ω(√n)``);
2. test the samples against the stationary law with the Batu-style
   identity tester (each node knows its own π locally — no global data
   movement beyond bucket counts);
3. double ``ℓ`` while the test FAILs, then binary-search the PASS boundary
   (legitimate because ``‖π_x(t) − π‖₁`` is monotone in ``t``, Lemma 4.4).

The module also provides the comparison baseline
(:func:`power_iteration_mixing_time`): propagate the full distribution one
step per round (the Kempe–McSherry-style direct approach the paper quotes
as ``Õ(τ^x_mix)``) and watch the ℓ₁ error decay — used by the E9 bench to
reproduce the "faster when τ = ω(√n)" comparison.  Spectral-gap and
conductance interval estimates follow from the mixing estimate via
:mod:`repro.markov.spectral`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.apps.distribution_test import (
    BucketingIdentityTester,
    TesterVerdict,
    recommended_sample_count,
)
from repro.congest.network import Network
from repro.congest.phases import (
    BASELINE_POWER_ITERATION,
    BASELINE_SETUP,
    MIXING_BUCKET_UPCAST,
    MIXING_SETUP,
)
from repro.congest.primitives import BfsTree, build_bfs_tree
from repro.engine.model import ResultBase
from repro.errors import ConvergenceError, GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import is_bipartite
from repro.markov.chain import stationary_distribution
from repro.markov.spectral import (
    SpectralEstimate,
    conductance_bounds_from_mixing,
    gap_bounds_from_mixing,
)
from repro.util.rng import make_rng
from repro.walks.many_walks import many_random_walks

__all__ = ["MixingProbe", "MixingTimeEstimate", "estimate_mixing_time", "power_iteration_mixing_time"]


@dataclass(frozen=True)
class MixingProbe:
    """One tested walk length."""

    length: int
    verdict: TesterVerdict
    rounds: int


@dataclass
class MixingTimeEstimate(ResultBase):
    """Result of the decentralized estimation.

    ``estimate`` is the first length at which the identity test PASSes
    (the paper's ``τ̃``); the theorem guarantees it sandwiches between
    ``τ^x_mix`` and ``τ^x(ε)`` w.h.p.  ``rounds``/``mode``/``phase_rounds``
    come from :class:`~repro.engine.model.ResultBase` (``mode`` is
    ``"mixing"``; the breakdown covers this request only).
    """

    source: int
    estimate: int
    samples_per_test: int
    probes: list[MixingProbe] = field(default_factory=list)

    def spectral_gap_bounds(self, n: int) -> SpectralEstimate:
        """``1/τ̃ ≤ 1−λ₂ ≤ log n / τ̃`` (Section 4.2's closing remark)."""
        return gap_bounds_from_mixing(self.estimate, n)

    def conductance_bounds(self, n: int) -> SpectralEstimate:
        """Jerrum–Sinclair interval for the conductance."""
        return conductance_bounds_from_mixing(self.estimate, n)


def estimate_mixing_time(
    graph: Graph,
    source: int,
    *,
    seed=None,
    samples: int | None = None,
    threshold: float | None = None,
    max_length: int | None = None,
    lambda_constant: float = 1.0,
    network: Network | None = None,
) -> MixingTimeEstimate:
    """Estimate ``τ^x_mix`` from node ``source``; see module docstring.

    ``threshold`` is in TV scale (= ℓ₁/2); the default ``1/(4e)`` is half
    the mixing definition's ``ℓ₁ < 1/2e``, splitting the PASS/FAIL margin
    symmetrically.  ``max_length`` guards against non-mixing inputs
    (default ``16·n³``, beyond any connected graph's mixing time scale).
    """
    if not 0 <= source < graph.n:
        raise GraphError(f"source {source} out of range")
    if is_bipartite(graph):
        raise GraphError("mixing time undefined on bipartite graphs (Section 4.2)")
    rng = make_rng(seed)
    net = network if network is not None else Network(graph, seed=rng)
    rounds_before = net.rounds
    ledger_before = net.ledger.capture()
    k = samples if samples is not None else recommended_sample_count(graph.n)
    if k < 2:
        raise GraphError("need at least 2 samples per test")
    theta = threshold if threshold is not None else 1.0 / (4.0 * math.e)
    limit = max_length if max_length is not None else 16 * graph.n**3

    pi = stationary_distribution(graph)
    tester = BucketingIdentityTester(pi, threshold=theta)
    tree_cache: dict[int, BfsTree] = {}
    with net.phase(MIXING_SETUP):
        tree = build_bfs_tree(net, source, cache=tree_cache)

    probes: list[MixingProbe] = []

    def probe(length: int) -> TesterVerdict:
        start = net.rounds
        result = many_random_walks(
            graph,
            [source] * k,
            length,
            seed=int(rng.integers(0, 2**63 - 1)),
            lambda_constant=lambda_constant,
            record_paths=False,
            report_to_source=True,
            network=net,
        )
        verdict = tester.test(np.asarray(result.destinations, dtype=np.int64))
        with net.phase(MIXING_BUCKET_UPCAST):
            net.ledger.charge(
                tester.aggregation_rounds(tree.height, k),
                messages=graph.n,
                congestion=1,
            )
        probes.append(MixingProbe(length=length, verdict=verdict, rounds=net.rounds - start))
        return verdict

    # Doubling until the first PASS.
    length = 1
    verdict = probe(length)
    while not verdict.passed:
        length *= 2
        if length > limit:
            raise ConvergenceError(
                f"no PASS up to length {limit}; graph may be too slowly mixing"
            )
        verdict = probe(length)

    # Binary search for the PASS boundary in (length/2, length].
    lo, hi = length // 2, length
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid).passed:
            hi = mid
        else:
            lo = mid

    return MixingTimeEstimate(
        source=source,
        estimate=hi,
        mode="mixing",
        rounds=net.rounds - rounds_before,
        phase_rounds=dict(net.ledger.delta_since(ledger_before).phase_rounds),
        samples_per_test=k,
        probes=probes,
    )


def power_iteration_mixing_time(
    graph: Graph,
    source: int,
    *,
    epsilon_l1: float = 1.0 / (2.0 * math.e),
    max_steps: int | None = None,
    network: Network | None = None,
) -> tuple[int, int]:
    """Baseline: propagate the distribution one step per round until mixed.

    Every node holds its current probability mass and pushes the per-edge
    share to each neighbor each round (one ``O(log n)``-bit value per edge
    — the same idealization as Kempe–McSherry's ``Õ(τ)`` algorithm).  The
    ℓ₁ distance to π is convergecast at power-of-two checkpoints.

    Returns ``(mixing_estimate, rounds_charged)``.
    """
    if not 0 <= source < graph.n:
        raise GraphError(f"source {source} out of range")
    if is_bipartite(graph):
        raise GraphError("mixing time undefined on bipartite graphs")
    net = network if network is not None else Network(graph)
    rounds_before = net.rounds
    limit = max_steps if max_steps is not None else 16 * graph.n**3

    pi = stationary_distribution(graph)
    mass = np.zeros(graph.n)
    mass[source] = 1.0
    inv_wdeg = 1.0 / graph.weighted_degrees

    tree_cache: dict[int, BfsTree] = {}
    with net.phase(BASELINE_SETUP):
        tree = build_bfs_tree(net, source, cache=tree_cache)

    next_check = 1
    step = 0
    with net.phase(BASELINE_POWER_ITERATION):
        while step < limit:
            # One distributed averaging step: every edge carries one value.
            contrib = mass[graph.csr_source] * graph.csr_weight * inv_wdeg[graph.csr_source]
            new_mass = np.zeros(graph.n)
            np.add.at(new_mass, graph.csr_target, contrib)
            mass = new_mass
            step += 1
            net.ledger.charge(1, messages=graph.n_slots, congestion=1)
            if step == next_check:
                net.ledger.charge(tree.height, messages=graph.n - 1, congestion=1)
                if float(np.abs(mass - pi).sum()) < epsilon_l1:
                    return step, net.rounds - rounds_before
                next_check *= 2
    raise ConvergenceError(f"baseline did not mix within {limit} steps")
