"""Section-4 applications: random spanning trees and mixing-time estimation."""

from repro.apps.distribution_test import (
    BucketingIdentityTester,
    TesterVerdict,
    recommended_sample_count,
)
from repro.apps.mixing_time import (
    MixingProbe,
    MixingTimeEstimate,
    estimate_mixing_time,
    power_iteration_mixing_time,
)
from repro.apps.spanning_tree import PhaseRecord, RSTResult, random_spanning_tree
from repro.apps.wilson import aldous_broder_tree, cover_time_of, first_entry_tree, wilson_tree

__all__ = [
    "BucketingIdentityTester",
    "TesterVerdict",
    "recommended_sample_count",
    "MixingProbe",
    "MixingTimeEstimate",
    "estimate_mixing_time",
    "power_iteration_mixing_time",
    "PhaseRecord",
    "RSTResult",
    "random_spanning_tree",
    "aldous_broder_tree",
    "cover_time_of",
    "first_entry_tree",
    "wilson_tree",
]
