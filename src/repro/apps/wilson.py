"""Centralized uniform spanning-tree samplers (cross-check baselines).

Two classical exact-uniform samplers used as ground truth against the
distributed algorithm of Theorem 4.1:

* :func:`aldous_broder_tree` — the very algorithm the paper distributes
  (first-entry edges of a walk run until cover), so matching its output law
  validates the distributed simulation end-to-end;
* :func:`wilson_tree` — loop-erased random walks (Wilson 1996), an
  *algorithmically independent* uniform sampler, so agreement is evidence
  of correctness rather than of shared bugs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.spanning import TreeKey, canonical_tree
from repro.util.rng import make_rng

__all__ = ["aldous_broder_tree", "wilson_tree", "first_entry_tree", "cover_time_of"]


def first_entry_tree(positions: np.ndarray | list[int], n: int) -> list[tuple[int, int]]:
    """First-entrance edges of a covering trajectory (Aldous–Broder rule).

    For each non-start node ``v`` first visited at step ``t``, the tree
    edge is ``(positions[t−1], v)``.  Raises when the trajectory does not
    cover all ``n`` nodes.
    """
    seen = {int(positions[0])}
    edges: list[tuple[int, int]] = []
    for t in range(1, len(positions)):
        v = int(positions[t])
        if v not in seen:
            seen.add(v)
            edges.append((int(positions[t - 1]), v))
    if len(seen) != n:
        raise GraphError(f"trajectory covers {len(seen)}/{n} nodes; no spanning tree")
    return edges


def cover_time_of(positions: np.ndarray | list[int], n: int) -> int | None:
    """First step index at which all ``n`` nodes have been seen (None if never)."""
    seen: set[int] = set()
    for t, node in enumerate(positions):
        seen.add(int(node))
        if len(seen) == n:
            return t
    return None


def aldous_broder_tree(graph: Graph, root: int, rng=None) -> tuple[TreeKey, int]:
    """Run a walk from ``root`` until cover; return (canonical tree, cover time)."""
    rng = make_rng(rng)
    current = root
    seen = {root}
    edges: list[tuple[int, int]] = []
    steps = 0
    # Walk until all nodes are covered; expected time O(mD) (Aleliunas et al.).
    while len(seen) < graph.n:
        nxt = graph.random_neighbor(current, rng)
        steps += 1
        if nxt not in seen:
            seen.add(nxt)
            edges.append((current, nxt))
        current = nxt
    return canonical_tree(edges), steps


def wilson_tree(graph: Graph, root: int = 0, rng=None) -> TreeKey:
    """Wilson's loop-erased-walk uniform spanning tree sampler."""
    rng = make_rng(rng)
    in_tree = np.zeros(graph.n, dtype=bool)
    in_tree[root] = True
    successor: dict[int, int] = {}
    for start in range(graph.n):
        if in_tree[start]:
            continue
        # Random walk from `start` with on-the-fly loop erasure: keep only
        # the latest successor choice per node; the surviving chain is the
        # loop-erased path once the walk hits the tree.
        node = start
        while not in_tree[node]:
            successor[node] = graph.random_neighbor(node, rng)
            node = successor[node]
        node = start
        while not in_tree[node]:
            in_tree[node] = True
            node = successor[node]
    edges = [(v, successor[v]) for v in range(graph.n) if v != root and v in successor and in_tree[v]]
    # Nodes added in earlier iterations keep their recorded successor; all
    # non-root nodes must have one.
    if len(edges) != graph.n - 1:
        raise GraphError("Wilson sampler produced a non-tree (bug)")
    return canonical_tree(edges)
