"""The invariant rules the analyzer enforces.

Each rule encodes one standing invariant from ROADMAP.md as a source-level
check (the static-analysis move of distributed-systems tooling: the
protocol's accounting discipline becomes a checkable property of the
*code*, not just of one test run):

``phase-registry``
    Every ledger phase name must be a constant from
    :mod:`repro.congest.phases`.  A typo'd phase string silently opens a
    fresh phase and leaks rounds out of the family a balance identity or
    telemetry sum is watching.
``bulk-only``
    Token creation goes through ``WalkStore.add_batch`` — a per-record
    ``add_token`` (or a store-column ``append``) inside a loop is the
    exact regression the columnar engine removed.
``seeded-rng``
    All randomness flows through the seeded ``numpy`` Generator plumbing
    of :mod:`repro.util.rng`; module-global ``random.*`` / ``np.random.*``
    state or a bare ``default_rng()`` breaks bit-reproducible replays.
``fast-path-pairing``
    Every ``@charged_fast_path`` marker names a pytest node that exists —
    the equivalence proof cannot silently rot away.
``capture-balance``
    ``RoundLedger.capture()`` and ``delta_since()`` come in pairs within a
    scope; a lone capture is dead accounting, a lone ``delta_since``
    measures against someone else's baseline.
``dead-import``
    The dependency-free dead-import walk formerly inlined in
    ``tests/test_lint.py``.
``obs-passivity``
    The observability layer observes; it never perturbs.  Wall-clock
    reads inside ``src/repro`` go through the audited wrapper
    ``repro.obs.clock`` only, and code under ``src/repro/obs/`` never
    calls simulation mutators (``charge``, ``add_batch``, eviction,
    topology refresh, ...) or draws randomness — either would change
    golden ledgers or replay streams the moment tracing is switched on.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.core import Finding, Rule, SourceFile, attr_chain
from repro.congest.phases import is_registered

__all__ = [
    "BulkOnlyRule",
    "CaptureBalanceRule",
    "DeadImportRule",
    "FastPathPairingRule",
    "ObsPassivityRule",
    "PhaseRegistryRule",
    "SeededRngRule",
    "default_rules",
]

#: Paths under this marker get the stricter "use the constant" treatment.
_PRODUCTION_MARKER = ("src", "repro")


def _in_production_tree(path: Path) -> bool:
    parts = path.resolve().parts
    for i in range(len(parts) - 1):
        if parts[i : i + 2] == _PRODUCTION_MARKER:
            return True
    return False


def _in_obs_tree(path: Path) -> bool:
    parts = path.resolve().parts
    for i in range(len(parts) - 2):
        if parts[i : i + 3] == ("src", "repro", "obs"):
            return True
    return False


class PhaseRegistryRule(Rule):
    """Ledger phase names must come from :mod:`repro.congest.phases`."""

    name = "phase-registry"
    description = (
        "ledger.phase()/phase_rounds()/phase_total() literals must be phases "
        "registered in repro.congest.phases (and, in src/repro, spelled via "
        "the constants)"
    )

    #: Methods whose first argument is a phase (or family) name.
    PHASE_METHODS = frozenset({"phase", "phase_rounds", "phase_total"})
    #: Mapping attributes whose ``.get(...)`` / ``[...]`` key is a phase name.
    PHASE_MAPPINGS = frozenset({"phases", "phase_rounds", "phase_messages"})

    def applies_to(self, path: Path) -> bool:
        # The registry itself is where the strings are *defined*.
        return not path.as_posix().endswith("congest/phases.py")

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        findings: list[Finding] = []
        strict = _in_production_tree(src.path)

        def inspect(node: ast.AST, literal: ast.expr, where: str) -> None:
            if not (isinstance(literal, ast.Constant) and isinstance(literal.value, str)):
                return
            name = literal.value
            if not is_registered(name):
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"phase literal {name!r} in {where} is not registered in "
                        "repro.congest.phases (typo'd phases silently leak rounds)",
                    )
                )
            elif strict:
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"raw phase literal {name!r} in {where}: use the "
                        "repro.congest.phases constant",
                    )
                )

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr in self.PHASE_METHODS and node.args:
                        inspect(node, node.args[0], f"{func.attr}() call")
                    elif (
                        func.attr == "get"
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr in self.PHASE_MAPPINGS
                        and node.args
                    ):
                        inspect(node, node.args[0], f"{func.value.attr}.get() lookup")
                for kw in node.keywords:
                    if kw.arg and (kw.arg == "phase" or kw.arg.endswith("_phase")):
                        inspect(node, kw.value, f"keyword {kw.arg}=")
            elif isinstance(node, ast.Subscript):
                if (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr in self.PHASE_MAPPINGS
                ):
                    inspect(node, node.slice, f"{node.value.attr}[...] lookup")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                params = args.posonlyargs + args.args + args.kwonlyargs
                defaults = (
                    [None] * (len(args.posonlyargs) + len(args.args) - len(args.defaults))
                    + list(args.defaults)
                    + list(args.kw_defaults)
                )
                for param, default in zip(params, defaults):
                    if default is None:
                        continue
                    pname = param.arg
                    if pname == "phase" or pname.endswith("_phase"):
                        inspect(default, default, f"default of parameter {pname!r}")
        return findings


class BulkOnlyRule(Rule):
    """Token creation inside loops must use ``WalkStore.add_batch``."""

    name = "bulk-only"
    description = (
        "no per-record WalkStore.add_token / store-column append inside "
        "for/while bodies — bulk paths go through add_batch"
    )

    #: Receiver chain segments that identify a walk store / pool object.
    STORE_HINTS = ("store", "pool")

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        findings: list[Finding] = []

        def looks_like_store(parts: tuple[str, ...]) -> bool:
            return any(
                part == hint or part.endswith(hint)
                for part in parts
                for hint in self.STORE_HINTS
            )

        def visit(node: ast.AST, in_loop: bool) -> None:
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                chain = attr_chain(node.func)
                receiver = tuple(chain.split(".")[:-1])
                if in_loop and attr == "add_token":
                    findings.append(
                        self.finding(
                            src,
                            node,
                            "per-record add_token inside a loop: build columns and "
                            "hand them over in ONE WalkStore.add_batch call",
                        )
                    )
                elif in_loop and attr in ("append", "extend") and looks_like_store(receiver):
                    findings.append(
                        self.finding(
                            src,
                            node,
                            f"per-record {chain}(...) inside a loop mutates store "
                            "columns record-by-record: use WalkStore.add_batch",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                child_in_loop = in_loop
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    child_in_loop = True
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    # A nested function defined in a loop body is not itself
                    # per-record work; its own loops are walked fresh.
                    visit(child, False)
                else:
                    visit(child, child_in_loop)

        visit(src.tree, False)
        return findings


class SeededRngRule(Rule):
    """All randomness must flow through the seeded RNG plumbing."""

    name = "seeded-rng"
    description = (
        "no module-global random.*/np.random.* state, bare default_rng(), or "
        "time.time() outside util/rng.py — randomness must be seed-derived"
    )

    #: ``np.random`` attributes that are seeded-constructor surfaces, not
    #: global-state draws.
    ALLOWED_NP_RANDOM = frozenset(
        {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
    )
    CLOCK_CALLS = frozenset({"time.time", "time.time_ns"})

    def applies_to(self, path: Path) -> bool:
        # The plumbing module itself is where seeds meet numpy.
        return not path.as_posix().endswith("util/rng.py")

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        findings: list[Finding] = []
        stdlib_random_names = {"random"}  # receiver spellings of the stdlib module

        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                findings.append(
                    self.finding(
                        src,
                        node,
                        "stdlib `random` is process-global unseeded state: draw from "
                        "a numpy Generator via repro.util.rng instead",
                    )
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_random_names.add(alias.asname or "random")

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain:
                continue
            parts = chain.split(".")
            if chain in self.CLOCK_CALLS:
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() is nondeterministic wall-clock state: thread a "
                        "seed (or the session RNG) through instead",
                    )
                )
            elif len(parts) == 2 and parts[0] in stdlib_random_names:
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() draws from the process-global stdlib RNG: use "
                        "the seeded numpy Generator plumbing (repro.util.rng)",
                    )
                )
            elif (
                len(parts) >= 3
                and parts[-3:-1] in (["np", "random"], ["numpy", "random"])
                and parts[-1] not in self.ALLOWED_NP_RANDOM
            ):
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() uses numpy's module-global RNG state: draw from "
                        "a Generator created by repro.util.rng",
                    )
                )
            elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        src,
                        node,
                        "bare default_rng() seeds from the OS and breaks replays: "
                        "pass an explicit seed or use repro.util.rng.make_rng",
                    )
                )
        return findings


class FastPathPairingRule(Rule):
    """``@charged_fast_path`` markers must name equivalence tests that exist."""

    name = "fast-path-pairing"
    description = (
        "every @charged_fast_path(equivalence_test=...) names a pytest node "
        "(literal 'tests/file.py::test_name') that exists"
    )

    def __init__(self) -> None:
        self._test_names: dict[Path, set[str] | None] = {}

    def _names_in(self, test_file: Path) -> set[str] | None:
        """Test function names defined in ``test_file`` (None: unreadable)."""
        cached = self._test_names.get(test_file)
        if cached is not None or test_file in self._test_names:
            return cached
        names: set[str] | None
        try:
            tree = ast.parse(test_file.read_text())
        except (OSError, SyntaxError, UnicodeDecodeError):
            names = None
        else:
            names = {
                n.name
                for n in ast.walk(tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
        self._test_names[test_file] = names
        return names

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                if not isinstance(deco, ast.Call):
                    continue
                if attr_chain(deco.func).split(".")[-1] != "charged_fast_path":
                    continue
                kw = next((k for k in deco.keywords if k.arg == "equivalence_test"), None)
                if kw is None or not (
                    isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str)
                ):
                    findings.append(
                        self.finding(
                            src,
                            deco,
                            f"@charged_fast_path on {node.name!r} needs a literal "
                            "equivalence_test='tests/file.py::test_name'",
                        )
                    )
                    continue
                node_id = kw.value.value
                rel, _, test_part = node_id.partition("::")
                test_name = test_part.split("::")[-1]
                if not test_part or not test_name:
                    findings.append(
                        self.finding(
                            src,
                            deco,
                            f"equivalence_test {node_id!r} on {node.name!r} is not a "
                            "'path::test_name' pytest node id",
                        )
                    )
                    continue
                test_file = root / rel
                names = self._names_in(test_file)
                if names is None:
                    findings.append(
                        self.finding(
                            src,
                            deco,
                            f"equivalence test file {rel!r} named by {node.name!r} "
                            "does not exist (or cannot be parsed)",
                        )
                    )
                elif test_name not in names:
                    findings.append(
                        self.finding(
                            src,
                            deco,
                            f"equivalence test {test_name!r} not found in {rel!r}: "
                            f"the fast path {node.name!r} has lost its proof",
                        )
                    )
        return findings


class CaptureBalanceRule(Rule):
    """``ledger.capture()`` and ``ledger.delta_since()`` pair up per scope."""

    name = "capture-balance"
    description = (
        "a scope calling RoundLedger.capture() must also call delta_since() "
        "(and vice versa) — unpaired calls are broken per-request accounting"
    )

    def applies_to(self, path: Path) -> bool:
        # The ledger defines both methods; it does not consume them.
        return not path.as_posix().endswith("congest/ledger.py")

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        findings: list[Finding] = []

        def scan_scope(scope: ast.AST, label: str) -> None:
            captures: list[ast.Call] = []
            deltas: list[ast.Call] = []

            def visit(node: ast.AST) -> None:
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    parts = attr_chain(node.func).split(".")
                    if "ledger" in parts[:-1]:
                        if node.func.attr == "capture":
                            captures.append(node)
                        elif node.func.attr == "delta_since":
                            deltas.append(node)
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        scan_scope(child, child.name)
                    else:
                        visit(child)

            for stmt in ast.iter_child_nodes(scope):
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_scope(stmt, stmt.name)
                else:
                    visit(stmt)
            if captures and not deltas:
                findings.append(
                    self.finding(
                        src,
                        captures[0],
                        f"{label} captures the ledger but never calls delta_since(): "
                        "the snapshot is dead accounting",
                    )
                )
            elif deltas and not captures:
                findings.append(
                    self.finding(
                        src,
                        deltas[0],
                        f"{label} calls delta_since() without its own capture(): the "
                        "delta is measured against someone else's baseline",
                    )
                )

        scan_scope(src.tree, "module scope")
        return findings


class DeadImportRule(Rule):
    """Every top-level import must be referenced outside the import itself."""

    name = "dead-import"
    description = (
        "names bound by top-level imports must be used somewhere outside the "
        "import statement (package __init__ re-export modules are exempt)"
    )

    def applies_to(self, path: Path) -> bool:
        # Re-export modules: imports exist to populate __all__.
        return path.name != "__init__.py"

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        import_spans: list[tuple[int, int]] = []
        bound: list[tuple[str, int]] = []  # (name, first import line)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                import_spans.append((node.lineno, node.end_lineno or node.lineno))
                for alias in node.names:
                    bound.append((alias.asname or alias.name.split(".")[0], node.lineno))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                import_spans.append((node.lineno, node.end_lineno or node.lineno))
                for alias in node.names:
                    if alias.name != "*":
                        bound.append((alias.asname or alias.name, node.lineno))

        def inside_import(lineno: int) -> bool:
            return any(lo <= lineno <= hi for lo, hi in import_spans)

        findings: list[Finding] = []
        for name, lineno in bound:
            pattern = re.compile(r"\b" + re.escape(name) + r"\b")
            used = any(
                pattern.search(line)
                for i, line in enumerate(src.lines, 1)
                if not inside_import(i)
            )
            if not used:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=src.path,
                        lineno=lineno,
                        message=f"unused import {name!r}",
                    )
                )
        return findings


class ObsPassivityRule(Rule):
    """The observability layer observes; it never perturbs the simulation."""

    name = "obs-passivity"
    description = (
        "wall-clock reads in src/repro go through repro.obs.clock only, and "
        "src/repro/obs/ never calls simulation mutators, draws randomness, "
        "stages heatmap attribution, or settles charges outside the probe"
    )

    #: The perf-timer family (``time.time`` is ``seeded-rng``'s beat).
    CLOCK_ATTRS = frozenset(
        {
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
            "thread_time",
            "thread_time_ns",
        }
    )
    #: Methods that advance or mutate simulation state — poison in a hook
    #: that runs mid-charge: the golden ledgers would shift the moment
    #: tracing is switched on.
    MUTATOR_METHODS = frozenset(
        {
            "charge",
            "merge_step",
            "add_batch",
            "add_token",
            "evict_rows",
            "apply_delta",
            "refresh_topology",
            "restore_shards",
            "rebuild_quotas",
        }
    )
    #: RNG draws and seeded-generator factories — an observer consuming
    #: stream state changes every replay it watches.
    RNG_CALLS = frozenset(
        {
            "integers",
            "choice",
            "shuffle",
            "permutation",
            "normal",
            "uniform",
            "make_rng",
            "derive_rng",
            "spawn_rngs",
            "default_rng",
        }
    )

    def applies_to(self, path: Path) -> bool:
        # clock.py *is* the audited wall-clock wrapper.
        return not path.as_posix().endswith("obs/clock.py")

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        findings: list[Finding] = []
        if not _in_production_tree(src.path):
            return findings
        in_obs = _in_obs_tree(src.path)

        time_names = {"time"}
        clock_aliases: set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_names.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self.CLOCK_ATTRS:
                        clock_aliases.add(alias.asname or alias.name)

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain:
                continue
            parts = chain.split(".")
            is_clock = (
                len(parts) == 2 and parts[0] in time_names and parts[1] in self.CLOCK_ATTRS
            ) or (len(parts) == 1 and parts[0] in clock_aliases)
            if is_clock:
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() reads the wall clock inside src/repro: route "
                        "timing through repro.obs.clock, the audited wrapper",
                    )
                )
            elif in_obs and len(parts) >= 2 and (
                parts[-1] in self.MUTATOR_METHODS or parts[-1].startswith("deliver")
            ):
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() mutates simulation state from the observability "
                        "layer: observers are passive (golden ledgers must stay "
                        "bit-identical with tracing on)",
                    )
                )
            elif in_obs and parts[-1] in self.RNG_CALLS:
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() draws from (or constructs) an RNG inside the "
                        "observability layer: an observer consuming stream state "
                        "perturbs every replay it watches",
                    )
                )
            elif in_obs and parts[-1] in ("stage_edges", "stage_counts"):
                # Staging is the *charge path's* declaration of where its
                # messages travel; an observer staging its own attribution
                # would fabricate congestion that no charge backs.
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() stages heatmap attribution from inside the "
                        "observability layer: only the charge path "
                        "(network/primitives/engine) may declare edge traffic",
                    )
                )
            elif (
                in_obs
                and parts[-1] == "settle_charge"
                and src.path.name != "probe.py"
            ):
                # Settlement is driven exclusively by the ledger's charged
                # hook via the probe — any other caller would double-book
                # staged entries and break the conservation identity.
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{chain}() settles a heatmap charge outside the probe: "
                        "settlement happens once, from the ledger's charged "
                        "hook, or the conservation identity breaks",
                    )
                )
        return findings


def default_rules() -> list[Rule]:
    """Fresh instances of every rule, in reporting order."""
    return [
        PhaseRegistryRule(),
        BulkOnlyRule(),
        SeededRngRule(),
        FastPathPairingRule(),
        CaptureBalanceRule(),
        DeadImportRule(),
        ObsPassivityRule(),
    ]
