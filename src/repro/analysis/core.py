"""Framework for the AST invariant analyzer.

The repo's correctness story rests on standing invariants (exact ledger
attribution, bulk-only token creation, bit-reproducible seeded RNG, the
charged fast-path contract) that are enforced *dynamically* by tests but
violated *statically* — a typo'd phase name or an unseeded RNG call is
visible in the source long before any chi-square trips.  This module is
the dependency-free machinery the rules in :mod:`repro.analysis.rules`
plug into:

* :class:`SourceFile` — one parsed unit (path, source, AST, lines),
  shared by every rule so each file is read and parsed once;
* :class:`Rule` — the base class: a ``name``, a ``description``, an
  ``applies_to`` path filter, and a ``check`` returning
  :class:`Finding` objects;
* pragma suppression — a finding on a line carrying
  ``# repro: allow-<rule>`` is recorded as suppressed, for audited
  exceptions (the pragma names the rule, so one exception never blankets
  the others);
* :func:`analyze_paths` — the file walker + runner the CLI
  (``python -m repro.analysis``) and the tier-1 gate
  (``tests/test_static_analysis.py``) share.

The AST walk originally inlined in ``tests/test_lint.py`` (dead top-level
imports) now lives here as just another rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "SourceFile",
    "analyze_paths",
    "attr_chain",
    "iter_python_files",
]

#: ``# repro: allow-<rule>`` — audited, rule-scoped suppression.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow-([A-Za-z0-9_-]+)")


@dataclass(frozen=True)
class Finding:
    """One invariant violation anchored to a source line."""

    rule: str
    path: Path
    lineno: int
    message: str

    def format(self, root: Path | None = None) -> str:
        path = self.path
        if root is not None:
            try:
                path = path.relative_to(root)
            except ValueError:
                pass
        return f"{path}:{self.lineno}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """One parsed Python file, shared across rules."""

    path: Path
    source: str
    tree: ast.Module
    lines: list[str]

    @classmethod
    def parse(cls, path: Path) -> "SourceFile":
        source = path.read_text()
        return cls(path=path, source=source, tree=ast.parse(source), lines=source.splitlines())

    def line(self, lineno: int) -> str:
        """Physical source line (1-indexed); empty string out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def allowed_rules(self, lineno: int) -> set[str]:
        """Rule names suppressed by pragmas on ``lineno``."""
        return set(PRAGMA_RE.findall(self.line(lineno)))


class Rule:
    """Base class for one statically checkable invariant."""

    #: Short kebab-case identifier — also the pragma suffix
    #: (``# repro: allow-<name>``).
    name: str = ""
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs on ``path`` (exemptions live here)."""
        return True

    def check(self, src: SourceFile, *, root: Path) -> list[Finding]:
        """Return every violation in ``src`` (suppression handled by the runner)."""
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name, path=src.path, lineno=getattr(node, "lineno", 1), message=message
        )


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def format(self, root: Path | None = None) -> str:
        out = [f.format(root) for f in self.parse_errors + self.findings]
        out.append(
            f"{len(self.findings) + len(self.parse_errors)} finding(s), "
            f"{len(self.suppressed)} suppressed, {self.files_checked} file(s) checked"
        )
        return "\n".join(out)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` stream."""
    seen: set[Path] = set()
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for p in candidates:
            r = p.resolve()
            if r not in seen:
                seen.add(r)
                yield p


def attr_chain(node: ast.AST) -> str:
    """Dotted name of an attribute/name chain (``net.ledger.capture``).

    Non-name links (calls, subscripts) truncate the chain at that point —
    ``foo().bar`` renders as ``bar`` — which is the right behavior for
    rules matching on receiver spelling.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def analyze_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule],
    *,
    root: Path | str | None = None,
) -> AnalysisReport:
    """Run ``rules`` over every Python file under ``paths``.

    ``root`` anchors relative references inside rules (e.g. the pytest node
    ids of ``fast-path-pairing``); it defaults to the current directory.
    A finding whose source line carries ``# repro: allow-<rule>`` moves to
    ``report.suppressed``.  Unparseable files become ``parse_errors`` —
    the analyzer never crashes on bad input, it reports it.
    """
    root = Path(root) if root is not None else Path.cwd()
    report = AnalysisReport()
    for path in iter_python_files(Path(p) for p in paths):
        try:
            src = SourceFile.parse(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            report.parse_errors.append(
                Finding(rule="parse", path=path, lineno=lineno, message=f"cannot parse: {exc}")
            )
            continue
        report.files_checked += 1
        for rule in rules:
            if not rule.applies_to(path):
                continue
            for finding in rule.check(src, root=root):
                if rule.name in src.allowed_rules(finding.lineno):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (str(f.path), f.lineno, f.rule))
    return report
