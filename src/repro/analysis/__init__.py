"""``repro.analysis`` — static AST enforcement of the repo's invariants.

Run as a CLI (``python -m repro.analysis src``, ``make analyze``) or from
the tier-1 gate (``tests/test_static_analysis.py``).  See
:mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.rules` for the invariants checked; audited exceptions
are suppressed line-by-line with ``# repro: allow-<rule>``.
"""

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    Rule,
    SourceFile,
    analyze_paths,
    attr_chain,
    iter_python_files,
)
from repro.analysis.rules import (
    BulkOnlyRule,
    CaptureBalanceRule,
    DeadImportRule,
    FastPathPairingRule,
    ObsPassivityRule,
    PhaseRegistryRule,
    SeededRngRule,
    default_rules,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "SourceFile",
    "analyze_paths",
    "attr_chain",
    "iter_python_files",
    "BulkOnlyRule",
    "CaptureBalanceRule",
    "DeadImportRule",
    "FastPathPairingRule",
    "ObsPassivityRule",
    "PhaseRegistryRule",
    "SeededRngRule",
    "default_rules",
]
