"""CLI for the invariant analyzer: ``python -m repro.analysis [paths...]``.

Exit status 0 means zero unsuppressed findings — the contract the tier-1
gate and ``make analyze`` rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.core import analyze_paths
from repro.analysis.rules import default_rules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant analyzer for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root anchoring relative references such as pytest node ids",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list available rules and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print findings only, no summary"
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name:20s} {rule.description}")
        return 0
    if args.rules:
        known = {rule.name for rule in rules}
        unknown = [name for name in args.rules if name not in known]
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)} (see --list-rules)")
        rules = [rule for rule in rules if rule.name in set(args.rules)]

    root = Path(args.root)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")
    report = analyze_paths([Path(p) for p in args.paths], rules, root=root)

    for finding in report.parse_errors + report.findings:
        print(finding.format(root))
    if not args.quiet:
        print(
            f"{len(report.findings) + len(report.parse_errors)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.files_checked} file(s) checked"
        )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
