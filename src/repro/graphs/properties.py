"""Centralized (analysis-side) graph properties: BFS, diameter, connectivity.

These functions are *not* charged rounds — they are the offline analysis
used by tests and benches (and by algorithm setup where the paper assumes a
quantity such as the diameter is known).  The distributed, round-counted BFS
used inside protocols lives in :mod:`repro.congest.primitives`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "eccentricity",
    "diameter",
    "pseudo_diameter",
    "is_connected",
    "is_bipartite",
    "connected_components",
    "shortest_path",
]

UNREACHED = -1


def bfs_distances(graph: Graph, root: int) -> np.ndarray:
    """Hop distance from ``root`` to every node (−1 where unreachable)."""
    dist = np.full(graph.n, UNREACHED, dtype=np.int64)
    dist[root] = 0
    frontier = [root]
    level = 0
    while frontier:
        level += 1
        next_frontier: list[int] = []
        for v in frontier:
            for u in graph.neighbors(v):
                u = int(u)
                if dist[u] == UNREACHED:
                    dist[u] = level
                    next_frontier.append(u)
        frontier = next_frontier
    return dist


def bfs_tree(graph: Graph, root: int) -> tuple[np.ndarray, np.ndarray]:
    """BFS parents and distances from ``root``.

    Returns ``(parent, dist)`` where ``parent[root] = root`` and
    ``parent[v] = -1`` for unreachable ``v``.  Parent choice is the
    lowest-ID neighbor at the previous level, making trees deterministic.
    """
    parent = np.full(graph.n, UNREACHED, dtype=np.int64)
    dist = np.full(graph.n, UNREACHED, dtype=np.int64)
    parent[root] = root
    dist[root] = 0
    queue: deque[int] = deque([root])
    while queue:
        v = queue.popleft()
        for u in sorted(int(x) for x in graph.neighbors(v)):
            if dist[u] == UNREACHED:
                dist[u] = dist[v] + 1
                parent[u] = v
                queue.append(u)
    return parent, dist


def eccentricity(graph: Graph, v: int) -> int:
    """Largest hop distance from ``v``; raises on disconnected graphs."""
    dist = bfs_distances(graph, v)
    if np.any(dist == UNREACHED):
        raise GraphError("eccentricity undefined: graph is disconnected")
    return int(dist.max())


def diameter(graph: Graph) -> int:
    """Exact diameter via all-pairs BFS (fine for experiment-scale graphs)."""
    best = 0
    for v in range(graph.n):
        best = max(best, eccentricity(graph, v))
    return best


def pseudo_diameter(graph: Graph) -> int:
    """Double-sweep lower bound on the diameter (exact on trees).

    Two BFS passes: from node 0 to its farthest node ``a``, then from ``a``.
    Used where an exact diameter would cost ``O(n·m)`` needlessly — the
    algorithms only need a Θ(D) estimate to pick ``λ``.
    """
    dist0 = bfs_distances(graph, 0)
    if np.any(dist0 == UNREACHED):
        raise GraphError("pseudo_diameter undefined: graph is disconnected")
    a = int(np.argmax(dist0))
    dist_a = bfs_distances(graph, a)
    return int(dist_a.max())


def is_connected(graph: Graph) -> bool:
    return not np.any(bfs_distances(graph, 0) == UNREACHED)


def connected_components(graph: Graph) -> list[list[int]]:
    """List of components, each a sorted list of node IDs."""
    seen = np.zeros(graph.n, dtype=bool)
    components: list[list[int]] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        dist = bfs_distances(graph, start)
        members = sorted(int(v) for v in np.nonzero(dist != UNREACHED)[0] if not seen[v])
        seen[dist != UNREACHED] = True
        components.append(members)
    return components


def is_bipartite(graph: Graph) -> bool:
    """Two-colorability check.

    Mixing time is well defined only on non-bipartite graphs (Section 4.2
    assumes this); the mixing-time estimator validates its input with this.
    A self-loop makes a graph non-bipartite.
    """
    color = np.full(graph.n, UNREACHED, dtype=np.int64)
    for start in range(graph.n):
        if color[start] != UNREACHED:
            continue
        color[start] = 0
        queue: deque[int] = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                u = int(u)
                if u == v:
                    return False  # self-loop: odd cycle of length 1
                if color[u] == UNREACHED:
                    color[u] = color[v] ^ 1
                    queue.append(u)
                elif color[u] == color[v]:
                    return False
    return True


def shortest_path(graph: Graph, source: int, target: int) -> list[int]:
    """One shortest path (node list, inclusive) from ``source`` to ``target``."""
    parent, dist = bfs_tree(graph, source)
    if dist[target] == UNREACHED:
        raise GraphError(f"no path from {source} to {target}")
    path = [target]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path
