"""The lower-bound graph ``G_n`` of Section 3 (Definition 3.3).

``G_n`` interleaves a long path ``P = v_1 v_2 ... v_{n'}`` under a complete
binary tree ``T`` with ``k'`` leaves ``u_1 .. u_{k'}``; leaf ``u_i`` is wired
to every path node ``v_{j·k' + i}``.  The tree gives the graph ``O(log n)``
diameter while the path carries the ℓ-length walk, so verifying the walk
forces Ω(√(ℓ/log ℓ)) rounds of tree traffic (Theorem 3.2).

This module builds the graph plus all the bookkeeping the proofs refer to:
which nodes are path/tree/leaves, the left/right subtree leaf sets ``L``/``R``,
and the *breakpoints* (Definition in §3.1) used by the counting argument.

The weighted variant ``G'_n`` (§3.2) puts weight ``(2n)^{2i}`` on path edge
``(v_i, v_{i+1})`` so a random walk follows ``P`` w.h.p.  Those weights
overflow any fixed-precision representation for interesting ``n``, but only
*local weight ratios* matter to a walk, so :meth:`LowerBoundInstance.forward_probability`
exposes the closed-form per-node transition law instead; the reduction in
:mod:`repro.lowerbound.reduction` samples from it directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["LowerBoundInstance", "build_lower_bound_graph", "round_bound"]


def round_bound(length: int) -> float:
    """The paper's lower-bound curve ``√(ℓ / log ℓ)`` for a walk of ``length``."""
    if length < 2:
        raise GraphError("lower bound curve needs length >= 2")
    return math.sqrt(length / math.log(length))


@dataclass
class LowerBoundInstance:
    """``G_n`` plus the structural annotations the Section-3 proofs use.

    Attributes
    ----------
    graph:
        The assembled :class:`Graph`; path nodes come first
        (``0 .. n_prime-1`` is ``v_1 .. v_{n'}``), then the ``2k'-1`` tree
        nodes in heap order (``tree_offset`` is the root ``x``).
    k:
        The round-count parameter the construction is sized for
        (``k = √(ℓ/log ℓ)`` in Theorem 3.2).
    k_prime:
        Power of two with ``k'/2 ≤ 4k < k'``; number of tree leaves.
    n_prime:
        Path length (multiple of ``k'``, at least the requested ``n``).
    """

    graph: Graph
    k: int
    k_prime: int
    n_prime: int
    tree_offset: int
    leaves: list[int] = field(repr=False)

    # ------------------------------------------------------------------
    # Node-role helpers (all in graph-node IDs)
    # ------------------------------------------------------------------
    def path_node(self, i: int) -> int:
        """Graph ID of path vertex ``v_i`` (1-indexed as in the paper)."""
        if not 1 <= i <= self.n_prime:
            raise GraphError(f"path index {i} out of range [1, {self.n_prime}]")
        return i - 1

    def path_index(self, node: int) -> int:
        """Inverse of :meth:`path_node`; raises for tree nodes."""
        if not 0 <= node < self.n_prime:
            raise GraphError(f"node {node} is not a path node")
        return node + 1

    @property
    def root(self) -> int:
        """The tree root ``x``."""
        return self.tree_offset

    @property
    def left_child(self) -> int:
        """``l``, root of the left subtree."""
        return self.tree_offset + 1

    @property
    def right_child(self) -> int:
        """``r``, root of the right subtree."""
        return self.tree_offset + 2

    def is_path_node(self, node: int) -> bool:
        return 0 <= node < self.n_prime

    def is_tree_node(self, node: int) -> bool:
        return self.tree_offset <= node < self.graph.n

    def leaf_of_path_node(self, node: int) -> int:
        """The unique tree leaf adjacent to a path node."""
        i = self.path_index(node)
        leaf_index = (i - 1) % self.k_prime  # u_{leaf_index+1}
        return self.leaves[leaf_index]

    # ------------------------------------------------------------------
    # Left/right leaf sets and breakpoints (§3.1)
    # ------------------------------------------------------------------
    def left_path_nodes(self) -> list[int]:
        """``L``: path nodes attached to leaves of the *left* subtree.

        Leaves ``u_1 .. u_{k'/2}`` hang under ``l``, so these are the path
        vertices ``v_{jk'+i}`` with ``1 ≤ i ≤ k'/2``.
        """
        half = self.k_prime // 2
        return [v for v in range(self.n_prime) if (v % self.k_prime) < half]

    def right_path_nodes(self) -> list[int]:
        """``R``: path nodes attached to leaves of the *right* subtree."""
        half = self.k_prime // 2
        return [v for v in range(self.n_prime) if (v % self.k_prime) >= half]

    def left_breakpoints(self) -> list[int]:
        """Breakpoints for ``sub(l)``: path vertices ``v_{jk' + k'/2 + k + 1}``.

        These are unreachable from ``L`` within ``k`` path hops, which is
        what forces left/right tree communication in the proof.
        """
        return self._breakpoints(offset=self.k_prime // 2 + self.k + 1)

    def right_breakpoints(self) -> list[int]:
        """Breakpoints for ``sub(r)``: path vertices ``v_{jk' + k + 1}``."""
        return self._breakpoints(offset=self.k + 1)

    def _breakpoints(self, offset: int) -> list[int]:
        out = []
        j = 0
        while True:
            i = j * self.k_prime + offset  # 1-indexed path position
            if i > self.n_prime:
                return out
            out.append(self.path_node(i))
            j += 1

    # ------------------------------------------------------------------
    # Weighted variant G'_n (§3.2)
    # ------------------------------------------------------------------
    def forward_probability(self, i: int) -> float:
        """P[walk at ``v_i`` steps to ``v_{i+1}``] under the ``(2n)^{2i}`` weights.

        At ``v_i`` the incident weights are ``(2n)^{2i}`` (forward path edge),
        ``(2n)^{2(i-1)}`` (backward path edge, absent at ``i = 1``) and ``1``
        (the tree edge).  Normalizing by the forward weight:

        ``p = 1 / (1 + W^{-2}·[i>1] + W^{-2i})`` with ``W = 2n``,

        which is computable in floating point for any ``i`` even though the
        raw weights are astronomically large.  This is ≥ 1 − 1/(2n)² − ...,
        matching the paper's "at least 1 − 1/n²" bound.
        """
        if not 1 <= i < self.n_prime:
            raise GraphError(f"forward edge exists only for 1 <= i < n'={self.n_prime}")
        w = 2.0 * self.n_prime
        backward = w**-2.0 if i > 1 else 0.0
        tree = w ** (-2.0 * i)
        return 1.0 / (1.0 + backward + tree)


def _choose_k_prime(k: int) -> int:
    """Smallest power of two ``k'`` with ``4k < k'`` (then ``k'/2 ≤ 4k``)."""
    k_prime = 1
    while k_prime <= 4 * k:
        k_prime *= 2
    return k_prime


def build_lower_bound_graph(n: int, k: int | None = None) -> LowerBoundInstance:
    """Construct ``G_n`` per Definition 3.3.

    Parameters
    ----------
    n:
        Requested path length; the actual path has ``n' ≥ n`` vertices
        (rounded up to a multiple of ``k'``).
    k:
        The round parameter to size the construction for.  Defaults to the
        theorem's ``⌈√(n / log n)⌉``.
    """
    if n < 4:
        raise GraphError("lower-bound construction needs n >= 4")
    if k is None:
        k = max(1, math.ceil(math.sqrt(n / math.log(n))))
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    k_prime = _choose_k_prime(k)
    n_prime = ((n + k_prime - 1) // k_prime) * k_prime

    # Path nodes 0 .. n'-1 represent v_1 .. v_{n'}.
    edges: list[tuple[int, int]] = [(i, i + 1) for i in range(n_prime - 1)]

    # Complete binary tree with k' leaves, heap-ordered: 2k'-1 nodes, node t
    # (0-based within the tree) has children 2t+1, 2t+2; leaves are the last
    # k' heap slots, left to right.
    tree_offset = n_prime
    tree_size = 2 * k_prime - 1
    for t in range(tree_size):
        for child in (2 * t + 1, 2 * t + 2):
            if child < tree_size:
                edges.append((tree_offset + t, tree_offset + child))
    leaves = [tree_offset + t for t in range(k_prime - 1, tree_size)]

    # Leaf u_i (1-indexed) attaches to v_{j k' + i} for every j >= 0.
    for idx, leaf in enumerate(leaves):
        i = idx + 1
        j = 0
        while j * k_prime + i <= n_prime:
            edges.append((leaf, j * k_prime + i - 1))
            j += 1

    graph = Graph(
        n_prime + tree_size,
        edges,
        name=f"lower_bound(n'={n_prime},k={k},k'={k_prime})",
    )
    return LowerBoundInstance(
        graph=graph,
        k=k,
        k_prime=k_prime,
        n_prime=n_prime,
        tree_offset=tree_offset,
        leaves=leaves,
    )
