"""Core graph data structure.

The whole library runs on :class:`Graph` — an undirected (optionally
weighted, optionally multi-) graph stored in compressed-sparse-row form so
that random-walk stepping, BFS, and congestion accounting are all O(1)/O(deg)
array operations.

Design notes
------------
* Nodes are integers ``0 .. n-1``.  The paper assumes distinct IDs from
  ``{1..n}``; zero-based IDs are an isomorphic relabeling.
* Each undirected edge ``{u, v}`` is stored twice, once per direction.  The
  position of a directed edge in the CSR arrays is its **slot**, used as the
  canonical directed-edge identifier by the CONGEST engine's congestion
  ledger (`slot j` = directed edge ``csr_source[j] -> csr_target[j]``).
* Parallel edges and self-loops are allowed (the lower-bound reduction of
  Section 3.2 uses multigraph semantics; lazy walks use self-loops).  A
  self-loop occupies a single slot and contributes 1 to the degree, and is
  traversed like any other incident edge.
* ``weight`` biases the *random walk* (an edge is taken with probability
  proportional to its weight) but never the communication model: messages
  cross an edge in one round regardless of weight, exactly as in the paper
  where "weighted graphs are equivalent to unweighted multigraphs in our
  model" and extra weight only means extra bandwidth (which we expose via
  the engine's ``capacity`` knob instead).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An undirected graph in CSR form with vectorized walk stepping.

    Parameters
    ----------
    n:
        Number of nodes; nodes are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Order inside a pair is irrelevant.
    weights:
        Optional per-edge positive weights (parallel to ``edges``); defaults
        to 1.0 for every edge.  Weights bias walk transition probabilities.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[float] | None = None,
        name: str = "graph",
    ) -> None:
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        if isinstance(edges, np.ndarray):
            # Copy: the graph must not alias a caller-owned buffer.
            try:
                edge_arr = np.array(edges, dtype=np.int64)
            except (TypeError, ValueError) as exc:
                raise GraphError(f"edges must be (u, v) pairs: {exc}") from exc
            if edge_arr.size == 0:
                edge_arr = edge_arr.reshape(0, 2)
        else:
            edge_seq = list(edges)
            if edge_seq:
                try:
                    edge_arr = np.array(edge_seq, dtype=np.int64)
                except (TypeError, ValueError) as exc:
                    raise GraphError(f"edges must be (u, v) pairs: {exc}") from exc
            else:
                edge_arr = np.empty((0, 2), dtype=np.int64)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphError(f"edges must be (u, v) pairs, got shape {edge_arr.shape}")
        out_of_range = (edge_arr < 0) | (edge_arr >= n)
        if out_of_range.any():
            u, v = edge_arr[np.nonzero(out_of_range.any(axis=1))[0][0]]
            raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
        m = len(edge_arr)
        if weights is None:
            weight_arr = np.ones(m, dtype=np.float64)
        else:
            if isinstance(weights, np.ndarray):
                weight_arr = np.array(weights, dtype=np.float64)  # defensive copy
            else:
                weight_arr = np.asarray(list(weights), dtype=np.float64)
            if weight_arr.shape != (m,):
                raise GraphError("weights must parallel the edge list")
            if np.any(weight_arr <= 0):
                raise GraphError("edge weights must be strictly positive")

        self.n = n
        self.name = name
        self._install_edges(edge_arr, weight_arr)

    def _install_edges(self, edge_arr: np.ndarray, weight_arr: np.ndarray) -> None:
        """(Re)build every derived array from an undirected edge list.

        Shared by :meth:`__init__` and :meth:`apply_delta`: the CSR arrays,
        degree profiles, and every lazily built view are derived state, so
        a topology change is one call to this method with the new edge
        list.  Node count and identity never change here.
        """
        n = self.n
        m = len(edge_arr)
        self.m = m
        self._edge_array = edge_arr
        self._edge_weights = weight_arr

        # Build CSR by vectorized scatter.  Each non-loop edge contributes a
        # slot at both ends; each self-loop contributes one slot.  Within a
        # node, slots are ordered by undirected edge index — the same order
        # the legacy per-edge fill loop produced, which keeps slot IDs (and
        # hence every RNG draw over slots) stable across the rewrite.
        eu, ev = edge_arr[:, 0], edge_arr[:, 1]
        non_loop = eu != ev
        eids = np.arange(m, dtype=np.int64)
        src_dir = np.concatenate([eu, ev[non_loop]])
        dst_dir = np.concatenate([ev, eu[non_loop]])
        eid_dir = np.concatenate([eids, eids[non_loop]])
        w_dir = np.concatenate([weight_arr, weight_arr[non_loop]])
        order = np.lexsort((eid_dir, src_dir))
        sources = src_dir[order]
        targets = dst_dir[order]
        slot_weight = w_dir[order]
        slot_edge = eid_dir[order]  # undirected edge index
        degree = np.bincount(src_dir, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        n_slots = int(indptr[-1])

        self.indptr = indptr
        self.csr_target = targets
        self.csr_source = sources
        self.csr_weight = slot_weight
        self.csr_edge = slot_edge
        self.n_slots = n_slots
        self._degree = degree
        self._weighted_degree = np.zeros(n, dtype=np.float64)
        np.add.at(self._weighted_degree, sources, slot_weight)
        self._uniform_weights = bool(np.allclose(weight_arr, weight_arr[0])) if self.m else True
        # Per-node cumulative weights for weighted sampling, lazily built.
        self._cumweights: np.ndarray | None = None
        self._reverse_slot: np.ndarray | None = None
        # Per-node sorted neighbor view for O(log deg) has_edge, lazily built.
        self._sorted_neighbors: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        """Number of incident edge endpoints at ``v`` (self-loop counts once)."""
        return int(self._degree[v])

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node as an int64 array (do not mutate)."""
        return self._degree

    def weighted_degree(self, v: int) -> float:
        """Sum of incident edge weights at ``v``."""
        return float(self._weighted_degree[v])

    @property
    def weighted_degrees(self) -> np.ndarray:
        return self._weighted_degree

    def neighbors(self, v: int) -> np.ndarray:
        """Targets of all slots leaving ``v`` (with multiplicity)."""
        return self.csr_target[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_set(self, v: int) -> set[int]:
        """Distinct neighbors of ``v`` as a set of ints."""
        return {int(u) for u in self.neighbors(v)}

    def slots_of(self, v: int) -> range:
        """Directed-edge slot indices leaving ``v``."""
        return range(int(self.indptr[v]), int(self.indptr[v + 1]))

    def edges(self) -> list[tuple[int, int]]:
        """The undirected edge list as given at construction."""
        return [tuple(e) for e in self._edge_array.tolist()]

    @property
    def edge_array(self) -> np.ndarray:
        """Undirected edges as an ``(m, 2)`` int64 array (do not mutate)."""
        return self._edge_array

    def edge_weights(self) -> np.ndarray:
        return self._edge_weights.copy()

    @property
    def is_weighted(self) -> bool:
        """True when edge weights are not all identical."""
        return not self._uniform_weights

    def has_edge(self, u: int, v: int) -> bool:
        """Adjacency test in O(log deg(u)) via a lazily built sorted view.

        The first call sorts every node's neighbor list once; afterwards a
        call is a binary search inside ``u``'s segment (``verify_positions``
        probes this ℓ times per walk verification).
        """
        if self._sorted_neighbors is None:
            # csr_source is non-decreasing, so one lexsort yields every
            # node's targets sorted, concatenated in node order.
            order = np.lexsort((self.csr_target, self.csr_source))
            self._sorted_neighbors = self.csr_target[order]
        lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
        sn = self._sorted_neighbors
        i = lo + int(np.searchsorted(sn[lo:hi], v))
        return i < hi and int(sn[i]) == v

    def total_weight(self) -> float:
        return float(self._edge_weights.sum())

    def reverse_slot(self, slot: int) -> int:
        """Slot of the same undirected edge in the opposite direction.

        For a self-loop the slot is its own reverse.
        """
        if self._reverse_slot is None:
            # Group slots by undirected edge id: a stable argsort puts each
            # edge's one (self-loop) or two slots adjacent, in slot order.
            rev = np.empty(self.n_slots, dtype=np.int64)
            if self.n_slots:
                order = np.argsort(self.csr_edge, kind="stable")
                counts = np.bincount(self.csr_edge, minlength=self.m)
                starts = np.zeros(self.m, dtype=np.int64)
                np.cumsum(counts[:-1], out=starts[1:])
                paired = starts[counts == 2]
                a, b = order[paired], order[paired + 1]
                rev[a], rev[b] = b, a
                loops = order[starts[counts == 1]]
                rev[loops] = loops
            self._reverse_slot = rev
        return int(self._reverse_slot[slot])

    # ------------------------------------------------------------------
    # Random-walk stepping
    # ------------------------------------------------------------------
    def _cumulative_weights(self) -> np.ndarray:
        if self._cumweights is None:
            self._cumweights = np.cumsum(self.csr_weight)
        return self._cumweights

    def random_slot(self, v: int, rng: np.random.Generator) -> int:
        """Sample an outgoing slot at ``v`` with probability ∝ its weight."""
        lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
        if lo == hi:
            raise GraphError(f"node {v} is isolated; random walk undefined")
        if self._uniform_weights:
            return int(rng.integers(lo, hi))
        weights = self.csr_weight[lo:hi]
        total = weights.sum()
        return lo + int(np.searchsorted(np.cumsum(weights), rng.random() * total, side="right"))

    def random_neighbor(self, v: int, rng: np.random.Generator) -> int:
        """One step of the (weighted) simple random walk from ``v``."""
        return int(self.csr_target[self.random_slot(v, rng)])

    def step_walk_slots(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized single step: sample one outgoing slot per position.

        Returns an array of slot indices parallel to ``positions``.  The
        corresponding next positions are ``self.csr_target[slots]``.  For
        unweighted graphs this is a single vectorized draw; weighted graphs
        fall back to an inverse-CDF draw per position (still vectorized via
        searchsorted over per-node cumulative weights).
        """
        positions = np.asarray(positions, dtype=np.int64)
        lo = self.indptr[positions]
        deg = self.indptr[positions + 1] - lo
        if np.any(deg == 0):
            bad = positions[deg == 0][0]
            raise GraphError(f"node {int(bad)} is isolated; random walk undefined")
        if self._uniform_weights:
            offsets = rng.integers(0, deg)
            return lo + offsets
        cum = self._cumulative_weights()
        # cum[lo - 1] wraps to cum[-1] when lo == 0; np.where masks it out.
        base = np.where(lo > 0, cum[lo - 1], 0.0)
        node_total = self._weighted_degree[positions]
        u = rng.random(len(positions)) * node_total + base
        slots = np.searchsorted(cum, u, side="right")
        # Numerical safety: clamp into the node's own slot range.
        hi = lo + deg - 1
        return np.clip(slots, lo, hi)

    def step_walks(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized single walk step; returns the next positions."""
        return self.csr_target[self.step_walk_slots(positions, rng)]

    def walk(self, start: int, length: int, rng: np.random.Generator) -> list[int]:
        """Perform a ``length``-step walk from ``start``; returns all ℓ+1 positions.

        This is the *centralized* reference walk used by analysis code and
        tests; the distributed algorithms live in :mod:`repro.walks`.
        """
        if length < 0:
            raise GraphError(f"walk length must be non-negative, got {length}")
        path = [int(start)]
        current = int(start)
        for _ in range(length):
            current = self.random_neighbor(current, rng)
            path.append(current)
        return path

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def subgraph_is_spanning_tree(self, tree_edges: Iterable[tuple[int, int]]) -> bool:
        """Check that ``tree_edges`` forms a spanning tree of this graph."""
        edges = [(min(u, v), max(u, v)) for u, v in tree_edges]
        if len(edges) != self.n - 1:
            return False
        available = {(min(u, v), max(u, v)) for u, v in self.edges()}
        if any(e not in available for e in edges):
            return False
        parent = list(range(self.n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in edges:
            ru, rv = find(u), find(v)
            if ru == rv:
                return False
            parent[ru] = rv
        return True

    # ------------------------------------------------------------------
    # Dynamic topology
    # ------------------------------------------------------------------
    def apply_delta(self, delta):
        """Apply a batched edge churn event in place; returns a remap report.

        ``delta`` is a :class:`~repro.dynamic.delta.GraphDelta` — edge
        inserts and deletes batched into one topology event.  Deletions
        match stored undirected edges by endpoint pair (orientation
        irrelevant); listing the same pair twice deletes two parallel
        edges, and deleting an absent edge raises :class:`GraphError`.
        The CSR arrays, degree profiles, and every lazily built view are
        rebuilt vectorized; node count and identity are unchanged (node
        churn is out of scope — model an absent node as an isolated one).

        The returned :class:`~repro.dynamic.delta.DeltaRemap` carries the
        old→new directed-slot remap (``-1`` for slots of deleted edges) and
        the set of *mutated* nodes — endpoints of any inserted or deleted
        edge, exactly the nodes whose one-step sampling law changed.  That
        set is what the pool-invalidation scan keys on: a recorded walk
        step taken *from* a non-mutated node has the identical law on the
        old and new graphs.

        Mutating the topology invalidates everything derived from it that
        lives *outside* this object (network edge-multiplicity tables, BFS
        tree caches, pool quotas); driving that cascade is the
        :class:`~repro.dynamic.controller.ChurnController`'s job.
        """
        from repro.dynamic.delta import DeltaRemap, GraphDelta

        if not isinstance(delta, GraphDelta):
            raise GraphError(f"apply_delta expects a GraphDelta, got {type(delta).__name__}")
        n = self.n
        ins = delta.insert_edges
        dels = delta.delete_edges
        for arr, what in ((ins, "insert"), (dels, "delete")):
            if arr.size and (np.any(arr < 0) or np.any(arr >= n)):
                raise GraphError(f"{what} edge endpoint out of range for n={n}")

        old_edges = self._edge_array
        old_m = self.m
        # Match each requested deletion to a distinct stored undirected
        # edge: sort both sides by the orientation-free key min·n+max, then
        # the i-th occurrence of a key among the deletions claims the i-th
        # stored edge with that key.
        delete_ids = np.empty(0, dtype=np.int64)
        if len(dels):
            keys_old = np.minimum(old_edges[:, 0], old_edges[:, 1]) * n + np.maximum(
                old_edges[:, 0], old_edges[:, 1]
            )
            keys_del = np.minimum(dels[:, 0], dels[:, 1]) * n + np.maximum(dels[:, 0], dels[:, 1])
            order_old = np.argsort(keys_old, kind="stable")
            sorted_old = keys_old[order_old]
            sorted_del = np.sort(keys_del, kind="stable")
            first = np.r_[True, sorted_del[1:] != sorted_del[:-1]]
            starts = np.nonzero(first)[0]
            occurrence = np.arange(len(sorted_del)) - starts[np.cumsum(first) - 1]
            pos = np.searchsorted(sorted_old, sorted_del) + occurrence
            bad = (pos >= old_m) | (sorted_old[np.minimum(pos, old_m - 1)] != sorted_del)
            if bad.any():
                key = int(sorted_del[np.nonzero(bad)[0][0]])
                raise GraphError(
                    f"cannot delete edge ({key // n}, {key % n}): not (or no longer) present"
                )
            delete_ids = order_old[pos]

        keep = np.ones(old_m, dtype=bool)
        keep[delete_ids] = False
        new_edges = np.concatenate([old_edges[keep], ins]) if len(ins) else old_edges[keep]
        insert_weights = (
            delta.insert_weights
            if delta.insert_weights is not None
            else np.ones(len(ins), dtype=np.float64)
        )
        new_weights = np.concatenate([self._edge_weights[keep], insert_weights])
        edge_id_map = np.full(old_m, -1, dtype=np.int64)
        edge_id_map[keep] = np.arange(int(keep.sum()), dtype=np.int64)

        # Snapshot the old slot identity (edge id + orientation side) before
        # the rebuild clobbers it.
        old_n_slots = self.n_slots
        old_csr_edge = self.csr_edge
        old_side = self.csr_source != old_edges[old_csr_edge, 0]

        self._install_edges(new_edges, new_weights)

        # Old slot (edge e, side s) → new slot: surviving edges keep their
        # row orientation, so the pair survives verbatim under the new ids.
        slot_of = np.full((max(1, self.m), 2), -1, dtype=np.int64)
        if self.n_slots:
            new_side = (self.csr_source != new_edges[self.csr_edge, 0]).astype(np.int64)
            slot_of[self.csr_edge, new_side] = np.arange(self.n_slots, dtype=np.int64)
        slot_remap = np.full(old_n_slots, -1, dtype=np.int64)
        if old_n_slots:
            survives = edge_id_map[old_csr_edge] >= 0
            slot_remap[survives] = slot_of[
                edge_id_map[old_csr_edge[survives]], old_side[survives].astype(np.int64)
            ]

        mutated = np.zeros(n, dtype=bool)
        if len(dels):
            mutated[old_edges[~keep].ravel()] = True
        if len(ins):
            mutated[ins.ravel()] = True
        deleted = old_edges[~keep]
        deleted_keys = (
            np.sort(np.minimum(deleted[:, 0], deleted[:, 1]) * n + np.maximum(deleted[:, 0], deleted[:, 1]))
            if len(deleted)
            else np.empty(0, dtype=np.int64)
        )
        return DeltaRemap(
            slot_remap=slot_remap,
            mutated_nodes=np.nonzero(mutated)[0],
            deleted_edge_keys=deleted_keys,
            edges_deleted=int(len(dels)),
            edges_inserted=int(len(ins)),
            old_n_slots=int(old_n_slots),
            new_n_slots=int(self.n_slots),
        )

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __repr__(self) -> str:
        kind = "weighted " if self.is_weighted else ""
        return f"Graph({self.name!r}, n={self.n}, m={self.m}, {kind}CSR)"

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.MultiGraph` (for cross-checks in tests)."""
        import networkx as nx

        g = nx.MultiGraph()
        g.add_nodes_from(range(self.n))
        for (u, v), w in zip(self.edges(), self._edge_weights):
            g.add_edge(u, v, weight=float(w))
        return g
