"""Core graph data structure.

The whole library runs on :class:`Graph` — an undirected (optionally
weighted, optionally multi-) graph stored in compressed-sparse-row form so
that random-walk stepping, BFS, and congestion accounting are all O(1)/O(deg)
array operations.

Design notes
------------
* Nodes are integers ``0 .. n-1``.  The paper assumes distinct IDs from
  ``{1..n}``; zero-based IDs are an isomorphic relabeling.
* Each undirected edge ``{u, v}`` is stored twice, once per direction.  The
  position of a directed edge in the CSR arrays is its **slot**, used as the
  canonical directed-edge identifier by the CONGEST engine's congestion
  ledger (`slot j` = directed edge ``csr_source[j] -> csr_target[j]``).
* Parallel edges and self-loops are allowed (the lower-bound reduction of
  Section 3.2 uses multigraph semantics; lazy walks use self-loops).  A
  self-loop occupies a single slot and contributes 1 to the degree, and is
  traversed like any other incident edge.
* ``weight`` biases the *random walk* (an edge is taken with probability
  proportional to its weight) but never the communication model: messages
  cross an edge in one round regardless of weight, exactly as in the paper
  where "weighted graphs are equivalent to unweighted multigraphs in our
  model" and extra weight only means extra bandwidth (which we expose via
  the engine's ``capacity`` knob instead).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An undirected graph in CSR form with vectorized walk stepping.

    Parameters
    ----------
    n:
        Number of nodes; nodes are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Order inside a pair is irrelevant.
    weights:
        Optional per-edge positive weights (parallel to ``edges``); defaults
        to 1.0 for every edge.  Weights bias walk transition probabilities.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[float] | None = None,
        name: str = "graph",
    ) -> None:
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        edge_list = [(int(u), int(v)) for u, v in edges]
        for u, v in edge_list:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
        if weights is None:
            weight_arr = np.ones(len(edge_list), dtype=np.float64)
        else:
            weight_arr = np.asarray(list(weights), dtype=np.float64)
            if weight_arr.shape != (len(edge_list),):
                raise GraphError("weights must parallel the edge list")
            if np.any(weight_arr <= 0):
                raise GraphError("edge weights must be strictly positive")

        self.n = n
        self.name = name
        self.m = len(edge_list)
        self._edges = edge_list
        self._edge_weights = weight_arr

        # Build CSR.  Each non-loop edge contributes a slot at both ends;
        # each self-loop contributes one slot.
        degree = np.zeros(n, dtype=np.int64)
        for u, v in edge_list:
            degree[u] += 1
            if u != v:
                degree[v] += 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        n_slots = int(indptr[-1])
        targets = np.empty(n_slots, dtype=np.int64)
        sources = np.empty(n_slots, dtype=np.int64)
        slot_weight = np.empty(n_slots, dtype=np.float64)
        slot_edge = np.empty(n_slots, dtype=np.int64)  # undirected edge index
        fill = indptr[:-1].copy()
        for eid, (u, v) in enumerate(edge_list):
            w = weight_arr[eid]
            j = fill[u]
            sources[j], targets[j], slot_weight[j], slot_edge[j] = u, v, w, eid
            fill[u] += 1
            if u != v:
                j = fill[v]
                sources[j], targets[j], slot_weight[j], slot_edge[j] = v, u, w, eid
                fill[v] += 1

        self.indptr = indptr
        self.csr_target = targets
        self.csr_source = sources
        self.csr_weight = slot_weight
        self.csr_edge = slot_edge
        self.n_slots = n_slots
        self._degree = degree
        self._weighted_degree = np.zeros(n, dtype=np.float64)
        np.add.at(self._weighted_degree, sources, slot_weight)
        self._uniform_weights = bool(np.allclose(weight_arr, weight_arr[0])) if self.m else True
        # Per-node cumulative weights for weighted sampling, lazily built.
        self._cumweights: np.ndarray | None = None
        self._reverse_slot: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        """Number of incident edge endpoints at ``v`` (self-loop counts once)."""
        return int(self._degree[v])

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node as an int64 array (do not mutate)."""
        return self._degree

    def weighted_degree(self, v: int) -> float:
        """Sum of incident edge weights at ``v``."""
        return float(self._weighted_degree[v])

    @property
    def weighted_degrees(self) -> np.ndarray:
        return self._weighted_degree

    def neighbors(self, v: int) -> np.ndarray:
        """Targets of all slots leaving ``v`` (with multiplicity)."""
        return self.csr_target[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_set(self, v: int) -> set[int]:
        """Distinct neighbors of ``v`` as a set of ints."""
        return {int(u) for u in self.neighbors(v)}

    def slots_of(self, v: int) -> range:
        """Directed-edge slot indices leaving ``v``."""
        return range(int(self.indptr[v]), int(self.indptr[v + 1]))

    def edges(self) -> list[tuple[int, int]]:
        """The undirected edge list as given at construction."""
        return list(self._edges)

    def edge_weights(self) -> np.ndarray:
        return self._edge_weights.copy()

    @property
    def is_weighted(self) -> bool:
        """True when edge weights are not all identical."""
        return not self._uniform_weights

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.neighbor_set(u)

    def total_weight(self) -> float:
        return float(self._edge_weights.sum())

    def reverse_slot(self, slot: int) -> int:
        """Slot of the same undirected edge in the opposite direction.

        For a self-loop the slot is its own reverse.
        """
        if self._reverse_slot is None:
            rev = np.empty(self.n_slots, dtype=np.int64)
            by_edge: dict[int, list[int]] = {}
            for j in range(self.n_slots):
                by_edge.setdefault(int(self.csr_edge[j]), []).append(j)
            for slots in by_edge.values():
                if len(slots) == 1:  # self-loop
                    rev[slots[0]] = slots[0]
                else:
                    a, b = slots
                    rev[a], rev[b] = b, a
            self._reverse_slot = rev
        return int(self._reverse_slot[slot])

    # ------------------------------------------------------------------
    # Random-walk stepping
    # ------------------------------------------------------------------
    def _cumulative_weights(self) -> np.ndarray:
        if self._cumweights is None:
            self._cumweights = np.cumsum(self.csr_weight)
        return self._cumweights

    def random_slot(self, v: int, rng: np.random.Generator) -> int:
        """Sample an outgoing slot at ``v`` with probability ∝ its weight."""
        lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
        if lo == hi:
            raise GraphError(f"node {v} is isolated; random walk undefined")
        if self._uniform_weights:
            return int(rng.integers(lo, hi))
        weights = self.csr_weight[lo:hi]
        total = weights.sum()
        return lo + int(np.searchsorted(np.cumsum(weights), rng.random() * total, side="right"))

    def random_neighbor(self, v: int, rng: np.random.Generator) -> int:
        """One step of the (weighted) simple random walk from ``v``."""
        return int(self.csr_target[self.random_slot(v, rng)])

    def step_walk_slots(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized single step: sample one outgoing slot per position.

        Returns an array of slot indices parallel to ``positions``.  The
        corresponding next positions are ``self.csr_target[slots]``.  For
        unweighted graphs this is a single vectorized draw; weighted graphs
        fall back to an inverse-CDF draw per position (still vectorized via
        searchsorted over per-node cumulative weights).
        """
        positions = np.asarray(positions, dtype=np.int64)
        lo = self.indptr[positions]
        deg = self.indptr[positions + 1] - lo
        if np.any(deg == 0):
            bad = positions[deg == 0][0]
            raise GraphError(f"node {int(bad)} is isolated; random walk undefined")
        if self._uniform_weights:
            offsets = rng.integers(0, deg)
            return lo + offsets
        cum = self._cumulative_weights()
        # cum[lo - 1] wraps to cum[-1] when lo == 0; np.where masks it out.
        base = np.where(lo > 0, cum[lo - 1], 0.0)
        node_total = self._weighted_degree[positions]
        u = rng.random(len(positions)) * node_total + base
        slots = np.searchsorted(cum, u, side="right")
        # Numerical safety: clamp into the node's own slot range.
        hi = lo + deg - 1
        return np.clip(slots, lo, hi)

    def step_walks(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized single walk step; returns the next positions."""
        return self.csr_target[self.step_walk_slots(positions, rng)]

    def walk(self, start: int, length: int, rng: np.random.Generator) -> list[int]:
        """Perform a ``length``-step walk from ``start``; returns all ℓ+1 positions.

        This is the *centralized* reference walk used by analysis code and
        tests; the distributed algorithms live in :mod:`repro.walks`.
        """
        if length < 0:
            raise GraphError(f"walk length must be non-negative, got {length}")
        path = [int(start)]
        current = int(start)
        for _ in range(length):
            current = self.random_neighbor(current, rng)
            path.append(current)
        return path

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def subgraph_is_spanning_tree(self, tree_edges: Iterable[tuple[int, int]]) -> bool:
        """Check that ``tree_edges`` forms a spanning tree of this graph."""
        edges = [(min(u, v), max(u, v)) for u, v in tree_edges]
        if len(edges) != self.n - 1:
            return False
        available = {(min(u, v), max(u, v)) for u, v in self._edges}
        if any(e not in available for e in edges):
            return False
        parent = list(range(self.n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in edges:
            ru, rv = find(u), find(v)
            if ru == rv:
                return False
            parent[ru] = rv
        return True

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __repr__(self) -> str:
        kind = "weighted " if self.is_weighted else ""
        return f"Graph({self.name!r}, n={self.n}, m={self.m}, {kind}CSR)"

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.MultiGraph` (for cross-checks in tests)."""
        import networkx as nx

        g = nx.MultiGraph()
        g.add_nodes_from(range(self.n))
        for (u, v), w in zip(self._edges, self._edge_weights):
            g.add_edge(u, v, weight=float(w))
        return g
