"""Graph-family generators.

Every experiment in the paper is stated for *arbitrary* undirected networks,
so the benches sweep a zoo of topologies with very different diameters,
degree profiles, and mixing times:

========================  ========================================  =====================
family                    why it appears in the experiments          key parameter regime
========================  ========================================  =====================
path / cycle              Lemma 2.6 tightness (visits ~ d(x)√ℓ);     D = Θ(n)
                          slow mixing, worst-case cover time
2-D grid / torus          moderate diameter D = Θ(√n)                τ_mix = Θ(n log n)
hypercube                 low diameter, good expansion               D = log n
random regular            expanders: τ_mix = Θ(log n)                D = Θ(log n)
Erdős–Rényi               "arbitrary network" sanity family          D = Θ(log n)
random geometric          the paper's ad-hoc-network motivation      τ_mix ≫ D by ~√n
barbell / lollipop        worst-case mixing/cover time               τ_mix = Θ(n²)..Θ(n³)
complete graph            Bar-Ilan & Zernik RST special case         D = 1
binary tree               BFS/convergecast structure tests           D = Θ(log n)
star                      degree-skew stress (deg-proportional       D = 2
                          Phase-1 ablation)
========================  ========================================  =====================

All generators take an explicit ``rng`` (when randomized) and return a
:class:`~repro.graphs.graph.Graph` whose ``name`` records family+parameters.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.util.rng import make_rng

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree_graph",
    "barbell_graph",
    "lollipop_graph",
    "edge_list_graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "random_geometric_graph",
    "standard_families",
]


def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``; diameter ``n-1``."""
    if n < 1:
        raise GraphError("path needs at least 1 node")
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name=f"path(n={n})")


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n ≥ 3`` nodes; diameter ``⌊n/2⌋``."""
    if n < 3:
        raise GraphError("cycle needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges, name=f"cycle(n={n})")


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n``; diameter 1."""
    if n < 2:
        raise GraphError("complete graph needs at least 2 nodes")
    edges = list(itertools.combinations(range(n), 2))
    return Graph(n, edges, name=f"complete(n={n})")


def star_graph(n: int) -> Graph:
    """Star: node 0 is the hub joined to ``n-1`` leaves; diameter 2."""
    if n < 2:
        raise GraphError("star needs at least 2 nodes")
    return Graph(n, [(0, i) for i in range(1, n)], name=f"star(n={n})")


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows × cols`` 2-D grid with 4-neighbor connectivity."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    if rows * cols < 2:
        raise GraphError("grid needs at least 2 nodes")

    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    return Graph(rows * cols, edges, name=f"grid({rows}x{cols})")


def torus_graph(rows: int, cols: int) -> Graph:
    """2-D torus (grid with wraparound); vertex-transitive, diameter ``⌊r/2⌋+⌊c/2⌋``."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs both dimensions >= 3 to avoid parallel edges")

    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((nid(r, c), nid(r, (c + 1) % cols)))
            edges.append((nid(r, c), nid((r + 1) % rows, c)))
    return Graph(rows * cols, edges, name=f"torus({rows}x{cols})")


def hypercube_graph(dim: int) -> Graph:
    """``dim``-dimensional hypercube: ``2^dim`` nodes, diameter ``dim``."""
    if dim < 1:
        raise GraphError("hypercube dimension must be >= 1")
    n = 1 << dim
    edges = [(v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)]
    return Graph(n, edges, name=f"hypercube(d={dim})")


def binary_tree_graph(height: int) -> Graph:
    """Complete binary tree of the given height: ``2^(h+1) - 1`` nodes."""
    if height < 0:
        raise GraphError("height must be >= 0")
    n = (1 << (height + 1)) - 1
    if n < 2:
        raise GraphError("binary tree needs at least 2 nodes (height >= 1)")
    edges = []
    for v in range(n):
        for child in (2 * v + 1, 2 * v + 2):
            if child < n:
                edges.append((v, child))
    return Graph(n, edges, name=f"binary_tree(h={height})")


def barbell_graph(clique_size: int, bridge_length: int = 1) -> Graph:
    """Two ``K_k`` cliques joined by a path of ``bridge_length`` edges.

    A classic slow-mixing topology: the walk takes Θ(k²·bridge) expected time
    to cross between the bells.
    """
    if clique_size < 3:
        raise GraphError("barbell cliques need at least 3 nodes")
    if bridge_length < 1:
        raise GraphError("bridge length must be >= 1")
    k = clique_size
    n_bridge = bridge_length - 1  # interior path nodes
    n = 2 * k + n_bridge
    edges = list(itertools.combinations(range(k), 2))
    right = [k + n_bridge + i for i in range(k)]
    edges.extend((right[a], right[b]) for a, b in itertools.combinations(range(k), 2))
    chain = [k - 1] + [k + i for i in range(n_bridge)] + [right[0]]
    edges.extend((chain[i], chain[i + 1]) for i in range(len(chain) - 1))
    return Graph(n, edges, name=f"barbell(k={k},bridge={bridge_length})")


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """``K_k`` with a path of ``tail_length`` edges attached.

    Has Θ(n³) cover time — the worst case over all graphs — so it stresses
    the RST doubling schedule.
    """
    if clique_size < 3:
        raise GraphError("lollipop clique needs at least 3 nodes")
    if tail_length < 1:
        raise GraphError("tail length must be >= 1")
    k = clique_size
    n = k + tail_length
    edges = list(itertools.combinations(range(k), 2))
    chain = [k - 1] + [k + i for i in range(tail_length)]
    edges.extend((chain[i], chain[i + 1]) for i in range(len(chain) - 1))
    return Graph(n, edges, name=f"lollipop(k={k},tail={tail_length})")


def erdos_renyi_graph(n: int, p: float, rng=None, *, require_connected: bool = True, max_tries: int = 200) -> Graph:
    """``G(n, p)``; by default retries until the sample is connected."""
    if n < 2:
        raise GraphError("G(n,p) needs at least 2 nodes")
    if not 0 < p <= 1:
        raise GraphError(f"edge probability must be in (0, 1], got {p}")
    rng = make_rng(rng)
    from repro.graphs.properties import is_connected  # local import avoids a cycle

    for _ in range(max_tries):
        upper = rng.random((n, n)) < p
        iu, ju = np.triu_indices(n, k=1)
        mask = upper[iu, ju]
        edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
        g = Graph(n, edges, name=f"gnp(n={n},p={p:g})")
        if not require_connected or is_connected(g):
            return g
    raise GraphError(f"no connected G({n},{p}) sample in {max_tries} tries; increase p")


def random_regular_graph(n: int, d: int, rng=None, *, max_tries: int = 500) -> Graph:
    """Random ``d``-regular simple graph via the pairing (configuration) model.

    Retries until the pairing yields a simple connected graph.  For
    ``d ≥ 3`` such graphs are expanders w.h.p., giving the Θ(log n)-mixing
    family the paper's `ℓ ≫ D` motivation talks about.
    """
    if n * d % 2 != 0:
        raise GraphError("n*d must be even for a d-regular graph")
    if d < 2 or d >= n:
        raise GraphError(f"need 2 <= d < n, got d={d}, n={n}")
    rng = make_rng(rng)
    from repro.graphs.properties import is_connected

    stubs_template = np.repeat(np.arange(n), d)
    for _ in range(max_tries):
        stubs = rng.permutation(stubs_template)
        pairs = stubs.reshape(-1, 2)
        if np.any(pairs[:, 0] == pairs[:, 1]):
            continue
        canon = np.sort(pairs, axis=1)
        keys = canon[:, 0] * n + canon[:, 1]
        if len(np.unique(keys)) != len(keys):
            continue
        g = Graph(n, [tuple(map(int, e)) for e in canon], name=f"random_regular(n={n},d={d})")
        if is_connected(g):
            return g
    raise GraphError(f"no simple connected {d}-regular graph on {n} nodes in {max_tries} tries")


def random_geometric_graph(n: int, radius: float, rng=None, *, max_tries: int = 200) -> Graph:
    """Random geometric graph on the unit square; the paper's ad-hoc model.

    Nodes are uniform in ``[0,1]²`` and joined when within ``radius``.  For
    radius near the connectivity threshold ``Θ(√(log n / n))`` the mixing
    time exceeds the diameter by a ``√n``-ish factor — the regime the paper
    cites (random geometric graphs, Muthukrishnan & Pandurangan) as the
    motivation for walks with ``D ≪ ℓ ≪ τ_mix``.
    """
    if n < 2:
        raise GraphError("RGG needs at least 2 nodes")
    if radius <= 0:
        raise GraphError("radius must be positive")
    rng = make_rng(rng)
    from repro.graphs.properties import is_connected

    for _ in range(max_tries):
        points = rng.random((n, 2))
        diff = points[:, None, :] - points[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diff, diff)
        iu, ju = np.triu_indices(n, k=1)
        mask = dist2[iu, ju] <= radius * radius
        edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
        g = Graph(n, edges, name=f"rgg(n={n},r={radius:g})")
        if is_connected(g):
            return g
    raise GraphError(f"no connected RGG(n={n}, r={radius}) in {max_tries} tries; increase radius")


def edge_list_graph(path, name: str | None = None) -> Graph:
    """Load a graph from a whitespace edge-list file (``u v [w]`` lines).

    The interchange format real graph corpora ship in (SNAP et al.): one
    undirected edge per line as two integer node IDs and an optional
    positive weight; blank lines and ``#`` comments are skipped.  Node
    count is ``max id + 1`` — IDs must be dense enough that isolated
    trailing nodes are intended.  Weights default to 1.0; a file that
    weights only some edges weights the rest 1.0.
    """
    path = str(path)
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    weighted = False
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v [w]', got {raw.strip()!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: {exc}") from exc
            if u < 0 or v < 0:
                raise GraphError(f"{path}:{lineno}: node ids must be >= 0")
            edges.append((u, v))
            weights.append(w)
            weighted = weighted or len(parts) == 3
    if not edges:
        raise GraphError(f"{path}: no edges found")
    n = max(max(u, v) for u, v in edges) + 1
    return Graph(
        n,
        edges,
        weights=weights if weighted else None,
        name=name if name is not None else f"file({path})",
    )


def standard_families(scale: int = 1, seed: int = 0) -> list[Graph]:
    """A representative bundle of topologies at a given size scale.

    ``scale=1`` yields graphs of ~60–70 nodes, ``scale=2`` ~250, etc.; used
    by integration tests and benches that want breadth without hand-picking.
    """
    if scale < 1:
        raise GraphError("scale must be >= 1")
    side = 8 * scale
    n = side * side
    rng = make_rng(seed)
    return [
        cycle_graph(n),
        torus_graph(side, side),
        hypercube_graph(max(3, int(math.log2(n)))),
        random_regular_graph(n, 4, rng),
        barbell_graph(max(6, side), max(2, side // 2)),
        erdos_renyi_graph(n, min(1.0, 3.0 * math.log(n) / n), rng),
    ]
