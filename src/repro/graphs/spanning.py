"""Spanning-tree counting and enumeration (used to verify RST uniformity).

Theorem 4.1 claims the distributed Aldous–Broder algorithm outputs a
*uniform* random spanning tree.  To test that statistically we need ground
truth:

* :func:`spanning_tree_count` — Kirchhoff's matrix–tree theorem, computed
  exactly over the integers with the fraction-free Bareiss algorithm (no
  floating-point determinant drift for the small graphs we test on), with a
  float fallback for large graphs.
* :func:`enumerate_spanning_trees` — explicit enumeration for small graphs,
  so chi-square tests can compare observed tree frequencies against the
  uniform law over the *actual* tree set.
* :func:`canonical_tree` — a hashable canonical form for a tree's edge set.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "canonical_tree",
    "enumerate_spanning_trees",
    "spanning_tree_count",
    "spanning_tree_count_float",
]

TreeKey = tuple[tuple[int, int], ...]


def canonical_tree(edges: Iterable[tuple[int, int]]) -> TreeKey:
    """Canonical hashable form of an edge set: sorted tuple of sorted pairs."""
    return tuple(sorted((min(u, v), max(u, v)) for u, v in edges))


def _bareiss_determinant(matrix: list[list[int]]) -> int:
    """Exact integer determinant via the fraction-free Bareiss algorithm."""
    m = [row[:] for row in matrix]
    n = len(m)
    if n == 0:
        return 1
    sign = 1
    prev = 1
    for k in range(n - 1):
        if m[k][k] == 0:
            pivot_row = next((r for r in range(k + 1, n) if m[r][k] != 0), None)
            if pivot_row is None:
                return 0
            m[k], m[pivot_row] = m[pivot_row], m[k]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
            m[i][k] = 0
        prev = m[k][k]
    return sign * m[n - 1][n - 1]


def _reduced_laplacian(graph: Graph) -> list[list[int]]:
    """Integer Laplacian with row/column 0 deleted (multigraph-aware)."""
    n = graph.n
    lap = [[0] * n for _ in range(n)]
    for u, v in graph.edges():
        if u == v:
            continue  # self-loops do not affect spanning trees
        lap[u][u] += 1
        lap[v][v] += 1
        lap[u][v] -= 1
        lap[v][u] -= 1
    return [row[1:] for row in lap[1:]]


def spanning_tree_count(graph: Graph) -> int:
    """Exact number of spanning trees (matrix–tree theorem, integer math).

    Parallel edges are counted as distinct (multigraph semantics, matching
    the walk's view of the graph); self-loops are ignored.
    """
    if graph.n == 1:
        return 1
    return _bareiss_determinant(_reduced_laplacian(graph))


def spanning_tree_count_float(graph: Graph) -> float:
    """Floating-point matrix–tree count for graphs too large for exact math."""
    if graph.n == 1:
        return 1.0
    reduced = np.array(_reduced_laplacian(graph), dtype=np.float64)
    sign, logdet = np.linalg.slogdet(reduced)
    if sign <= 0:
        return 0.0
    return float(np.exp(logdet))


def enumerate_spanning_trees(graph: Graph, *, max_edges: int = 20) -> list[TreeKey]:
    """All spanning trees of a small graph, as canonical edge tuples.

    Enumerates ``C(m, n-1)`` candidate subsets, so it is gated on ``m`` to
    avoid accidental combinatorial explosions in tests.  Parallel edges
    between the same pair collapse to one canonical tree (the walk cannot
    distinguish which parallel edge it used when edges are unlabeled), so
    for multigraphs the result is the set of distinct tree *shapes*.
    """
    if graph.m > max_edges:
        raise GraphError(
            f"refusing to enumerate spanning trees of a graph with m={graph.m} > {max_edges}"
        )
    edges = [(min(u, v), max(u, v)) for u, v in graph.edges() if u != v]
    trees: set[TreeKey] = set()
    for subset in itertools.combinations(edges, graph.n - 1):
        if graph.subgraph_is_spanning_tree(subset):
            trees.add(canonical_tree(subset))
    return sorted(trees)


def tree_probabilities(graph: Graph) -> dict[TreeKey, float]:
    """Exact uniform-RST law over canonical trees of a (simple) small graph.

    For simple graphs every canonical tree has probability
    ``1 / spanning_tree_count``.  For multigraphs a tree shape's probability
    is proportional to the product of edge multiplicities, which we compute
    by counting labeled trees per shape.
    """
    multiplicity: dict[tuple[int, int], int] = {}
    for u, v in graph.edges():
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        multiplicity[key] = multiplicity.get(key, 0) + 1
    shapes = enumerate_spanning_trees(graph)
    weights: dict[TreeKey, float] = {}
    for shape in shapes:
        w = 1
        for e in shape:
            w *= multiplicity[e]
        weights[shape] = float(w)
    total = sum(weights.values())
    if total <= 0:
        raise GraphError("graph has no spanning trees")
    return {shape: w / total for shape, w in weights.items()}


def degree_sequence_of_tree(edges: Sequence[tuple[int, int]], n: int) -> tuple[int, ...]:
    """Degree sequence of a tree edge set — a coarse shape invariant for tests."""
    deg = [0] * n
    for u, v in edges:
        deg[u] += 1
        deg[v] += 1
    return tuple(sorted(deg))
