"""The session façade: one object that owns graph, network, RNG, and pool.

``WalkEngine`` is the single entry point for every algorithm and
application in the library::

    from repro.engine import WalkEngine

    engine = WalkEngine(graph, seed=7)
    engine.prepare(length_hint=4096)        # optional explicit warm-up
    r1 = engine.walk(0, 4096)               # served from the shared pool
    r2 = engine.walk(9, 4096)               # ...no second Phase 1
    engine.stats()                          # occupancy, refills, ledger

The package is split so the dependency arrows stay acyclic:

* :mod:`repro.engine.model` — the unified request/result model
  (:class:`WalkRequest`, :class:`ResultBase`, :class:`EngineStats`);
  import-light, inherited by the ``repro.walks`` result classes.
* :mod:`repro.engine.core` — :class:`WalkEngine` itself; imports the walk
  algorithms and applications, so it is loaded lazily here (PEP 562) to
  let ``repro.walks`` import the model without a cycle.
"""

from repro.engine.model import ALGORITHMS, EngineStats, ResultBase, WalkRequest
from repro.engine.pool import MaintenanceReport, PoolManager, PoolShard

__all__ = [
    "ALGORITHMS",
    "EngineStats",
    "FaultController",
    "FaultReport",
    "MaintenanceReport",
    "PoolManager",
    "PoolShard",
    "RECOVERY_PHASE",
    "ResultBase",
    "WalkRequest",
    "WalkEngine",
    "Phase1Pool",
]

_LAZY = {"WalkEngine", "Phase1Pool"}
_LAZY_FAULTS = {"FaultController", "FaultReport", "RECOVERY_PHASE"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.engine import core

        return getattr(core, name)
    if name in _LAZY_FAULTS:
        from repro.engine import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _LAZY | _LAZY_FAULTS)
