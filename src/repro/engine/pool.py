"""Sharded occupancy management for the persistent Phase-1 pool.

The :class:`~repro.engine.core.WalkEngine`'s pool (PR 2) refilled purely
*reactively*: a query stitching through a dry connector paid a GET-MORE-WALKS
round trip mid-request, and one hot query source could drain the whole
Θ(η·m) token population before quieter sources ever queried.  This module
adds the two control loops arXiv:1201.1363's k-walk serving regime assumes:

* **Shards** — the per-source token buckets are partitioned into
  ``num_shards`` shards (source ``v`` belongs to shard ``v mod num_shards``).
  Each shard owns an occupancy *quota* (its Phase-1 allocation,
  ``Σ ⌈η·deg(v)⌉`` over its sources) and a *low watermark*; draining and
  refill decisions are per-shard, so an adversarial stream hammering one
  neighborhood exhausts only the shards it actually stitches through.
* **Background refills** — :meth:`PoolManager.maintain` detects every shard
  below its watermark and tops all of them up in **one** batched
  GET-MORE-WALKS sweep (:func:`~repro.walks.get_more_walks.
  get_more_walks_batch`): all depleted sources launch tokens simultaneously,
  charged by per-edge distinct-source congestion rather than serially per
  node.  The engine auto-triggers a sweep *between* requests, so its rounds
  land on the session ledger under the ``"pool-refill/maintain"`` sub-phase
  but never in any request's delta — background work, charged, not free.

Refill targets are per-source: a depleted shard refills each member source
back to its Phase-1 base allocation, which restores the shard to quota and
keeps the token population degree-proportional (the shape Lemma 2.6's
hitting argument sizes the pool for).

The serving subsystem (:mod:`repro.serve`, PR 4) drives :meth:`PoolManager.
maintain` with a **round budget** per scheduling tick: depleted shards are
ordered emptiest/most-demanded first and refilled only as far as the
budget's price allows (:meth:`PoolManager.estimate_refill_rounds`, the same
estimator admission control uses to reject requests whose source shard
cannot be restored in time).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import POOL_REFILL_CHURN, POOL_REFILL_MAINTAIN
from repro.errors import WalkError
from repro.walks.get_more_walks import get_more_walks_batch
from repro.walks.short_walks import token_counts

__all__ = ["CHURN_PHASE", "MAINTAIN_PHASE", "MaintenanceReport", "PoolManager", "PoolShard"]

#: Ledger sub-phase background refill sweeps charge to (reactive mid-request
#: refills keep charging plain ``"pool-refill"``; ``RoundLedger.phase_total
#: ("pool-refill")`` sums the family).
MAINTAIN_PHASE = POOL_REFILL_MAINTAIN

#: Ledger sub-phase for churn-driven regeneration: after a
#: :class:`~repro.dynamic.delta.GraphDelta` evicts invalidated tokens,
#: :meth:`PoolManager.restore_shards` launches their replacements under this
#: name — same accounting contract as :data:`MAINTAIN_PHASE` (on the session
#: ledger, summed by the ``pool-refill`` family, never in a request delta).
CHURN_PHASE = POOL_REFILL_CHURN


def default_num_shards(n: int) -> int:
    """Shard-count policy: ``min(64, ⌈√n⌉)``, at least 1.

    √n shards keeps both the per-shard source count and the shard count
    sublinear; the cap bounds watermark-scan work for huge graphs.
    """
    n = max(1, n)
    return min(64, math.isqrt(n - 1) + 1)  # isqrt(n-1)+1 == ceil(sqrt(n))


@dataclass
class PoolShard:
    """Occupancy bookkeeping for one shard of the Phase-1 pool.

    ``quota`` is the shard's Phase-1 token allocation (the occupancy a
    refill sweep restores); ``low_watermark`` the unused-token level below
    which the shard is *depleted* and joins the next background sweep.
    """

    shard_id: int
    num_sources: int
    quota: int
    low_watermark: int
    refills: int = 0  # background sweeps that topped this shard up
    tokens_added: int = 0  # tokens those sweeps launched for this shard
    tokens_served: int = 0  # tokens stitching consumed out of this shard


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one :meth:`PoolManager.maintain` call.

    ``swept`` is False when no shard sat below its watermark (the call was
    a free occupancy check); ``rounds`` is the simulated cost of the batched
    refill sweep, charged to :data:`MAINTAIN_PHASE`.  Under a
    ``round_budget`` (the deadline-driven maintain policy) ``deferred_shards``
    names the depleted shards the budget pushed to a later tick —
    emptiest-first ordering guarantees they are strictly less urgent than
    every shard actually refilled.
    """

    swept: bool
    shards_refilled: tuple[int, ...]
    sources_refilled: int
    tokens_added: int
    rounds: int
    deferred_shards: tuple[int, ...] = ()
    estimated_rounds: int = 0


class PoolManager:
    """Per-shard quotas, watermarks, and batched background refills.

    Parameters
    ----------
    pool:
        The engine's live :class:`~repro.engine.core.Phase1Pool`; the
        manager reads occupancy through its columnar store's per-source
        counts and refills with the pool's own ``lam``/``record_paths``
        policy (pools stay parameter-homogeneous).
    graph:
        Topology, for degrees (base allocations) and the shard map.
    num_shards:
        Shard count; default :func:`default_num_shards`.
    watermark_fraction:
        ``low_watermark = max(1, ⌈fraction · quota⌉)`` per shard.
    """

    def __init__(
        self,
        pool,
        graph,
        *,
        num_shards: int | None = None,
        watermark_fraction: float = 0.5,
    ) -> None:
        n = graph.n
        if num_shards is None:
            num_shards = default_num_shards(n)
        if num_shards < 1:
            raise WalkError(f"num_shards must be >= 1, got {num_shards}")
        if not 0.0 < watermark_fraction <= 1.0:
            raise WalkError(
                f"watermark_fraction must be in (0, 1], got {watermark_fraction}"
            )
        self.pool = pool
        self.graph = graph
        self.num_shards = int(min(num_shards, n))
        self.watermark_fraction = float(watermark_fraction)
        members = np.bincount(
            np.arange(n, dtype=np.int64) % self.num_shards, minlength=self.num_shards
        )
        # Quotas and watermarks come from rebuild_quotas below — ONE home
        # for the allocation math, shared with the churn cascade.
        self.shards = [
            PoolShard(shard_id=s, num_sources=int(members[s]), quota=0, low_watermark=1)
            for s in range(self.num_shards)
        ]
        self.maintenance_sweeps = 0
        self.churn_sweeps = 0
        # Speculative prefetch: transient per-shard demand fed by the
        # serving scheduler from queued-but-unserviced tickets, consumed by
        # the next maintenance ordering (see :meth:`note_demand`).
        self._prefetch_demand = np.zeros(self.num_shards, dtype=np.float64)
        # Adaptive cost model for refill sweeps: one batched GET-MORE-WALKS
        # runs at most ``2λ−1`` iterations, each charged by the worst
        # per-edge distinct-source overlap, and the overlap grows with the
        # token load of the sweep.  We price a sweep launching T tokens as
        # ``(2λ−1) · (1 + c·T)`` where ``c`` is an EMA of the *observed*
        # per-token excess congestion (rounds/(2λ−1) − 1)/T of past sweeps
        # — 0 before any sweep, so a congestion-free pool prices every
        # sweep at the flat iteration base and only starts charging for
        # size once size has actually been seen to cost rounds.
        self._congestion_per_token = 0.0
        # O(1) early-out state for maintain(): after each occupancy scan we
        # remember how many tokens had been consumed and the smallest
        # headroom any shard had above its watermark.  Shard occupancy only
        # *falls* through consumption, so until that many further tokens
        # are consumed no shard can have crossed — the healthy steady state
        # skips the O(n) scan entirely.
        self._consumed_at_scan = -1
        self._min_margin_at_scan = 0
        self.rebuild_quotas()

    # ------------------------------------------------------------------
    # Occupancy views
    # ------------------------------------------------------------------
    def shard_of(self, source: int) -> int:
        return int(source) % self.num_shards

    def shard_unused(self) -> np.ndarray:
        """Unused-token count per shard, from the store's columnar counts."""
        sources, counts = self.pool.store.source_count_arrays()
        return np.bincount(
            sources % self.num_shards,
            weights=counts.astype(np.float64),
            minlength=self.num_shards,
        ).astype(np.int64)

    def depleted_shards(self) -> list[int]:
        """Shards currently below their low watermark."""
        unused = self.shard_unused()
        self._note_scan(unused)
        return [s.shard_id for s in self.shards if unused[s.shard_id] < s.low_watermark]

    def _retired_tokens(self) -> int:
        """Tokens gone from the pool by any means (consumed or churn-evicted)."""
        return self.pool.store.tokens_consumed + self.pool.store.tokens_evicted

    def _note_scan(self, unused: np.ndarray) -> None:
        """Refresh the retired-token early-out after an occupancy scan."""
        self._consumed_at_scan = self._retired_tokens()
        self._min_margin_at_scan = min(
            int(unused[s.shard_id]) - s.low_watermark for s in self.shards
        )

    def _possibly_depleted(self) -> bool:
        """Cheap necessary condition for any shard sitting below watermark.

        Occupancy falls only via consumption or churn eviction, so if fewer
        tokens were retired since the last scan than the smallest shard
        headroom seen then, every shard is still at or above its watermark.
        """
        if self._consumed_at_scan < 0 or self._min_margin_at_scan < 0:
            return True
        return (
            self._retired_tokens() - self._consumed_at_scan
            >= max(1, self._min_margin_at_scan)
        )

    def rebuild_quotas(self) -> None:
        """Derive base allocations and shard quotas from current degrees.

        The single home of the allocation math — Phase-1 allocations are
        ``⌈η·deg(v)⌉`` (the shape Lemma 2.6's hitting argument sizes the
        pool for), binned into shard quotas with watermarks at
        ``⌈fraction·quota⌉``.  Construction calls this once; the churn
        cascade calls it again after
        :meth:`~repro.graphs.graph.Graph.apply_delta` changed the degree
        profile, so quotas and watermarks track the *new* degrees.  Shard
        membership, the refill/served counters, and the congestion price
        EMA all survive — only the occupancy targets move.  The
        retired-token early-out is reset: watermarks just changed, so the
        cached margins are stale.
        """
        n = self.graph.n
        self._base_counts = token_counts(self.graph.degrees, self.pool.eta, degree_proportional=True)
        shard_ids = np.arange(n, dtype=np.int64) % self.num_shards
        quotas = np.bincount(
            shard_ids, weights=self._base_counts.astype(np.float64), minlength=self.num_shards
        ).astype(np.int64)
        for shard in self.shards:
            shard.quota = int(quotas[shard.shard_id])
            shard.low_watermark = max(
                1, int(math.ceil(self.watermark_fraction * int(quotas[shard.shard_id])))
            )
        self._consumed_at_scan = -1
        self._min_margin_at_scan = 0

    def outstanding_deficit(self) -> int:
        """Tokens a full watermark sweep would launch *right now*.

        Zero immediately after an unbudgeted :meth:`maintain`; positive when
        shards sit below watermark (e.g. because a round budget deferred
        them) — the telemetry gap PR 3 left in ``EngineStats``.
        """
        depleted = self.depleted_shards()
        if not depleted:
            return 0
        _sources, counts = self.refill_plan(depleted)
        return int(counts.sum())

    def estimate_refill_rounds(self, shard_ids) -> int:
        """Price one batched sweep restoring ``shard_ids`` to quota.

        The sweep runs at most ``2λ−1`` iterations (λ common steps plus the
        reservoir extension), each charged by the worst per-edge
        distinct-source overlap; we price it with :meth:`_price` — the
        iteration base scaled by the EMA-calibrated per-token congestion of
        past sweeps, applied to this set's token deficit, so bigger refills
        cost estimably more once congestion has ever been observed.  Pure
        bookkeeping — nothing is charged to the ledger, so admission
        control can price requests for free.
        """
        _sources, counts = self.refill_plan(list(shard_ids))
        return self._price(int(counts.sum()))

    def _price(self, tokens: int) -> int:
        """Model rounds for one batched sweep launching ``tokens`` tokens."""
        if tokens <= 0:
            return 0
        base = 2 * self.pool.lam - 1
        return max(1, int(math.ceil(base * (1.0 + self._congestion_per_token * tokens))))

    def record_served(self, token_source: int) -> None:
        """Attribute one consumed token to its shard (stitching telemetry)."""
        self.shards[self.shard_of(token_source)].tokens_served += 1

    # ------------------------------------------------------------------
    # Background refill
    # ------------------------------------------------------------------
    def refill_plan(self, shard_ids: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Per-source deficits restoring the given shards to quota.

        Returns parallel ``(sources, counts)`` arrays (ascending source
        order — deterministic for fixed-seed replay); a source appears only
        if it currently holds fewer unused tokens than its Phase-1 base
        allocation.
        """
        if not shard_ids:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        n = self.graph.n
        current = np.zeros(n, dtype=np.int64)
        src, cnt = self.pool.store.source_count_arrays()
        current[src] = cnt
        member = np.isin(np.arange(n, dtype=np.int64) % self.num_shards, shard_ids)
        deficit = np.where(member, self._base_counts - current, 0)
        needy = np.nonzero(deficit > 0)[0]
        return needy, deficit[needy]

    def note_demand(self, shard_ids, *, weight: float = 1.0) -> None:
        """Register speculative demand for shards (queued-but-unserviced walks).

        The serving scheduler peeks its queues each tick and feeds the
        source shards of tickets *waiting* for a later cohort in here; the
        next :meth:`maintenance_order` treats each unit of demand as one
        token of extra urgency, so a deadline-budgeted maintain warms the
        shards those cohorts will stitch through before they run.  Demand
        is transient — consumed (cleared) by the next budgeted sweep — so
        a ticket that drains from the queue stops inflating priorities.

        ``weight`` scales each note (multi-tenant serving, PR 7): a
        queued walk from a weight-4 tenant exerts 4× the warming pressure
        of a weight-1 tenant's, matching the share of upcoming cohorts
        deficit-round-robin will actually grant it.  Ordering pressure
        only — budgets and refill amounts never change.
        """
        for s in shard_ids:
            self._prefetch_demand[int(s)] += weight

    def maintenance_order(self, shard_ids: list[int], unused: np.ndarray | None = None) -> list[int]:
        """Deadline-driven refill priority: emptiest / most-demanded first.

        Sorts by (unused − watermark − queued demand) ascending — how deep
        below its watermark a shard sits, with each unit of speculative
        demand (:meth:`note_demand`) counting as one token of extra depth —
        breaking ties by historical demand (``tokens_served`` descending),
        then shard id for determinism.  ``unused`` lets a caller that
        already scanned occupancy skip the rescan.
        """
        if unused is None:
            unused = self.shard_unused()
        return sorted(
            shard_ids,
            key=lambda s: (
                int(unused[s]) - self.shards[s].low_watermark - float(self._prefetch_demand[s]),
                -self.shards[s].tokens_served,
                s,
            ),
        )

    def maintain(
        self,
        network: Network,
        rng: np.random.Generator,
        *,
        phase: str = MAINTAIN_PHASE,
        round_budget: int | None = None,
        exclude_shards=None,
    ) -> MaintenanceReport:
        """One background sweep: batch-refill depleted shards to quota.

        A no-op (and zero rounds) when every shard sits at or above its
        watermark — the engine can call this after every request without
        paying anything in the healthy steady state (an O(1) consumed-token
        check skips even the occupancy scan until enough tokens have been
        consumed for some shard to possibly have crossed).

        With ``round_budget=None`` every depleted shard refills in one
        batched sweep (the PR-3 full-quota behavior).  With a budget the
        sweep becomes the **deadline-driven policy**: depleted shards are
        ordered emptiest/most-demanded first (:meth:`maintenance_order`)
        and the sweep takes the longest prefix whose modeled price
        (:meth:`_price`, token-weighted) stays within the budget; the rest
        are reported as ``deferred_shards``.  Two deliberate edges: the
        most urgent shard always refills even when its price alone exceeds
        the budget (deferring everything would starve the very shard
        admission control is rejecting requests over), and once that
        violation is forced, further shards that do not raise the modeled
        price above what is already being paid join the same batched sweep
        — with no observed congestion a sweep costs its ``2λ−1`` iteration
        base regardless of size, so splitting it across ticks would buy
        nothing and pay the base repeatedly.

        ``exclude_shards`` names shards this sweep must not touch even when
        depleted — the serving scheduler's backoff for shards whose refills
        keep stalling on crashed sources.  Excluded depleted shards are
        reported in ``deferred_shards`` so their deficit stays visible.
        """
        excluded = frozenset(int(s) for s in exclude_shards) if exclude_shards else frozenset()
        try:
            if not self._possibly_depleted():
                return self._empty_report()
            unused = self.shard_unused()
            self._note_scan(unused)
            depleted = [s.shard_id for s in self.shards if unused[s.shard_id] < s.low_watermark]
            skipped = tuple(s for s in depleted if s in excluded)
            depleted = [s for s in depleted if s not in excluded]
            if not depleted:
                if skipped:
                    return MaintenanceReport(
                        swept=False,
                        shards_refilled=(),
                        sources_refilled=0,
                        tokens_added=0,
                        rounds=0,
                        deferred_shards=skipped,
                    )
                return self._empty_report()
            report = self._sweep(
                network, rng, depleted, unused, phase=phase, round_budget=round_budget
            )
            if report.swept:
                self.maintenance_sweeps += 1
            if skipped:
                report = dataclasses.replace(
                    report, deferred_shards=report.deferred_shards + skipped
                )
            return report
        finally:
            # Speculative demand is per-tick: whatever the scheduler noted
            # has now either informed this ordering or expired with it.
            self._prefetch_demand[:] = 0

    def restore_shards(
        self,
        network: Network,
        rng: np.random.Generator,
        shard_ids,
        *,
        phase: str = CHURN_PHASE,
        round_budget: int | None = None,
    ) -> MaintenanceReport:
        """Charged regeneration: top the given shards back up to quota.

        The churn cascade's refill entry point: after invalidated tokens
        are evicted and :meth:`rebuild_quotas` re-derived targets from the
        new degree profile, this launches every affected source's deficit
        in one batched GET-MORE-WALKS sweep billed to :data:`CHURN_PHASE`.
        Unlike :meth:`maintain` it does not gate on watermarks — churn is
        an exogenous event and the affected shards are named by the caller
        — but it shares the same budget-prefix policy, so a
        ``round_budget`` defers the least-urgent shards and leaves their
        deficit visible to admission pricing
        (:meth:`estimate_refill_rounds` folds any outstanding deficit into
        a request's modeled refill cost).
        """
        ids = sorted({int(s) for s in shard_ids})
        if not ids:
            return self._empty_report()
        unused = self.shard_unused()
        self._note_scan(unused)
        report = self._sweep(network, rng, ids, unused, phase=phase, round_budget=round_budget)
        if report.swept:
            self.churn_sweeps += 1
        return report

    @staticmethod
    def _empty_report() -> MaintenanceReport:
        return MaintenanceReport(
            swept=False, shards_refilled=(), sources_refilled=0, tokens_added=0, rounds=0
        )

    def _sweep(
        self,
        network: Network,
        rng: np.random.Generator,
        shard_ids: list[int],
        unused: np.ndarray,
        *,
        phase: str,
        round_budget: int | None,
    ) -> MaintenanceReport:
        """One batched refill of ``shard_ids`` to quota, optionally budgeted."""
        # ONE deficit scan serves pricing, budget selection, and the sweep.
        sources, counts = self.refill_plan(shard_ids)
        if sources.size == 0:
            return self._empty_report()
        # Drop shards with no deficit (restore_shards may name shards that
        # are already at quota) in one pass over the plan.
        present = set(np.unique(sources % self.num_shards).tolist())
        shard_ids = [s for s in shard_ids if s in present]
        deferred: tuple[int, ...] = ()
        estimate = self._price(int(counts.sum()))
        if round_budget is not None and estimate > round_budget and len(shard_ids) > 1:
            per_shard = np.bincount(
                sources % self.num_shards,
                weights=counts.astype(np.float64),
                minlength=self.num_shards,
            ).astype(np.int64)
            ordered = self.maintenance_order(shard_ids, unused)
            cum = int(per_shard[ordered[0]])
            floor = self._price(cum)  # the forced minimum-progress price
            cut = 1
            for s in ordered[1:]:
                next_price = self._price(cum + int(per_shard[s]))
                if next_price > max(round_budget, floor):
                    break
                cum += int(per_shard[s])
                cut += 1
            shard_ids, deferred = ordered[:cut], tuple(ordered[cut:])
            if deferred:
                mask = np.isin(sources % self.num_shards, shard_ids)
                sources, counts = sources[mask], counts[mask]
            estimate = self._price(int(counts.sum()))
        rounds = get_more_walks_batch(
            network,
            self.pool.store,
            sources,
            counts,
            self.pool.lam,
            rng,
            randomized_lengths=True,
            record_paths=self.pool.record_paths,
            phase=phase,
        )
        added_per_shard = np.bincount(
            sources % self.num_shards,
            weights=counts.astype(np.float64),
            minlength=self.num_shards,
        ).astype(np.int64)
        for s in shard_ids:
            self.shards[s].refills += 1
            self.shards[s].tokens_added += int(added_per_shard[s])
        # Calibrate the price model: excess rounds over the iteration base,
        # normalized per token launched, folded into the EMA.
        base = 2 * self.pool.lam - 1
        tokens_swept = int(counts.sum())
        observed = max(0.0, rounds / base - 1.0) / max(1, tokens_swept)
        self._congestion_per_token = 0.5 * self._congestion_per_token + 0.5 * observed
        return MaintenanceReport(
            swept=True,
            shards_refilled=tuple(shard_ids),
            sources_refilled=int(sources.size),
            tokens_added=int(counts.sum()),
            rounds=rounds,
            deferred_shards=deferred,
            estimated_rounds=estimate,
        )
