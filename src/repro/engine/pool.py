"""Sharded occupancy management for the persistent Phase-1 pool.

The :class:`~repro.engine.core.WalkEngine`'s pool (PR 2) refilled purely
*reactively*: a query stitching through a dry connector paid a GET-MORE-WALKS
round trip mid-request, and one hot query source could drain the whole
Θ(η·m) token population before quieter sources ever queried.  This module
adds the two control loops arXiv:1201.1363's k-walk serving regime assumes:

* **Shards** — the per-source token buckets are partitioned into
  ``num_shards`` shards (source ``v`` belongs to shard ``v mod num_shards``).
  Each shard owns an occupancy *quota* (its Phase-1 allocation,
  ``Σ ⌈η·deg(v)⌉`` over its sources) and a *low watermark*; draining and
  refill decisions are per-shard, so an adversarial stream hammering one
  neighborhood exhausts only the shards it actually stitches through.
* **Background refills** — :meth:`PoolManager.maintain` detects every shard
  below its watermark and tops all of them up in **one** batched
  GET-MORE-WALKS sweep (:func:`~repro.walks.get_more_walks.
  get_more_walks_batch`): all depleted sources launch tokens simultaneously,
  charged by per-edge distinct-source congestion rather than serially per
  node.  The engine auto-triggers a sweep *between* requests, so its rounds
  land on the session ledger under the ``"pool-refill/maintain"`` sub-phase
  but never in any request's delta — background work, charged, not free.

Refill targets are per-source: a depleted shard refills each member source
back to its Phase-1 base allocation, which restores the shard to quota and
keeps the token population degree-proportional (the shape Lemma 2.6's
hitting argument sizes the pool for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.congest.network import Network
from repro.errors import WalkError
from repro.walks.get_more_walks import get_more_walks_batch
from repro.walks.short_walks import token_counts

__all__ = ["MAINTAIN_PHASE", "MaintenanceReport", "PoolManager", "PoolShard"]

#: Ledger sub-phase background refill sweeps charge to (reactive mid-request
#: refills keep charging plain ``"pool-refill"``; ``RoundLedger.phase_total
#: ("pool-refill")`` sums the family).
MAINTAIN_PHASE = "pool-refill/maintain"


def default_num_shards(n: int) -> int:
    """Shard-count policy: ``min(64, ⌈√n⌉)``, at least 1.

    √n shards keeps both the per-shard source count and the shard count
    sublinear; the cap bounds watermark-scan work for huge graphs.
    """
    n = max(1, n)
    return min(64, math.isqrt(n - 1) + 1)  # isqrt(n-1)+1 == ceil(sqrt(n))


@dataclass
class PoolShard:
    """Occupancy bookkeeping for one shard of the Phase-1 pool.

    ``quota`` is the shard's Phase-1 token allocation (the occupancy a
    refill sweep restores); ``low_watermark`` the unused-token level below
    which the shard is *depleted* and joins the next background sweep.
    """

    shard_id: int
    num_sources: int
    quota: int
    low_watermark: int
    refills: int = 0  # background sweeps that topped this shard up
    tokens_added: int = 0  # tokens those sweeps launched for this shard
    tokens_served: int = 0  # tokens stitching consumed out of this shard


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one :meth:`PoolManager.maintain` call.

    ``swept`` is False when no shard sat below its watermark (the call was
    a free occupancy check); ``rounds`` is the simulated cost of the batched
    refill sweep, charged to :data:`MAINTAIN_PHASE`.
    """

    swept: bool
    shards_refilled: tuple[int, ...]
    sources_refilled: int
    tokens_added: int
    rounds: int


class PoolManager:
    """Per-shard quotas, watermarks, and batched background refills.

    Parameters
    ----------
    pool:
        The engine's live :class:`~repro.engine.core.Phase1Pool`; the
        manager reads occupancy through its columnar store's per-source
        counts and refills with the pool's own ``lam``/``record_paths``
        policy (pools stay parameter-homogeneous).
    graph:
        Topology, for degrees (base allocations) and the shard map.
    num_shards:
        Shard count; default :func:`default_num_shards`.
    watermark_fraction:
        ``low_watermark = max(1, ⌈fraction · quota⌉)`` per shard.
    """

    def __init__(
        self,
        pool,
        graph,
        *,
        num_shards: int | None = None,
        watermark_fraction: float = 0.5,
    ) -> None:
        n = graph.n
        if num_shards is None:
            num_shards = default_num_shards(n)
        if num_shards < 1:
            raise WalkError(f"num_shards must be >= 1, got {num_shards}")
        if not 0.0 < watermark_fraction <= 1.0:
            raise WalkError(
                f"watermark_fraction must be in (0, 1], got {watermark_fraction}"
            )
        self.pool = pool
        self.graph = graph
        self.num_shards = int(min(num_shards, n))
        self.watermark_fraction = float(watermark_fraction)
        # Per-source Phase-1 base allocation — the refill target.
        self._base_counts = token_counts(graph.degrees, pool.eta, degree_proportional=True)
        shard_ids = np.arange(n, dtype=np.int64) % self.num_shards
        quotas = np.bincount(
            shard_ids, weights=self._base_counts.astype(np.float64), minlength=self.num_shards
        ).astype(np.int64)
        members = np.bincount(shard_ids, minlength=self.num_shards)
        self.shards = [
            PoolShard(
                shard_id=s,
                num_sources=int(members[s]),
                quota=int(quotas[s]),
                low_watermark=max(1, int(math.ceil(watermark_fraction * int(quotas[s])))),
            )
            for s in range(self.num_shards)
        ]
        self.maintenance_sweeps = 0
        # O(1) early-out state for maintain(): after each occupancy scan we
        # remember how many tokens had been consumed and the smallest
        # headroom any shard had above its watermark.  Shard occupancy only
        # *falls* through consumption, so until that many further tokens
        # are consumed no shard can have crossed — the healthy steady state
        # skips the O(n) scan entirely.
        self._consumed_at_scan = -1
        self._min_margin_at_scan = 0

    # ------------------------------------------------------------------
    # Occupancy views
    # ------------------------------------------------------------------
    def shard_of(self, source: int) -> int:
        return int(source) % self.num_shards

    def shard_unused(self) -> np.ndarray:
        """Unused-token count per shard, from the store's columnar counts."""
        sources, counts = self.pool.store.source_count_arrays()
        return np.bincount(
            sources % self.num_shards,
            weights=counts.astype(np.float64),
            minlength=self.num_shards,
        ).astype(np.int64)

    def depleted_shards(self) -> list[int]:
        """Shards currently below their low watermark."""
        unused = self.shard_unused()
        self._consumed_at_scan = self.pool.store.tokens_consumed
        self._min_margin_at_scan = min(
            int(unused[s.shard_id]) - s.low_watermark for s in self.shards
        )
        return [s.shard_id for s in self.shards if unused[s.shard_id] < s.low_watermark]

    def _possibly_depleted(self) -> bool:
        """Cheap necessary condition for any shard sitting below watermark.

        Occupancy falls only via consumption, so if fewer tokens were
        consumed since the last scan than the smallest shard headroom seen
        then, every shard is still at or above its watermark.
        """
        if self._consumed_at_scan < 0 or self._min_margin_at_scan < 0:
            return True
        return (
            self.pool.store.tokens_consumed - self._consumed_at_scan
            >= max(1, self._min_margin_at_scan)
        )

    def record_served(self, token_source: int) -> None:
        """Attribute one consumed token to its shard (stitching telemetry)."""
        self.shards[self.shard_of(token_source)].tokens_served += 1

    # ------------------------------------------------------------------
    # Background refill
    # ------------------------------------------------------------------
    def refill_plan(self, shard_ids: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Per-source deficits restoring the given shards to quota.

        Returns parallel ``(sources, counts)`` arrays (ascending source
        order — deterministic for fixed-seed replay); a source appears only
        if it currently holds fewer unused tokens than its Phase-1 base
        allocation.
        """
        if not shard_ids:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        n = self.graph.n
        current = np.zeros(n, dtype=np.int64)
        src, cnt = self.pool.store.source_count_arrays()
        current[src] = cnt
        member = np.isin(np.arange(n, dtype=np.int64) % self.num_shards, shard_ids)
        deficit = np.where(member, self._base_counts - current, 0)
        needy = np.nonzero(deficit > 0)[0]
        return needy, deficit[needy]

    def maintain(
        self,
        network: Network,
        rng: np.random.Generator,
        *,
        phase: str = MAINTAIN_PHASE,
    ) -> MaintenanceReport:
        """One background sweep: batch-refill every depleted shard to quota.

        A no-op (and zero rounds) when every shard sits at or above its
        watermark — the engine can call this after every request without
        paying anything in the healthy steady state (an O(1) consumed-token
        check skips even the occupancy scan until enough tokens have been
        consumed for some shard to possibly have crossed).
        """
        if not self._possibly_depleted():
            return MaintenanceReport(
                swept=False, shards_refilled=(), sources_refilled=0, tokens_added=0, rounds=0
            )
        depleted = self.depleted_shards()
        if not depleted:
            return MaintenanceReport(
                swept=False, shards_refilled=(), sources_refilled=0, tokens_added=0, rounds=0
            )
        sources, counts = self.refill_plan(depleted)
        if sources.size == 0:  # pragma: no cover - watermark < quota guarantees deficits
            return MaintenanceReport(
                swept=False, shards_refilled=(), sources_refilled=0, tokens_added=0, rounds=0
            )
        rounds = get_more_walks_batch(
            network,
            self.pool.store,
            sources,
            counts,
            self.pool.lam,
            rng,
            randomized_lengths=True,
            record_paths=self.pool.record_paths,
            phase=phase,
        )
        added_per_shard = np.bincount(
            sources % self.num_shards,
            weights=counts.astype(np.float64),
            minlength=self.num_shards,
        ).astype(np.int64)
        for s in depleted:
            self.shards[s].refills += 1
            self.shards[s].tokens_added += int(added_per_shard[s])
        self.maintenance_sweeps += 1
        return MaintenanceReport(
            swept=True,
            shards_refilled=tuple(depleted),
            sources_refilled=int(sources.size),
            tokens_added=int(counts.sum()),
            rounds=rounds,
        )
