"""``WalkEngine`` — the session object every query on one graph shares.

The paper's own follow-up (*Near-Optimal Random Walk Sampling in
Distributed Networks*, arXiv:1201.1363) observes that the short-walk pool
of Phase 1 is not a per-query scratch structure: prepared once, it can
answer a *stream* of walk requests, refilled incrementally when a
connector runs dry.  The free functions predating this module rebuilt the
``Network``, the RNG, the BFS-tree cache, and — most wastefully — a fresh
Θ(η·m)-token :class:`~repro.walks.store.WalkStore` on every call.  The
engine makes the amortized shape the default:

* **One session owns the state**: graph, :class:`~repro.congest.network.Network`
  (one ledger for every request), RNG, BFS-tree cache, parameter policy.
* **Persistent Phase-1 pool**: :meth:`prepare` (or the first pooled query)
  runs Phase 1 once; successive :meth:`walk`/:meth:`walks` queries stitch
  against the surviving tokens, invoking GET-MORE-WALKS (charged to the
  ``"pool-refill"`` phase) only when the connector they land on is dry.
  Each consumed token is an unused, independently generated short walk, so
  pooled endpoints keep the exact ``P^ℓ`` law of the one-shot algorithm.
* **Per-request accounting on the shared ledger**: every pooled result
  carries the rounds/phase deltas of *its* request
  (:meth:`~repro.congest.ledger.RoundLedger.delta_since`), while
  :meth:`stats` exposes the cumulative session ledger, pool occupancy, and
  preparation/refill counters.
* **One request/result model**: :class:`~repro.engine.model.WalkRequest`
  in, :class:`~repro.engine.model.ResultBase` subclasses out, with
  baseline selection (``algorithm="paper"|"naive"|"podc09"|"metropolis"``)
  behind the same façade.

The legacy free functions (``single_random_walk`` & co.) are thin wrappers
over a one-shot engine; their non-pooled execution path is byte-for-byte
the pre-engine code, so the golden-ledger suite pins it to the seed
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import (
    BATCH_SAMPLE,
    NAIVE,
    POOL_REFILL,
    REPORT,
    SERVE_RECOVERY,
    STITCH_ROUTE,
)
from repro.congest.primitives import (
    BfsTree,
    _tree_edge_arrays,
    build_bfs_tree,
    stage_tree_funnel,
)
from repro.engine.model import EngineStats, WalkRequest
from repro.engine.pool import MaintenanceReport, PoolManager
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.obs.probe import Probe
from repro.util.rng import make_rng
from repro.util.contracts import charged_fast_path
from repro.walks.get_more_walks import get_more_walks_batch
from repro.walks.many_walks import (
    ManyWalksResult,
    _parallel_naive,
    _parallel_tails,
    _run_many_walks,
)
from repro.walks.metropolis import _run_metropolis_walk
from repro.walks.naive import _run_naive_walk
from repro.walks.params import WalkParams, many_walks_params, single_walk_params
from repro.walks.podc09 import _run_podc09_walk
from repro.walks.regenerate import RegenerationResult, regenerate_walk, replay_segments
from repro.walks.short_walks import perform_short_walks, token_counts
from repro.walks.single_walk import (
    WalkResult,
    _run_single_walk,
    estimate_diameter,
    stitch_walk,
)
from repro.walks.store import WalkStore

__all__ = ["Phase1Pool", "PoolManager", "WalkEngine"]


@dataclass
class Phase1Pool:
    """The persistent short-walk pool one engine session serves from.

    ``store`` holds every unused token (columnar); ``lam``/``eta`` are the
    parameters Phase 1 ran with (all refills reuse them so the pool stays
    homogeneous — every token length uniform on ``[λ, 2λ−1]``);
    ``record_paths`` is fixed at preparation time for the same reason.
    ``diameter_estimate`` is the Θ(D) estimate captured during the warm-up
    BFS.
    """

    store: WalkStore
    lam: int
    eta: float
    record_paths: bool
    diameter_estimate: int
    refills: int = 0
    queries: int = 0

    @property
    def unused(self) -> int:
        """Current pool occupancy (tokens not yet consumed)."""
        return self.store.total_unused()


@dataclass
class _WalkSlot:
    """One in-flight walk inside an interleaved stitching sweep.

    The unit of work both the engine's batch path and the serving
    scheduler's merged cohorts advance: ``current``/``completed`` track the
    walk frontier, ``chunks`` accumulates trajectory fragments when
    ``record`` is set, and ``draws`` counts the pool tokens this walk
    consumed (how the caller knows whether the walk ever touched the pool).
    """

    source: int
    length: int
    record: bool
    current: int
    completed: int = 0
    chunks: list[np.ndarray] | None = None
    draws: int = 0

    @property
    def remaining(self) -> int:
        return self.length - self.completed


@dataclass
class _SingleServed:
    """Internal carrier for one pooled single-walk execution."""

    destination: int
    mode: str
    positions: np.ndarray | None = None
    segments: list = field(default_factory=list)
    connectors: list[int] = field(default_factory=list)
    gmw_calls: int = 0


class WalkEngine:
    """Session façade: one graph, one network, one RNG, one token pool.

    Parameters
    ----------
    graph:
        Topology every request runs on.
    seed:
        Root seed (or an existing generator) for all randomness in the
        session; a fixed seed replays the full query stream identically.
    capacity / max_words:
        CONGEST model knobs, forwarded to the owned :class:`Network`.
    lambda_constant / eta:
        Default parameter policy (λ's leading constant; Phase-1 walks per
        unit degree).
    record_paths:
        Default for pool preparation and one-shot single walks.
    network:
        Use an existing network (sharing its ledger) instead of creating
        one — the legacy wrappers pass their ``network=`` argument through
        here.
    num_shards / watermark_fraction:
        :class:`~repro.engine.pool.PoolManager` policy — how many
        per-source-bucket shards the pool is partitioned into (default
        ``min(64, ⌈√n⌉)``) and where each shard's refill watermark sits
        relative to its quota.
    auto_maintain:
        Run a background watermark sweep (:meth:`maintain`) after every
        pooled request.  Its rounds are charged to the session ledger under
        ``"pool-refill/maintain"`` but excluded from request deltas — it is
        between-request work.  Disable to drive :meth:`maintain` manually.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        seed=None,
        capacity: int = 1,
        max_words: int = 8,
        lambda_constant: float = 1.0,
        eta: float = 1.0,
        record_paths: bool = True,
        network: Network | None = None,
        num_shards: int | None = None,
        watermark_fraction: float = 0.5,
        auto_maintain: bool = True,
    ) -> None:
        self.graph = graph
        self.rng = make_rng(seed)
        self.network = (
            network
            if network is not None
            else Network(graph, capacity=capacity, max_words=max_words, seed=self.rng)
        )
        self.lambda_constant = lambda_constant
        self._default_eta = eta
        self._default_record_paths = record_paths
        self._num_shards = num_shards
        self._watermark_fraction = watermark_fraction
        self.auto_maintain = auto_maintain
        self._tree_cache: dict[int, BfsTree] = {}
        self._pool: Phase1Pool | None = None
        self._pool_manager: PoolManager | None = None
        self._queries = 0
        self._full_preparations = 0
        # Reactive GET-MORE-WALKS calls of *retired* pools: the live count
        # stays on ``pool.refills`` (single home), this bucket preserves
        # the session total across pool re-preparations.
        self._refills_retired = 0
        self._background_refill_tokens = 0
        self.obs = Probe()  # inert until attach_observability()
        self._scheduler = None  # attached repro.serve.WalkScheduler, if any
        self._churn = None  # lazily attached repro.dynamic.ChurnController
        self._faults = None  # attached repro.engine.faults.FaultController

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> Phase1Pool | None:
        """The current persistent pool (``None`` before any pooled work)."""
        return self._pool

    @property
    def pool_manager(self) -> PoolManager | None:
        """Shard/watermark manager of the current pool (``None`` when cold)."""
        return self._pool_manager

    def maintain(
        self,
        *,
        round_budget: int | None = None,
        exclude_shards=None,
    ) -> MaintenanceReport:
        """One background refill sweep: top up shards below watermark.

        Batches GET-MORE-WALKS for all depleted shards' sources into a
        single interleaved sweep charged to ``"pool-refill/maintain"`` —
        between-request work on the session ledger, never part of a request
        delta.  With ``auto_maintain`` (the default) the engine calls this
        after every pooled request; it is also the explicit idle-time hook.
        A cold engine (no pool) returns an empty report.

        ``round_budget`` switches to the deadline-driven policy the serving
        scheduler ticks with: depleted shards refill emptiest/most-demanded
        first, and shards whose estimated sweep cost exceeds the budget are
        deferred to a later call (see
        :meth:`~repro.engine.pool.PoolManager.maintain`).

        ``exclude_shards`` skips named shards this sweep without refilling
        them, reporting them deferred instead — how the serving scheduler
        backs off from shards whose refills stall on crashed nodes while
        the rest of the pool keeps its watermarks.
        """
        manager = self._pool_manager
        if manager is None:
            return MaintenanceReport(
                swept=False, shards_refilled=(), sources_refilled=0, tokens_added=0, rounds=0
            )
        report = manager.maintain(
            self.network, self.rng, round_budget=round_budget, exclude_shards=exclude_shards
        )
        self._background_refill_tokens += report.tokens_added
        if self.obs.metrics is not None and report.swept:
            self._emit_pool_metrics(report)
        return report

    def apply_churn(self, delta, *, round_budget: int | None = None):
        """Apply one batched topology event and cascade the invalidation.

        The dynamic-graph entry point (see :mod:`repro.dynamic`): ``delta``
        is a :class:`~repro.dynamic.delta.GraphDelta` of edge inserts and
        deletes.  The graph's CSR arrays rebuild in place, the network
        re-derives its adjacency tables, the BFS-tree cache drops, pooled
        tokens whose recorded law the churn broke are evicted by one
        vectorized path scan, shard quotas re-derive from the new degree
        profile, and the affected shards are topped back up by a charged
        regeneration sweep billed to ``"pool-refill/churn"`` — session
        work, excluded from request deltas, same contract as
        ``"pool-refill/maintain"``.  ``round_budget`` bounds that sweep
        (least-urgent shards defer; their deficit stays visible to
        admission pricing).  Returns a
        :class:`~repro.dynamic.controller.ChurnReport`.
        """
        from repro.dynamic.controller import ChurnController

        if self._churn is None:
            self._churn = ChurnController(self)
        return self._churn.apply(delta, round_budget=round_budget)

    @property
    def faults(self):
        """The attached :class:`~repro.engine.faults.FaultController`, if any."""
        return self._faults

    def attach_faults(self, schedule=None):
        """Attach a crash-fault schedule to this session (see :mod:`repro.engine.faults`).

        ``schedule`` is a :class:`~repro.congest.faults.FaultSchedule` (or
        ``None`` for an empty one driven purely through
        :meth:`apply_faults`).  Scheduled steps fire lazily: the engine's
        interleaved sweeps and the serving scheduler's ticks poll the
        controller as the session's round counter passes each step's
        ``at_round``.  Attaching replaces any previous controller.
        """
        from repro.engine.faults import FaultController

        self._faults = FaultController(self, schedule)
        return self._faults

    def apply_faults(self, schedule_step, *, round_budget: int | None = None):
        """Apply one :class:`~repro.congest.faults.FaultStep` immediately.

        The ad-hoc injection path (mirror of :meth:`apply_churn`): crashes
        delete the victims' incident edges, evict pooled tokens whose
        recorded law died *or* that were resident at a crashed node, and
        regenerate the affected shards; recoveries re-insert the saved
        edges with their saved weights and re-admit the nodes to quota.
        All recovery work bills to ``"serve/recovery"``.  Returns a
        :class:`~repro.engine.faults.FaultReport`.
        """
        from repro.engine.faults import FaultController

        if self._faults is None:
            self._faults = FaultController(self)
        return self._faults.apply_step(schedule_step, round_budget=round_budget)

    def attach_observability(self, *, tracer=None, metrics=None, heatmap=None, slo=None) -> Probe:
        """Install a passive observer (tracing/metrics/heatmap/SLO) on this session.

        Creates a fresh :class:`~repro.obs.probe.Probe` wired to the given
        sinks (a :class:`~repro.obs.trace.Tracer`, a
        :class:`~repro.obs.metrics.MetricsRegistry`, a
        :class:`~repro.obs.heatmap.HeatmapSink`, and/or a
        :class:`~repro.obs.slo.SloMonitor`), installs it as the session
        ledger's observer, and exposes it as ``engine.obs`` — the
        scheduler, fault, and churn layers all report context and events
        through it.  A heatmap sink is additionally bound to the network's
        charge path so deliver/charge call sites stage per-edge
        attribution for it (congestion cartography); churn and crash
        remaps are forwarded to it so accumulators survive slot renames.
        Passing no sinks installs an *inert* probe: every hook fires and
        early-returns, which is exactly the "disabled" configuration the
        ``obs_overhead`` bench prices.  Engines that never call this keep
        ``ledger.observer = None``, so the hot charge path pays one
        ``is not None`` test and nothing else.

        The observer is strictly passive — simulated rounds, sampled
        walks, and RNG streams are bit-identical with and without it
        (proved by ``tests/test_obs.py`` and ``tests/test_obs_heatmap.py``).
        Returns the installed probe.
        """
        probe = Probe(tracer=tracer, metrics=metrics, heatmap=heatmap, slo=slo)
        self.obs = probe
        self.network.ledger.observer = probe
        self.network.heatmap = heatmap
        if heatmap is not None:
            graph = self.graph
            heatmap.bind_topology(graph.n, graph.csr_source, graph.csr_target)
        probe.attached(self.network.ledger)
        return probe

    def _emit_pool_metrics(self, report: MaintenanceReport | None = None) -> None:
        """Refresh pool occupancy gauges on the metrics registry (no-op when off)."""
        metrics = self.obs.metrics
        manager = self._pool_manager
        pool = self._pool
        if metrics is None or manager is None or pool is None:
            return
        if report is not None:
            metrics.counter(
                "repro_maintenance_sweeps_total", "Background watermark sweeps run."
            ).inc(1)
            metrics.counter(
                "repro_tokens_added_total", "Pool tokens created by refills, by kind."
            ).inc(report.tokens_added, kind="maintain")
        store = pool.store
        metrics.gauge("repro_pool_tokens_unused", "Unused tokens in the live pool.").set(
            pool.unused
        )
        metrics.gauge(
            "repro_pool_tokens_created", "Tokens created into the live pool (cumulative)."
        ).set(store.tokens_created)
        metrics.gauge(
            "repro_pool_tokens_consumed", "Tokens consumed from the live pool (cumulative)."
        ).set(store.tokens_consumed)
        shard_unused = manager.shard_unused()
        if shard_unused is not None:
            below = sum(
                1
                for shard in manager.shards
                if shard_unused[shard.shard_id] < shard.low_watermark
            )
            metrics.gauge(
                "repro_shards_below_watermark", "Shards currently under their watermark."
            ).set(below)
            metrics.gauge(
                "repro_shard_unused_min", "Occupancy of the emptiest shard."
            ).set(int(shard_unused.min()))
            metrics.gauge(
                "repro_shard_unused_max", "Occupancy of the fullest shard."
            ).set(int(shard_unused.max()))
        metrics.gauge(
            "repro_pool_outstanding_deficit",
            "Tokens still owed to deferred/below-watermark shards.",
        ).set(manager.outstanding_deficit())

    def scheduler(self, *, tenants=None, **policy):
        """Attach a :class:`~repro.serve.WalkScheduler` to this session.

        The scheduler is the round-driven serving layer (PR 4): submitted
        requests pass per-shard admission control, wait in a
        priority/deadline queue, and are serviced in merged interleaved
        sweeps — many concurrent requests sharing each BFS flood and
        SAMPLE-DESTINATION pipeline.  Keyword arguments are
        :class:`~repro.serve.ServePolicy` fields (``max_batch_requests``,
        ``max_batch_walks``, ``maintain_round_budget``, ...); ``tenants``
        takes a :class:`~repro.serve.TenantRegistry` for multi-tenant
        serving (weighted fair admission + per-tenant round quotas — PR 7;
        ``None`` serves one anonymous default tenant).  The engine keeps a
        reference so :meth:`stats` can surface the scheduler's telemetry;
        attaching a new scheduler replaces it.
        """
        from repro.serve import WalkScheduler

        return WalkScheduler(self, tenants=tenants, **policy)

    def prepare(
        self,
        lam: int | None = None,
        eta: float | None = None,
        *,
        length_hint: int | None = None,
        source_hint: int | None = None,
        record_paths: bool | None = None,
    ) -> Phase1Pool:
        """Explicit warm-up: run Phase 1 once and install the pool.

        ``lam`` may be given directly, or derived from ``length_hint`` via
        the paper's ``λ = Θ(√(ℓD))`` policy using a fresh distributed
        diameter estimate (one BFS from ``source_hint``, default node 0 —
        charged to ``"setup"`` like every legacy call's estimate).
        Calling :meth:`prepare` again replaces the pool (a new full
        preparation, visible in :meth:`stats`).
        """
        rp = self._default_record_paths if record_paths is None else record_paths
        eta_val = self._default_eta if eta is None else float(eta)
        root = 0 if source_hint is None else source_hint
        if not 0 <= root < self.graph.n:
            raise WalkError(f"source_hint {root} out of range")
        d_est, _tree = estimate_diameter(
            self.network, root, self._tree_cache, allow_unreached=self._faults is not None
        )
        if lam is None:
            if length_hint is None:
                raise WalkError("prepare() needs lam= or length_hint=")
            lam = single_walk_params(
                length_hint, d_est, constant=self.lambda_constant, eta=eta_val, n=self.graph.n
            ).lam
        return self._install_pool(int(lam), eta_val, rp, d_est)

    def _install_pool(
        self, lam: int, eta: float, record_paths: bool, d_est: int
    ) -> Phase1Pool:
        """Run Phase 1 and make its token pool the session's live pool."""
        if lam < 1:
            raise WalkError(f"lambda must be >= 1, got {lam}")
        if self._pool is not None:
            self._refills_retired += self._pool.refills
        store = WalkStore()
        counts = token_counts(self.graph.degrees, eta, degree_proportional=True)
        perform_short_walks(
            self.network,
            store,
            lam,
            self.rng,
            counts=counts,
            randomized_lengths=True,
            record_paths=record_paths,
        )
        self._pool = Phase1Pool(
            store=store, lam=lam, eta=eta, record_paths=record_paths, diameter_estimate=d_est
        )
        self._pool_manager = PoolManager(
            self._pool,
            self.graph,
            num_shards=self._num_shards,
            watermark_fraction=self._watermark_fraction,
        )
        self._full_preparations += 1
        return self._pool

    def _pool_for_request(
        self,
        length: int,
        lam: int | None,
        eta: float | None,
        record_paths: bool | None,
        d_est: int,
        k: int = 1,
    ) -> tuple[Phase1Pool | None, int]:
        """Resolve the pool a query serves from; returns ``(pool, λ)``.

        Returns the live pool when it is compatible; re-prepares when the
        request pins ``lam``/``eta`` different from the live pool's (pools
        are parameter-homogeneous so token lengths stay uniform on one
        ``[λ, 2λ−1]`` window).  Returns ``(None, λ)`` when the derived
        ``λ ≥ ℓ`` — the query will run naively without touching the pool,
        so a cold engine must *not* pay Θ(η·m) Phase-1 preparation for it
        (the ``use_naive`` policy the one-shot path honors).

        ``k`` is the batch width of the triggering request.  A *cold* pool
        auto-prepared by a ``k > 1`` batch picks λ from the k-enlarged
        ``Θ(√(kℓD) + k)`` policy of Theorem 2.8 (longer segments: a batch
        sweeping k walks concurrently amortizes Phase 1 but pays one
        SAMPLE-DESTINATION generation per ``λ`` steps of each walk, so λ
        should grow with k — the arXiv:1201.1363 regime).  A live
        compatible pool always wins over re-tuning: pooled serving
        amortizes Phase 1 across the query stream, and mid-stream
        re-preparation would throw away every surviving token.

        An auto-prepared pool records paths when the engine default *or*
        the triggering request wants them: pool policy is a session
        property, so one endpoint-only query must not lock a path-capable
        session out of serving later trajectory queries.
        """
        eta_val = self._default_eta if eta is None else float(eta)
        rp = self._default_record_paths or record_paths is True
        pool = self._pool
        if (
            pool is not None
            and (lam is None or int(lam) == pool.lam)
            and (eta is None or float(eta) == pool.eta)
        ):
            return pool, pool.lam
        if lam is None:
            if k > 1:
                candidate = many_walks_params(
                    k, length, d_est, constant=self.lambda_constant, eta=eta_val, n=self.graph.n
                )
            else:
                candidate = single_walk_params(
                    length, d_est, constant=self.lambda_constant, eta=eta_val, n=self.graph.n
                )
            if candidate.use_naive or candidate.lam >= length:
                return None, candidate.lam
            lam = candidate.lam
        return self._install_pool(int(lam), eta_val, rp, d_est), int(lam)

    # ------------------------------------------------------------------
    # Public query surface
    # ------------------------------------------------------------------
    def walk(
        self,
        source: int,
        length: int,
        *,
        algorithm: str = "paper",
        pooled: bool = True,
        record_paths: bool | None = None,
        report_to_source: bool = True,
        lam: int | None = None,
        eta: float | None = None,
        params: WalkParams | None = None,
        target: np.ndarray | None = None,
    ) -> WalkResult:
        """Sample one ℓ-step walk from ``source``; see :meth:`run`."""
        request = WalkRequest(
            sources=(source,),
            length=length,
            algorithm=algorithm,
            many=False,
            pooled=pooled,
            record_paths=record_paths,
            report_to_source=report_to_source,
            lam=lam,
            eta=eta,
        )
        return self.run(request, params=params, target=target)

    def walks(
        self,
        sources,
        length: int,
        *,
        algorithm: str = "paper",
        pooled: bool = True,
        record_paths: bool | None = None,
        report_to_source: bool = True,
        lam: int | None = None,
        eta: float | None = None,
        batch: bool | None = None,
        params: WalkParams | None = None,
    ) -> ManyWalksResult:
        """Sample ``k = len(sources)`` independent ℓ-step walks; see :meth:`run`.

        ``batch`` picks the pooled stitching regime: ``None``/``True`` —
        interleaved batch sweeps (mode ``"batch-stitched"``); ``False`` —
        the serial per-source loop (mode ``"stitched"``).
        """
        request = WalkRequest(
            sources=tuple(sources) if sources else (),
            length=length,
            algorithm=algorithm,
            many=True,
            pooled=pooled,
            record_paths=record_paths,
            report_to_source=report_to_source,
            lam=lam,
            eta=eta,
            batch=batch,
        )
        return self.run(request, params=params)

    def run(
        self,
        request: WalkRequest,
        *,
        params: WalkParams | None = None,
        target: np.ndarray | None = None,
    ):
        """Serve one :class:`~repro.engine.model.WalkRequest` — the dispatch point.

        ``algorithm="paper"`` with ``pooled=True`` (the default) serves from
        the persistent pool, auto-preparing on first use.  ``pooled=False``
        reproduces the legacy one-shot execution bit-for-bit (the
        golden-ledger contract).  The baselines (``naive``, ``podc09``,
        ``metropolis``) always run one-shot on the shared network.
        ``params`` is the legacy full-override escape hatch and applies to
        one-shot execution of the parameterized algorithms ("paper",
        "podc09") only; ``target`` is the Metropolis–Hastings stationary
        distribution.  The MH baseline models no report step, so
        ``report_to_source`` is ignored for it (its round count is the
        number of accepted moves plus one setup round).
        """
        if params is not None:
            if request.pooled and request.algorithm == "paper":
                raise WalkError(
                    "params= overrides apply to one-shot execution; "
                    "pass pooled=False (or use lam=/eta= with the pooled engine)"
                )
            if request.algorithm in ("naive", "metropolis"):
                raise WalkError(
                    f"algorithm {request.algorithm!r} takes no params= override"
                )
        self._queries += 1
        with self.obs.annotate(
            scope="request", algorithm=request.algorithm, k=len(request.sources)
        ):
            return self._dispatch(request, params=params, target=target)

    def _dispatch(
        self,
        request: WalkRequest,
        *,
        params: WalkParams | None = None,
        target: np.ndarray | None = None,
    ):
        algo = request.algorithm
        if algo == "paper":
            if request.many:
                if request.pooled:
                    return self._serve_pooled_many(request)
                return _run_many_walks(
                    self.graph,
                    list(request.sources),
                    request.length,
                    self.rng,
                    self.network,
                    params=params,
                    lam=request.lam,
                    eta=self._default_eta if request.eta is None else request.eta,
                    lambda_constant=self.lambda_constant,
                    record_paths=False if request.record_paths is None else request.record_paths,
                    report_to_source=request.report_to_source,
                )
            if request.pooled:
                return self._serve_pooled_single(request)
            return _run_single_walk(
                self.graph,
                request.source,
                request.length,
                self.rng,
                self.network,
                params=params,
                lam=request.lam,
                eta=self._default_eta if request.eta is None else request.eta,
                lambda_constant=self.lambda_constant,
                record_paths=True if request.record_paths is None else request.record_paths,
                report_to_source=request.report_to_source,
            )
        if request.many:
            raise WalkError(
                f"algorithm {algo!r} serves single-walk requests only; "
                "use algorithm='paper' for batches"
            )
        if algo == "naive":
            return _run_naive_walk(
                self.graph,
                request.source,
                request.length,
                self.rng,
                self.network,
                record_paths=True if request.record_paths is None else request.record_paths,
                report_to_source=request.report_to_source,
            )
        if algo == "podc09":
            return _run_podc09_walk(
                self.graph,
                request.source,
                request.length,
                self.rng,
                self.network,
                params=params,
                lam=request.lam,
                eta=request.eta,  # None means Θ((ℓ/D)^{1/3}), the baseline's own policy
                lambda_constant=self.lambda_constant,
                record_paths=True if request.record_paths is None else request.record_paths,
                report_to_source=request.report_to_source,
            )
        # WalkRequest.__post_init__ guarantees this is "metropolis".
        result = _run_metropolis_walk(
            self.graph, request.source, request.length, self.rng, self.network, target=target
        )
        if request.record_paths is False:
            result.positions = None
        return result

    # ------------------------------------------------------------------
    # Pooled serving
    # ------------------------------------------------------------------
    def _validate_query(self, source: int, length: int) -> None:
        if not 0 <= source < self.graph.n:
            raise WalkError(f"source {source} out of range")
        if length < 1:
            raise WalkError(f"walk length must be >= 1, got {length}")

    def _resolve_record_paths(self, pool: Phase1Pool, requested: bool | None, default: bool) -> bool:
        rp = default if requested is None else requested
        if rp and not pool.record_paths:
            raise WalkError(
                "pool was prepared with record_paths=False; "
                "call prepare(record_paths=True) to serve trajectory queries"
            )
        return rp

    def _stitch_pooled(
        self,
        pool: Phase1Pool,
        source: int,
        length: int,
        *,
        record_paths: bool,
        defer_tail: bool,
    ) -> tuple:
        """One pooled stitching sweep; refills charge to ``"pool-refill"``.

        Trajectory assembly follows the *request* (``record_paths``) while
        refill tokens follow the *pool's* policy, keeping the pool
        homogeneous: an endpoint-only query on a path-recording pool
        neither builds trajectories it will drop nor injects pathless
        tokens a later trajectory query would choke on.
        """
        out = stitch_walk(
            self.network,
            pool.store,
            source,
            length,
            pool.lam,
            self.rng,
            loop_margin=2 * pool.lam,
            gmw_count=max(1, length // pool.lam),
            randomized_lengths=True,
            record_paths=record_paths,
            tree_cache=self._tree_cache,
            defer_tail=defer_tail,
            gmw_phase=POOL_REFILL,
            refill_record_paths=pool.record_paths,
            allow_unreached=self._faults is not None,
        )
        gmw_calls = out[4]
        pool.refills += gmw_calls
        if self._pool_manager is not None:
            for record in out[2]:
                self._pool_manager.record_served(record.source)
        return out

    def _serve_pooled_single(self, request: WalkRequest) -> WalkResult:
        source, length = request.source, request.length
        self._validate_query(source, length)
        net = self.network
        snapshot = net.ledger.capture()
        # One setup BFS per query: it doubles as the diameter estimate for
        # (auto-)preparation and as the report-routing tree.
        d_est, source_tree = estimate_diameter(
            net, source, self._tree_cache, allow_unreached=self._faults is not None
        )
        old_pool = self._pool
        pool, lam_val = self._pool_for_request(
            length, request.lam, request.eta, request.record_paths, d_est
        )
        tokens_before = (
            pool.store.tokens_created if (pool is not None and pool is old_pool) else 0
        )

        if pool is None or pool.lam >= length:
            # The walk is shorter than one short-walk segment: serve it
            # naively (ℓ rounds), leaving the pool — if any — untouched.
            if request.record_paths is not None:
                rp = request.record_paths
            else:
                rp = pool.record_paths if pool is not None else self._default_record_paths
            positions_list = self.graph.walk(source, length, self.rng)
            with net.phase(NAIVE):
                net.deliver_sequential(
                    length, path=positions_list if net.heatmap is not None else None
                )
            served = _SingleServed(
                destination=positions_list[-1],
                mode="naive",
                positions=np.asarray(positions_list, dtype=np.int64) if rp else None,
            )
        else:
            rp = self._resolve_record_paths(pool, request.record_paths, pool.record_paths)
            destination, positions, segments, connectors, gmw_calls, _remaining = (
                self._stitch_pooled(pool, source, length, record_paths=rp, defer_tail=False)
            )
            served = _SingleServed(
                destination=destination,
                mode="stitched",
                positions=positions,
                segments=segments,
                connectors=connectors,
                gmw_calls=gmw_calls,
            )

        if request.report_to_source:
            with net.phase(REPORT):
                net.deliver_sequential(
                    source_tree.depth[served.destination],
                    path=(
                        source_tree.path_to_root(served.destination)
                        if net.heatmap is not None
                        else None
                    ),
                )

        if pool is not None and served.mode == "stitched":
            # Only queries actually served from tokens count against the
            # pool; a lam >= length query routed to the naive branch above
            # never touched it.
            pool.queries += 1
        delta = net.ledger.delta_since(snapshot)
        result = WalkResult(
            source=source,
            length=length,
            destination=served.destination,
            positions=served.positions,
            segments=served.segments,
            connectors=served.connectors,
            tokens_prepared=(pool.store.tokens_created - tokens_before) if pool is not None else 0,
            mode=served.mode,
            rounds=delta.rounds,
            lam=lam_val,
            phase_rounds=dict(delta.phase_rounds),
            get_more_walks_calls=served.gmw_calls,
        )
        if self.auto_maintain:
            # Background watermark sweep *after* the request delta closed:
            # its rounds land on the session ledger, not on this result.
            self.maintain()
        return result

    @charged_fast_path(
        equivalence_test="tests/test_tenants.py::test_pipelined_report_bills_shared_phase_only"
    )
    def _report_convergecast(self, tree, ks, *, phase: str = REPORT) -> None:
        """Charge the destinations→sources report convergecast on ``tree``.

        Destinations route their IDs to sources over the BFS tree; up to k
        messages may funnel through one tree edge, pipelined.  For a single
        request (``len(ks) == 1``) this is the PR-3 formula — ``height + k``
        rounds, identical on every engine branch and pinned by the golden
        serve ledgers.  For a multi-request cohort (PR 7,
        ``ServePolicy.pipelined_report``) all Σk reports share ONE
        convergecast wave: the pipeline drains in ``height + Σk − 1``
        rounds — each of the per-request ``height`` start-up latencies
        after the first is hidden behind the stream of earlier items, which
        is exactly the cross-request saving arXiv:1201.1363's serving
        regime pipelines for.  Messages (2 per walk: request + report) and
        per-edge congestion (Σk through the root edge) are unchanged by
        pipelining — only rounds collapse.
        """
        k_total = int(sum(ks))
        if k_total == 0:
            return
        rounds = tree.height + k_total - (0 if len(ks) == 1 else 1)
        net = self.network
        with net.phase(phase):
            stage_tree_funnel(net, tree, messages=2 * k_total, congestion=k_total)
            net.ledger.charge(rounds, messages=2 * k_total, congestion=k_total)

    def _serve_pooled_many(self, request: WalkRequest) -> ManyWalksResult:
        sources, length = list(request.sources), request.length
        for s in sources:
            self._validate_query(s, length)
        net = self.network
        snapshot = net.ledger.capture()
        k = len(sources)
        d_est, base_tree = estimate_diameter(
            net, sources[0], self._tree_cache, allow_unreached=self._faults is not None
        )
        pool, lam_val = self._pool_for_request(
            length, request.lam, request.eta, request.record_paths, d_est, k=k
        )
        # Batch queries default to endpoint-only (the legacy many-walks
        # contract); trajectories must be requested explicitly.
        rp = False if request.record_paths is None else request.record_paths

        if pool is None or pool.lam >= length:
            destinations, trajectories = _parallel_naive(
                net, sources, length, self.rng, record_paths=rp
            )
            total_gmw = 0
            mode = "naive-parallel"
            served_from_pool = False
        else:
            rp = self._resolve_record_paths(pool, request.record_paths, default=False)
            use_batch = True if request.batch is None else request.batch
            if use_batch:
                destinations, trajectories, total_gmw = self._serve_batch_stitched(
                    pool, sources, length, record_paths=rp, base_tree=base_tree
                )
                mode = "batch-stitched"
            else:
                pre_tails: list[tuple[int, int]] = []
                stitched_chunks: list[np.ndarray | None] = []
                total_gmw = 0
                for source in sources:
                    current, positions, _segments, _connectors, gmw_calls, remaining = (
                        self._stitch_pooled(pool, source, length, record_paths=rp, defer_tail=True)
                    )
                    total_gmw += gmw_calls
                    pre_tails.append((current, remaining))
                    stitched_chunks.append(positions)
                destinations, tail_paths = _parallel_tails(
                    net, pre_tails, self.rng, record_paths=rp
                )
                trajectories = None
                if rp:
                    trajectories = []
                    for stitched, tail in zip(stitched_chunks, tail_paths):
                        assert stitched is not None and tail is not None
                        trajectories.append(np.concatenate([stitched, tail]))
                        if len(trajectories[-1]) != length + 1:
                            raise WalkError("stitched + tail trajectory has wrong length")
                mode = "stitched"
            served_from_pool = True

        if request.report_to_source:
            self._report_convergecast(base_tree, [k])

        if pool is not None and served_from_pool:
            pool.queries += 1
        delta = net.ledger.delta_since(snapshot)
        result = ManyWalksResult(
            sources=sources,
            length=length,
            destinations=destinations,
            positions=trajectories if rp else None,
            mode=mode,
            rounds=delta.rounds,
            lam=lam_val,
            phase_rounds=dict(delta.phase_rounds),
            get_more_walks_calls=total_gmw,
        )
        if self.auto_maintain:
            self.maintain()
        return result

    def _serve_batch_stitched(
        self,
        pool: Phase1Pool,
        sources: list[int],
        length: int,
        *,
        record_paths: bool,
        base_tree: BfsTree,
    ) -> tuple[list[int], list[np.ndarray] | None, int]:
        """Advance all k walks in interleaved sweeps over one shared tree.

        The serial loop (§2.3: "stitch ... for s₁ then s₂, s₃, and so on")
        pays a full SAMPLE-DESTINATION round trip *per segment per walk*.
        The batch regime of arXiv:1201.1363 interleaves instead — per
        sweep, every active walk advances one segment, and all sampling
        traffic shares **one** BFS tree (rooted at ``sources[0]``, the tree
        the setup BFS already built) with classic CONGEST pipelining:

        * one tree (re-)flood per sweep (not per walk);
        * the ``S`` sample draws of a sweep are ``S`` convergecast streams
          pipelined on the shared tree — ``height + S − 1`` rounds, ditto
          their delete broadcasts (one SAMPLE-DESTINATION round trip serves
          every walk parked at a connector, the congestion argument);
        * the ``S`` stitched tokens route connector → root → destination
          concurrently, ``max hops + S − 1`` rounds.

        Each draw is uniform over the connector's unused tokens, taken
        *without replacement* within a sweep
        (:meth:`~repro.walks.store.WalkStore.sample_uniform_token` — the
        convergecast-merge law of Lemma A.2 computed centrally), so every
        walk still consumes fresh independent short walks and the
        concatenated law stays exactly ``P^ℓ``.  Connectors short of
        tokens are refilled *batched* — one multi-source GET-MORE-WALKS
        sweep per stitching sweep, charged to ``"pool-refill"``.

        Returns ``(destinations, trajectories, gmw_calls)`` where
        ``gmw_calls`` counts per-connector refill invocations (batched into
        sweeps on the wire).
        """
        net = self.network
        # Under a fault controller, a path-recording pool tracks every
        # slot's trajectory even for endpoint-only requests: crash recovery
        # truncates in-flight walks to their longest still-valid prefix,
        # which needs the prefix.  ``record`` still governs output assembly.
        track = record_paths or (self._faults is not None and pool.record_paths)
        slots = [
            _WalkSlot(
                source=int(s),
                length=length,
                record=record_paths,
                current=int(s),
                chunks=[np.array([s], dtype=np.int64)] if track else None,
            )
            for s in sources
        ]
        total_gmw = self._advance_interleaved(pool, slots, base_tree=base_tree)

        # All tails run concurrently, exactly as the serial path does.
        pre_tails = [(slot.current, slot.remaining) for slot in slots]
        destinations, tail_paths = _parallel_tails(net, pre_tails, self.rng, record_paths=record_paths)
        trajectories: list[np.ndarray] | None = None
        if record_paths:
            trajectories = []
            for slot, tail in zip(slots, tail_paths):
                assert tail is not None and slot.chunks is not None
                trajectories.append(np.concatenate(slot.chunks + [tail]))
                if len(trajectories[-1]) != length + 1:
                    raise WalkError("batch-stitched trajectory has wrong length")
        return destinations, trajectories, total_gmw

    def _advance_interleaved(
        self,
        pool: Phase1Pool,
        slots: list[_WalkSlot],
        *,
        base_tree: BfsTree,
        sample_phase: str = BATCH_SAMPLE,
        route_phase: str = STITCH_ROUTE,
        refill_phase: str = POOL_REFILL,
    ) -> int:
        """Advance every slot to its pre-tail frontier in interleaved sweeps.

        The sweep engine shared by :meth:`_serve_batch_stitched` (one k-walk
        request, default phase names — behavior and charges identical to the
        PR-3 loop) and the :mod:`repro.serve` scheduler (many concurrent
        requests merged into one slot list, billed to ``"serve/..."``
        phases).  Per sweep every active slot advances one token; slots
        parked at the same connector share one SAMPLE-DESTINATION round trip
        on ``base_tree`` with classic CONGEST pipelining, dry connectors are
        refilled in one batched GET-MORE-WALKS charged to ``refill_phase``,
        and every draw is uniform over the connector's unused tokens without
        replacement (Lemma A.2), so each walk still consumes fresh
        independent short walks.  Slots may carry *different* lengths — a
        slot leaves the active set once it is within the loop margin of its
        own target.  Mutates ``slots`` in place; returns the number of
        per-connector refill invocations.

        With a fault controller attached, every sweep starts by polling the
        schedule: fired steps run the crash/recovery cascade, the shared
        tree rebuilds (re-rooted to a live node when the root crashed), and
        in-flight slots truncate to their longest still-valid prefix —
        surviving prefixes are *replayed*, never resampled.  Slots parked
        on a crashed connector stall rather than drop: they wait out the
        scheduled recovery (idle rounds billed to ``"serve/recovery"``,
        exponentially backed off), and a stalled walk whose source is
        crashed-for-good raises :class:`~repro.errors.WalkError` instead of
        spinning.  Without a controller the loop below is charge-identical
        to the PR-3 code (the golden-ledger contract).
        """
        net = self.network
        store = pool.store
        lam = pool.lam
        loop_margin = 2 * lam
        k = len(slots)
        manager = self._pool_manager
        total_gmw = 0
        root = base_tree.root
        depth = base_tree.depth
        height = base_tree.height

        while True:
            faults = self._faults
            if faults is not None:
                fired, mutated = faults.poll()
                if fired:
                    with net.phase(SERVE_RECOVERY):
                        # Topology changed: the shared tree is stale, and a
                        # crashed root cannot anchor sampling — re-root.
                        if not faults.live[root]:
                            root = int(np.flatnonzero(faults.live)[0])
                        base_tree = build_bfs_tree(
                            net, root, cache=self._tree_cache, allow_unreached=True
                        )
                        depth = base_tree.depth
                        height = base_tree.height
                        self._recover_slots(slots, mutated, faults, base_tree)

            active = [
                i for i in range(k) if slots[i].completed <= slots[i].length - loop_margin
            ]
            if faults is not None:
                live = faults.live
                # A slot on a crashed node cannot advance — and cannot run
                # its tail either, so even within-margin slots block exit.
                blocked = [i for i in range(k) if not live[slots[i].current]]
                active = [i for i in active if live[slots[i].current]]
                if blocked and not active:
                    # Nothing serviceable: every remaining walk sits on a
                    # crashed node.  Wait out the scheduled recovery, or
                    # fail loudly on a permanent crash-stop.
                    for i in blocked:
                        if not faults.recovery_pending(slots[i].source):
                            raise WalkError(
                                f"walk source {slots[i].source} is crashed with no "
                                "scheduled recovery; cannot serve"
                            )
                    faults.wait_for_next_step()
                    continue
            if not active:
                break

            # Walks parked at the same connector form one group; group and
            # in-group order follow walk index, so fixed seeds replay.
            groups: dict[int, list[int]] = {}
            for i in active:
                groups.setdefault(slots[i].current, []).append(i)

            # Refill every connector short of tokens in ONE batched
            # GET-MORE-WALKS sweep (reactive: part of this request's bill).
            deficits = [
                (
                    c,
                    max(
                        max(max(1, slots[i].length // lam) for i in walks),
                        len(walks) - store.count_for_source(c),
                    ),
                )
                for c, walks in groups.items()
                if store.count_for_source(c) < len(walks)
            ]
            if deficits:
                refill_sources = np.array([c for c, _ in deficits], dtype=np.int64)
                refill_counts = np.array([cnt for _, cnt in deficits], dtype=np.int64)
                get_more_walks_batch(
                    net,
                    store,
                    refill_sources,
                    refill_counts,
                    lam,
                    self.rng,
                    randomized_lengths=True,
                    record_paths=pool.record_paths,
                    phase=refill_phase,
                )
                total_gmw += len(deficits)
                pool.refills += len(deficits)

            # One shared-tree flood per sweep (the protocol's Sweep 1,
            # amortized over every group instead of run per draw).
            n_draws = len(active)
            with net.phase(sample_phase):
                build_bfs_tree(
                    net,
                    root,
                    cache=self._tree_cache,
                    allow_unreached=self._faults is not None,
                )
                # Convergecast messages: per draw, the ancestor closure of
                # the connector's holder set (what charged_convergecast
                # bills), streamed as pipelined stages on the shared tree.
                cc_messages = 0
                cc_nodes: list[int] | None = [] if net.heatmap is not None else None
                cc_counts: list[int] = []
                for c, walks in groups.items():
                    closure: set[int] = set()
                    for holder in store.holders_for_source(c):
                        for hop in base_tree.path_to_root(holder):
                            if hop in closure:
                                break
                            closure.add(hop)
                    closure.discard(root)
                    cc_messages += len(closure) * len(walks)
                    if cc_nodes is not None and closure:
                        cc_nodes.extend(sorted(closure))
                        cc_counts.extend([len(walks)] * len(closure))
                if cc_nodes:
                    nodes = np.array(cc_nodes, dtype=np.int64)
                    parents = np.asarray(base_tree.parent, dtype=np.int64)[nodes]
                    net._stage_pairs(
                        nodes,
                        parents,
                        np.array(cc_counts, dtype=np.int64),
                        np.ones(nodes.size, dtype=np.int64),
                    )
                net.ledger.charge(height + n_draws - 1, messages=cc_messages, congestion=1)
                # Delete directives: one broadcast per draw, pipelined.
                if net.heatmap is not None and base_tree.n > 1:
                    t_nodes, t_parents = _tree_edge_arrays(base_tree)
                    net._stage_pairs(
                        t_parents,
                        t_nodes,
                        np.full(t_nodes.size, n_draws, dtype=np.int64),
                        np.ones(t_nodes.size, dtype=np.int64),
                    )
                net.ledger.charge(
                    height + n_draws - 1, messages=n_draws * (base_tree.n - 1), congestion=1
                )

            # Draw without replacement and advance every active walk.
            hops: list[int] = []
            route_pairs: list[tuple[int, int]] | None = (
                [] if net.heatmap is not None else None
            )
            for c, walks in groups.items():
                for i in walks:
                    record = store.sample_uniform_token(c, self.rng)
                    if record is None:
                        raise WalkError("batched GET-MORE-WALKS produced no walks (engine bug)")
                    if manager is not None:
                        manager.record_served(record.source)
                    slot = slots[i]
                    slot.draws += 1
                    if slot.chunks is not None:
                        if record.path is None:
                            raise WalkError("record_paths=True requires Phase 1 to record paths")
                        slot.chunks.append(record.path[1:])
                    slot.completed += record.length
                    slot.current = record.destination
                    hops.append(depth[c] + depth[record.destination])
                    if route_pairs is not None:
                        up = base_tree.path_to_root(c)
                        route_pairs.extend(zip(up[:-1], up[1:]))
                        down = base_tree.path_to_root(record.destination)
                        route_pairs.extend(zip(down[1:], down[:-1]))

            # Route all stitched tokens concurrently: connector → root →
            # destination along shared-tree edges, pipelined.
            with net.phase(route_phase):
                if route_pairs:
                    arr = np.array(route_pairs, dtype=np.int64)
                    keys = arr[:, 0] * self.graph.n + arr[:, 1]
                    pair_keys, pair_counts = np.unique(keys, return_counts=True)
                    net._stage_pairs(
                        pair_keys // self.graph.n,
                        pair_keys % self.graph.n,
                        pair_counts,
                        np.ones(pair_keys.size, dtype=np.int64),
                    )
                net.ledger.charge(
                    max(hops) + n_draws - 1, messages=sum(hops), congestion=1
                )
        return total_gmw

    def _recover_slots(
        self,
        slots: list[_WalkSlot],
        mutated: np.ndarray | None,
        faults,
        tree: BfsTree,
    ) -> None:
        """Truncate in-flight slots broken by just-fired fault steps.

        A recorded slot keeps its longest prefix whose every step was
        sampled from a never-mutated node, then falls back to the last
        *live* node of that prefix (belt-and-braces for empty-delta
        crashes).  Whether the prefix is worth keeping is a *cost* call:
        re-announcing a ``p``-step prefix with
        :func:`~repro.walks.regenerate.replay_segments` costs ``p`` rounds
        of edge-local forwarding (already-sampled steps are replayed,
        never resampled — the sampling-once discipline), while restarting
        from source re-stitches those steps through the pool inside the
        cohort's merged sweeps at a marginal cost of roughly two rounds
        per segment.  Short prefixes (up to ``2 × tree_height``, the
        coordination overhead a restart pays anyway) are replayed;
        longer ones restart from source — an independent fresh sample of
        ``P^ℓ``, so exactness is indifferent to the choice.  A slot with
        no surviving live prefix node parks at its source with zero
        progress (its source crashed; it waits for the scheduled recovery
        or fails in the sweep loop).  Pathless slots cannot truncate
        selectively, so any progressed slot restarts from source.  All
        charges bill to the caller's open ``"serve/recovery"`` phase: one
        ``height + r`` pipelined notification charge for the ``r``
        touched slots, plus the prefix replays.
        """
        net = self.network
        live = faults.live
        tree_height = tree.height
        replay_cap = max(2, 2 * tree_height)
        if mutated is None:
            mutated = np.zeros(self.graph.n, dtype=bool)
        touched = 0
        prefixes: list[np.ndarray] = []
        for slot in slots:
            if slot.chunks is not None:
                t = np.concatenate(slot.chunks) if len(slot.chunks) > 1 else slot.chunks[0]
                bad = mutated[t[:-1]] if len(t) > 1 else np.zeros(0, dtype=bool)
                first_bad = int(np.argmax(bad)) if bad.any() else len(t) - 1
                if first_bad == slot.completed and live[slot.current]:
                    continue  # untouched: full prefix survives on a live node
                live_pos = np.flatnonzero(live[t[: first_bad + 1]])
                touched += 1
                if live_pos.size == 0:
                    # Even the source is down: park there with no progress.
                    slot.completed = 0
                    slot.current = slot.source
                    slot.chunks = [np.array([slot.source], dtype=np.int64)]
                    faults.walks_restarted += 1
                else:
                    p = int(live_pos[-1])
                    if p > replay_cap and live[slot.source]:
                        p = 0  # replay dearer than re-stitching: restart
                    slot.completed = p
                    slot.current = int(t[p])
                    slot.chunks = [t[: p + 1]]
                    if p > 0:
                        prefixes.append(slot.chunks[0])
                        faults.walks_recovered += 1
                    else:
                        faults.walks_restarted += 1
            else:
                # Pathless slot: no prefix to validate — restart from source
                # unless it never left it.
                if slot.completed == 0 and live[slot.current]:
                    continue
                touched += 1
                slot.completed = 0
                slot.current = slot.source
                faults.walks_restarted += 1
        if touched:
            stage_tree_funnel(net, tree, messages=2 * touched, congestion=touched)
            net.ledger.charge(tree_height + touched, messages=2 * touched, congestion=touched)
            replay_segments(net, prefixes, words=2)

    # ------------------------------------------------------------------
    # Applications (shared network/ledger/RNG)
    # ------------------------------------------------------------------
    def mixing_time(self, source: int, **kwargs):
        """Section 4.2's decentralized mixing-time estimation on this session."""
        from repro.apps.mixing_time import estimate_mixing_time

        kwargs.setdefault("lambda_constant", self.lambda_constant)
        self._queries += 1
        return estimate_mixing_time(self.graph, source, seed=self.rng, network=self.network, **kwargs)

    def spanning_tree(self, root: int = 0, **kwargs):
        """Section 4.1's distributed random spanning tree on this session."""
        from repro.apps.spanning_tree import random_spanning_tree

        kwargs.setdefault("lambda_constant", self.lambda_constant)
        self._queries += 1
        return random_spanning_tree(self.graph, root=root, seed=self.rng, network=self.network, **kwargs)

    def regenerate(self, result: WalkResult, **kwargs) -> RegenerationResult:
        """Re-announce a recorded walk so every node learns its positions (§2.2)."""
        # Session accounting is uniform across every serving entry point:
        # regeneration is a query like mixing_time/spanning_tree are.
        self._queries += 1
        return regenerate_walk(self.network, result, tree_cache=self._tree_cache, **kwargs)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """Session telemetry: pool occupancy, amortization counters, ledger.

        ``refills`` counts *reactive* GET-MORE-WALKS invocations across the
        whole session (surviving pool re-preparations); the token counters
        describe the *current* pool's store.  The shard block
        (``num_shards`` / ``shard_unused_*`` / ``shards_below_watermark`` /
        ``maintenance_sweeps`` / ``background_refill_tokens``) comes from
        the :class:`~repro.engine.pool.PoolManager`; background sweep
        rounds appear in ``phase_rounds["pool-refill/maintain"]``.
        """
        pool = self._pool
        manager = self._pool_manager
        shard_unused = manager.shard_unused() if manager is not None else None
        below = 0
        if manager is not None and shard_unused is not None:
            below = sum(
                1
                for shard in manager.shards
                if shard_unused[shard.shard_id] < shard.low_watermark
            )
        return EngineStats(
            queries=self._queries,
            full_preparations=self._full_preparations,
            refills=self._refills_retired + (pool.refills if pool is not None else 0),
            tokens_prepared=pool.store.tokens_created if pool is not None else 0,
            tokens_consumed=pool.store.tokens_consumed if pool is not None else 0,
            pool_unused=pool.unused if pool is not None else 0,
            pool_lam=pool.lam if pool is not None else None,
            pool_eta=pool.eta if pool is not None else None,
            rounds=self.network.rounds,
            messages=self.network.messages_sent,
            phase_rounds={k: v.rounds for k, v in self.network.ledger.phases.items()},
            num_shards=manager.num_shards if manager is not None else None,
            shard_unused_min=int(shard_unused.min()) if shard_unused is not None else None,
            shard_unused_max=int(shard_unused.max()) if shard_unused is not None else None,
            shards_below_watermark=below,
            maintenance_sweeps=manager.maintenance_sweeps if manager is not None else 0,
            background_refill_tokens=self._background_refill_tokens,
            shard_refill_counts=(
                [s.refills for s in manager.shards] if manager is not None else None
            ),
            shard_refill_tokens=(
                [s.tokens_added for s in manager.shards] if manager is not None else None
            ),
            outstanding_deficit=manager.outstanding_deficit() if manager is not None else 0,
            serve=self._scheduler.stats().to_dict() if self._scheduler is not None else None,
            churn_events=self._churn.events if self._churn is not None else 0,
            churn_tokens_evicted=self._churn.tokens_evicted if self._churn is not None else 0,
            churn_tokens_regenerated=(
                self._churn.tokens_regenerated if self._churn is not None else 0
            ),
            messages_dropped=int(getattr(self.network, "messages_dropped", 0)),
            retransmissions=int(getattr(self.network, "retransmissions_seen", 0)),
            fault_events=self._faults.events if self._faults is not None else 0,
            crashed_nodes=self._faults.crashed_count if self._faults is not None else 0,
            fault_tokens_evicted=(
                self._faults.tokens_evicted if self._faults is not None else 0
            ),
            fault_tokens_regenerated=(
                self._faults.tokens_regenerated if self._faults is not None else 0
            ),
            fault_walks_recovered=(
                self._faults.walks_recovered if self._faults is not None else 0
            ),
            fault_walks_restarted=(
                self._faults.walks_restarted if self._faults is not None else 0
            ),
            fault_recovery_rounds=self.network.ledger.phase_rounds(SERVE_RECOVERY),
        )

    def __repr__(self) -> str:
        pool = self._pool
        pool_desc = (
            f"pool(lam={pool.lam}, unused={pool.unused})" if pool is not None else "no pool"
        )
        return (
            f"WalkEngine(graph={self.graph.name!r}, n={self.graph.n}, "
            f"queries={self._queries}, {pool_desc}, rounds={self.network.rounds})"
        )
