"""The unified request/result model shared by every algorithm entry point.

Before the :class:`~repro.engine.core.WalkEngine` existed, each public
function returned its own ad-hoc dataclass, and the bookkeeping fields every
caller actually reads — ``mode``, ``rounds``, ``lam``, ``phase_rounds``,
``get_more_walks_calls`` — were duplicated across
:class:`~repro.walks.single_walk.WalkResult`,
:class:`~repro.walks.many_walks.ManyWalksResult`, and the application
results.  :class:`ResultBase` is the single home for those fields now; the
concrete result classes inherit it (keyword-only, so subclass field order
and every existing keyword construction stay valid).

:class:`WalkRequest` is the matching input shape: one small frozen record
that names *what* is being asked (sources, length, algorithm, pooling
policy) independently of *how* the engine executes it.  The engine's
``walk()`` / ``walks()`` conveniences build one and hand it to
``WalkEngine.run`` — the single dispatch point.

This module is deliberately import-light (dataclasses + numpy only): the
``repro.walks`` modules inherit :class:`ResultBase` from here, while
:mod:`repro.engine.core` imports ``repro.walks`` — keeping the heavy
dependency arrow pointing one way only.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WalkError

__all__ = ["ALGORITHMS", "EngineStats", "ResultBase", "WalkRequest"]

#: Algorithm names accepted by :class:`WalkRequest` / ``WalkEngine.walk``.
ALGORITHMS = ("paper", "naive", "podc09", "metropolis")


def _jsonify(value):
    """Recursively convert a dataclass-``asdict`` tree to JSON-ready types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(kw_only=True)
class ResultBase:
    """Cost/outcome fields common to every algorithm and application result.

    ``mode`` names the execution path actually taken (``"stitched"``,
    ``"naive"``, ``"podc09"``, ``"rst"``, ...); ``rounds`` is the simulated
    CONGEST cost of *this* request (on a shared network it is a delta, not
    the ledger total); ``lam`` is the short-walk parameter λ where
    applicable; ``phase_rounds`` breaks the rounds down by ledger phase; and
    ``get_more_walks_calls`` counts pool refills the request triggered.

    Fields are keyword-only so subclasses keep their own positional layout.
    """

    mode: str = ""
    rounds: int = 0
    lam: int = 0
    phase_rounds: dict[str, int] = field(default_factory=dict)
    get_more_walks_calls: int = 0

    def to_dict(self) -> dict:
        """The full result as a JSON-serializable dict (ndarrays → lists)."""
        return _jsonify(dataclasses.asdict(self))


@dataclass(frozen=True)
class WalkRequest:
    """One walk query, independent of how the engine will serve it.

    Attributes
    ----------
    sources:
        Walk start nodes.  A single-walk request carries a 1-tuple; ``many``
        distinguishes "one walk" from "a batch that happens to have k=1"
        (they return :class:`~repro.walks.single_walk.WalkResult` vs.
        :class:`~repro.walks.many_walks.ManyWalksResult`).
    length:
        Steps ℓ of each requested walk.
    algorithm:
        ``"paper"`` (SINGLE-RANDOM-WALK / MANY-RANDOM-WALKS), ``"naive"``
        (ℓ-round token forwarding), ``"podc09"`` (the fixed-length
        baseline), or ``"metropolis"`` (Metropolis–Hastings token walk).
    pooled:
        Serve from the engine's persistent Phase-1 pool (``"paper"`` only;
        the baselines always run one-shot).  ``False`` reproduces the
        legacy free-function execution bit-for-bit.
    record_paths:
        ``None`` picks the path default (pool setting when pooled, the
        legacy per-function default otherwise).
    report_to_source:
        Route the destination ID back to the source (the SoD contract).
    lam / eta:
        Parameter overrides; ``None`` defers to the engine/algorithm
        defaults (for ``"podc09"``, ``eta=None`` means Θ((ℓ/D)^{1/3})).
    batch:
        Batch-stitching knob for pooled ``many`` requests: ``None`` (the
        default) lets the engine pick (interleaved batch stitching — all k
        walks advance per sweep, one SAMPLE-DESTINATION round serving every
        walk parked at a connector); ``False`` forces the serial per-source
        stitching loop (the PR-2 shape, kept as the comparison baseline);
        ``True`` forces batch.  Ignored by one-shot and single-walk paths.
    """

    sources: tuple[int, ...]
    length: int
    algorithm: str = "paper"
    many: bool = False
    pooled: bool = True
    record_paths: bool | None = None
    report_to_source: bool = True
    lam: int | None = None
    eta: float | None = None
    batch: bool | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(int(s) for s in self.sources))
        if self.algorithm not in ALGORITHMS:
            raise WalkError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        if not self.sources:
            raise WalkError("need at least one source")

    @property
    def source(self) -> int:
        """The single source of a non-batch request."""
        return self.sources[0]

    @property
    def k(self) -> int:
        return len(self.sources)

    def to_dict(self) -> dict:
        return _jsonify(dataclasses.asdict(self))


@dataclass(frozen=True)
class EngineStats:
    """Telemetry snapshot from ``WalkEngine.stats()``.

    ``full_preparations`` counts Θ(η·m)-token Phase-1 runs — the quantity
    pooled serving amortizes (a healthy query stream holds it at 1);
    ``refills`` counts *reactive* GET-MORE-WALKS invocations (a query hit a
    dry connector mid-stitch); ``pool_unused`` is the current pool
    occupancy.  ``rounds`` / ``messages`` / ``phase_rounds`` are the shared
    ledger's cumulative totals across every request the engine has served.

    The shard/watermark block describes the
    :class:`~repro.engine.pool.PoolManager` (PR 3): ``num_shards`` shards
    with per-shard quotas; ``shard_unused_min`` / ``shard_unused_max`` the
    occupancy spread; ``shards_below_watermark`` how many shards currently
    await a background sweep (0 right after auto-maintenance);
    ``maintenance_sweeps`` / ``background_refill_tokens`` what the
    background loop has done so far — its rounds appear in ``phase_rounds``
    under ``"pool-refill/maintain"``, separate from reactive
    ``"pool-refill"`` charges.  All shard fields are ``None``/0 before the
    first pool is installed.

    ``shard_refill_counts`` / ``shard_refill_tokens`` break the background
    loop down per shard (how many sweeps topped shard *i* up, how many
    tokens they launched), and ``outstanding_deficit`` is the token deficit
    a full watermark sweep would erase right now — 0 after an unbudgeted
    ``maintain()``, positive while a round budget is deferring shards.

    ``serve`` carries the attached :class:`~repro.serve.WalkScheduler`'s
    telemetry (queue depth, admit/reject/deadline-miss counts, p50/p99
    rounds-per-request) as a plain dict, or ``None`` when no scheduler has
    been attached to the session.

    The churn block (:mod:`repro.dynamic`) counts topology events served
    by :meth:`~repro.engine.core.WalkEngine.apply_churn`:
    ``churn_tokens_evicted`` pooled tokens invalidated by the vectorized
    path scan, ``churn_tokens_regenerated`` their charged replacements —
    whose rounds appear in ``phase_rounds`` under ``"pool-refill/churn"``,
    the third member of the ``pool-refill`` family.

    The fault block (:mod:`repro.engine.faults`) mirrors it for crash
    events: ``fault_events`` applied steps, ``crashed_nodes`` currently
    down, ``fault_tokens_evicted`` pooled tokens lost to invalidation or
    crashed-resident memory loss, ``fault_tokens_regenerated`` their
    charged replacements, ``fault_walks_recovered`` /
    ``fault_walks_restarted`` in-flight walks resumed from a surviving
    prefix vs. restarted from source, and ``fault_recovery_rounds`` the
    cumulative ``"serve/recovery"`` bill.  ``messages_dropped`` /
    ``retransmissions`` surface the lossy-link substrate
    (:class:`~repro.congest.faults.LossyNetwork` drops and
    :class:`~repro.congest.faults.ReliableTokenWalkProtocol` resends seen
    by the session's network) — 0 on a loss-free network.
    """

    queries: int
    full_preparations: int
    refills: int
    tokens_prepared: int
    tokens_consumed: int
    pool_unused: int
    pool_lam: int | None
    pool_eta: float | None
    rounds: int
    messages: int
    phase_rounds: dict[str, int]
    num_shards: int | None = None
    shard_unused_min: int | None = None
    shard_unused_max: int | None = None
    shards_below_watermark: int = 0
    maintenance_sweeps: int = 0
    background_refill_tokens: int = 0
    shard_refill_counts: list[int] | None = None
    shard_refill_tokens: list[int] | None = None
    outstanding_deficit: int = 0
    serve: dict | None = None
    churn_events: int = 0
    churn_tokens_evicted: int = 0
    churn_tokens_regenerated: int = 0
    messages_dropped: int = 0
    retransmissions: int = 0
    fault_events: int = 0
    crashed_nodes: int = 0
    fault_tokens_evicted: int = 0
    fault_tokens_regenerated: int = 0
    fault_walks_recovered: int = 0
    fault_walks_restarted: int = 0
    fault_recovery_rounds: int = 0

    def to_dict(self) -> dict:
        return _jsonify(dataclasses.asdict(self))
