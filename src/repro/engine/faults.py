"""``FaultController`` — crash-fault cascade and recovery for one session.

The §5 robustness extension at the engine level.  A node crash is modeled
as the graph's own sanctioned degenerate case — *"model an absent node as
an isolated one"* (:meth:`~repro.graphs.graph.Graph.apply_delta`): the
crash deletes every incident edge, recovery re-inserts the saved edges
with their saved weights.  Both directions are therefore ordinary
:class:`~repro.dynamic.delta.GraphDelta` events driving the PR-5
invalidation cascade (topology → caches → pool scan → quotas → charged
regeneration), with three crash-specific additions:

1. **Memory loss** — a crash destroys walk state *resident at* the node:
   pooled tokens stored there are evicted by a vectorized destination
   probe (:meth:`~repro.walks.store.WalkStore.rows_held_at`) on top of the
   usual path scan, and in-flight cohort walks parked there are truncated
   to their longest still-valid prefix by
   :meth:`~repro.engine.core.WalkEngine._advance_interleaved`'s per-sweep
   fault poll.
2. **Owed-edge bookkeeping** — edges whose *other* endpoint is still
   crashed at recovery time transfer to that partner's owed set and come
   back when the partner recovers, so no edge is ever resurrected into a
   half-crashed pair and none is lost across overlapping failures.
3. **Recovery charging** — every recovery cost (regeneration sweeps,
   stale-tree rebuilds, prefix replays, and the idle backoff rounds spent
   waiting for a crashed source to come back) bills to the
   ``"serve/recovery"`` sub-phase.  The scheduler excludes that phase from
   cohort apportionment, which extends the ledger-balance identity to
   Σ attributed + maintain + churn + recovery = session delta, exactly.

Exactness survives because crash *and* recovery both mutate the sampling
law of the crashed node's neighborhood, and both trigger the same
truncation/eviction rule: a surviving recorded step was sampled from a
node whose one-step law is identical on every graph from its sampling
time through the final topology, so by induction the served endpoint law
is exactly ``P^ℓ`` on the live graph (chi-square-proved in
``tests/test_fault_serving.py``).  Recovery never resamples a surviving
step — prefixes are *replayed* (:func:`~repro.walks.regenerate.replay_segments`),
the sampling-once discipline of
:class:`~repro.congest.faults.ReliableTokenWalkProtocol` at segment scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.congest.faults import FaultSchedule, FaultStep, FaultyNetwork
from repro.congest.phases import SERVE_RECOVERY
from repro.dynamic.delta import GraphDelta
from repro.engine.model import _jsonify
from repro.errors import WalkError

__all__ = ["FaultController", "FaultReport", "RECOVERY_PHASE"]

RECOVERY_PHASE = SERVE_RECOVERY


@dataclass(frozen=True)
class FaultReport:
    """Outcome of one applied :class:`~repro.congest.faults.FaultStep`.

    ``tokens_lost_at_crashed`` counts tokens evicted because they were
    *stored at* a crashed node (memory loss), a subset-overlapping count of
    ``tokens_evicted`` which also covers law invalidation through the
    mutated neighborhood.  ``regen_rounds`` (and every other round in
    ``rounds``) bills to ``"serve/recovery"``.
    """

    at_round: int
    crashed: tuple[int, ...]
    recovered: tuple[int, ...]
    edges_deleted: int
    edges_restored: int
    mutated_nodes: int
    tokens_scanned: int
    tokens_evicted: int
    tokens_lost_at_crashed: int
    full_eviction: bool
    shards_affected: tuple[int, ...]
    tokens_regenerated: int
    regen_rounds: int
    rounds: int
    deferred_shards: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return _jsonify(dataclasses.asdict(self))


class FaultController:
    """Drives a :class:`~repro.congest.faults.FaultSchedule` on one engine.

    Holds the session's liveness surface, the schedule cursor (steps fire
    as the session ledger's round counter passes their ``at_round``), the
    owed-edge sets of currently-crashed nodes, and cumulative recovery
    telemetry.  Created by
    :meth:`~repro.engine.core.WalkEngine.attach_faults`.
    """

    def __init__(self, engine, schedule: FaultSchedule | None = None) -> None:
        self.engine = engine
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.live = np.ones(engine.graph.n, dtype=bool)
        self.cursor = 0
        self.reports: list[FaultReport] = []
        # node -> (incident edge rows, their weights) saved at crash time.
        self._owed: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._backoff_level = 0
        self.events = 0
        self.crashes_seen = 0
        self.recoveries_seen = 0
        self.tokens_evicted = 0
        self.tokens_regenerated = 0
        self.walks_recovered = 0  # in-flight walks resumed from a surviving prefix
        self.walks_restarted = 0  # in-flight walks restarted from their source
        self.backoff_waits = 0
        self.backoff_wait_rounds = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def crashed_count(self) -> int:
        return int((~self.live).sum())

    def has_pending(self) -> bool:
        return self.cursor < len(self.schedule.steps)

    def next_pending_round(self) -> int | None:
        if not self.has_pending():
            return None
        return self.schedule.steps[self.cursor].at_round

    def recovery_pending(self, node: int) -> bool:
        """Will ``node`` recover in a step the cursor has not yet fired?"""
        return self.schedule.recovery_pending(int(node), after_index=self.cursor)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def poll(self) -> tuple[list[FaultReport], np.ndarray | None]:
        """Fire every scheduled step whose round has passed.

        Returns ``(reports, mutated_mask)`` where ``mutated_mask`` is the
        union of the fired steps' mutated-node masks (``None`` when nothing
        fired) — exactly what in-flight slot truncation needs: a surviving
        prefix step is valid iff it was sampled from a never-mutated node,
        and truncation against the union equals sequential truncation
        against each step (the first invalid step is the first invalid
        step of the union).
        """
        steps = self.schedule.steps
        net = self.engine.network
        fired: list[FaultReport] = []
        mutated_mask: np.ndarray | None = None
        while self.cursor < len(steps) and steps[self.cursor].at_round <= net.rounds:
            step = steps[self.cursor]
            self.cursor += 1
            report, step_mask = self._apply(step)
            fired.append(report)
            if mutated_mask is None:
                mutated_mask = step_mask
            else:
                mutated_mask |= step_mask
        if fired:
            self._backoff_level = 0
        return fired, mutated_mask

    def apply_step(self, step: FaultStep, *, round_budget: int | None = None) -> FaultReport:
        """Apply one explicit fault step immediately (ad-hoc injection)."""
        report, _mask = self._apply(step, round_budget=round_budget)
        return report

    def wait_for_next_step(self) -> int:
        """Charge idle rounds toward the next scheduled step; backoff-paced.

        Used when every serviceable walk is parked on a crashed node: the
        session has nothing to do but let simulated time pass until the
        scheduled recovery.  Waits grow exponentially (1, 2, 4, ... capped
        at 256 rounds) but never overshoot the next step's round; the
        level resets whenever a step fires.  All waits bill to
        ``"serve/recovery"``.
        """
        nxt = self.next_pending_round()
        if nxt is None:
            raise WalkError("wait_for_next_step called with no pending fault step")
        net = self.engine.network
        gap = max(1, nxt - net.rounds)
        wait = min(1 << min(self._backoff_level, 8), gap)
        self._backoff_level += 1
        with net.phase(RECOVERY_PHASE):
            net.ledger.charge(wait)
        self.backoff_waits += 1
        self.backoff_wait_rounds += wait
        return wait

    # ------------------------------------------------------------------
    # The cascade
    # ------------------------------------------------------------------
    def _apply(
        self, step: FaultStep, *, round_budget: int | None = None
    ) -> tuple[FaultReport, np.ndarray]:
        # Fault-episode context rides every span the cascade opens
        # (eviction scans, quota rebuilds, "serve/recovery" regeneration);
        # instant events mark the crash/recovery on the trace timeline.
        probe = self.engine.obs
        with probe.annotate(fault_episode=self.events + 1):
            report, mutated_mask = self._apply_impl(step, round_budget=round_budget)
        ledger = self.engine.network.ledger
        if report.crashed:
            probe.event("crash", ledger, nodes=len(report.crashed), episode=self.events)
        if report.recovered:
            probe.event("recover", ledger, nodes=len(report.recovered), episode=self.events)
        metrics = probe.metrics
        if metrics is not None:
            nodes = metrics.counter(
                "repro_fault_nodes_total", "Nodes crashed/recovered by fault cascades."
            )
            if report.crashed:
                nodes.inc(len(report.crashed), kind="crash")
            if report.recovered:
                nodes.inc(len(report.recovered), kind="recover")
            if report.tokens_evicted:
                metrics.counter(
                    "repro_tokens_evicted_total", "Pool tokens evicted, by cause."
                ).inc(report.tokens_evicted, cause="fault")
            if report.tokens_regenerated:
                metrics.counter(
                    "repro_tokens_added_total", "Pool tokens created by refills, by kind."
                ).inc(report.tokens_regenerated, kind="recovery")
        return report, mutated_mask

    def _apply_impl(
        self, step: FaultStep, *, round_budget: int | None = None
    ) -> tuple[FaultReport, np.ndarray]:
        engine = self.engine
        graph = engine.graph
        net = engine.network
        n = graph.n
        rounds_before = net.rounds

        crashing = [int(v) for v in step.crash if self.live[v]]
        recovering = [int(v) for v in step.recover if not self.live[v]]

        # Crash capture FIRST, from the pre-step graph: each crashing node
        # claims its incident edge rows (an edge between two nodes crashing
        # in the same step is claimed once, by the lower-indexed victim).
        edge_array = graph.edge_array
        weights = graph.edge_weights()
        claimed = np.zeros(len(edge_array), dtype=bool)
        delete_rows: list[np.ndarray] = []
        for v in crashing:
            incident = ((edge_array[:, 0] == v) | (edge_array[:, 1] == v)) & ~claimed
            rows = np.flatnonzero(incident)
            claimed[rows] = True
            self._owed[v] = (edge_array[rows].copy(), weights[rows].copy())
            delete_rows.append(rows)

        # Liveness flips before recovery processing so partner checks see
        # the post-step world (two nodes recovering together re-link).
        for v in recovering:
            self.live[v] = True
        for v in crashing:
            self.live[v] = False
        self.crashes_seen += len(crashing)
        self.recoveries_seen += len(recovering)

        insert_edges: list[np.ndarray] = []
        insert_weights: list[np.ndarray] = []
        for v in recovering:
            edges, w = self._owed.pop(v, (np.empty((0, 2), dtype=np.int64), np.empty(0)))
            partners = np.where(edges[:, 0] == v, edges[:, 1], edges[:, 0])
            restorable = self.live[partners]
            insert_edges.append(edges[restorable])
            insert_weights.append(w[restorable])
            # Edges to still-crashed partners transfer to the partner's
            # owed set; they come back when the partner recovers.
            for row in np.flatnonzero(~restorable):
                p = int(partners[row])
                pe, pw = self._owed.get(p, (np.empty((0, 2), dtype=np.int64), np.empty(0)))
                self._owed[p] = (
                    np.concatenate([pe, edges[row : row + 1]]),
                    np.concatenate([pw, w[row : row + 1]]),
                )

        deleted = (
            np.concatenate(delete_rows) if delete_rows else np.empty(0, dtype=np.int64)
        )
        delta = GraphDelta(
            insert_edges=(
                np.concatenate(insert_edges)
                if insert_edges
                else np.empty((0, 2), dtype=np.int64)
            ),
            delete_edges=edge_array[deleted],
            insert_weights=np.concatenate(insert_weights) if insert_weights else None,
        )

        mutated_mask = np.zeros(n, dtype=bool)
        scanned = evicted = lost_at_crashed = 0
        full_eviction = False
        affected: set[int] = set()
        regen = None
        if not delta.is_empty:
            remap = graph.apply_delta(delta)
            net.refresh_topology()
            heatmap = engine.obs.heatmap
            if heatmap is not None:
                # Crash/recover rebuilds the CSR too: forward the slot
                # rename so heatmap accumulators survive (same contract as
                # the churn controller).
                heatmap.apply_remap(
                    remap, n=graph.n, edge_src=graph.csr_source, edge_dst=graph.csr_target
                )
            engine._tree_cache.clear()
            mutated_mask[remap.mutated_nodes] = True
        else:
            remap = None

        # Every crashing node's resident memory is lost even when it had no
        # edges left to delete (e.g. its whole neighborhood crashed first).
        crashed_mask = np.zeros(n, dtype=bool)
        if crashing:
            crashed_mask[crashing] = True

        pool = engine.pool
        manager = engine.pool_manager
        if pool is not None and manager is not None and (crashing or recovering):
            store = pool.store
            scanned = store.total_unused()
            held = store.rows_held_at(crashed_mask)
            lost_at_crashed = int(held.size)
            if pool.record_paths:
                rows = (
                    store.find_invalid_rows(
                        mutated_mask, remap.deleted_edge_keys, n
                    )
                    if remap is not None
                    else np.empty(0, dtype=np.int64)
                )
                rows = np.union1d(rows, held)
            else:
                # No recorded hops to scan: evict everything (correct but
                # not incremental), matching the churn fallback.
                rows = store.live_rows()
                full_eviction = True
            sources = store.evict_rows(rows)
            evicted = int(sources.size)
            self.tokens_evicted += evicted
            # Quotas re-derive from the post-step degree profile: a crashed
            # (isolated) source's ⌈η·0⌉ = 0 base allocation drops it out of
            # every refill plan automatically; recovery restores it.
            manager.rebuild_quotas()
            if evicted:
                affected.update(int(s) for s in np.unique(sources % manager.num_shards))
            if remap is not None and remap.num_mutated:
                affected.update(
                    int(s) for s in np.unique(remap.mutated_nodes % manager.num_shards)
                )
            regen = manager.restore_shards(
                net,
                engine.rng,
                sorted(affected),
                round_budget=round_budget,
                phase=RECOVERY_PHASE,
            )
            self.tokens_regenerated += regen.tokens_added

        if isinstance(net, FaultyNetwork):
            net.mark_crashed(crashing)
            net.mark_recovered(recovering)

        self.events += 1
        report = FaultReport(
            at_round=step.at_round,
            crashed=tuple(crashing),
            recovered=tuple(recovering),
            edges_deleted=remap.edges_deleted if remap is not None else 0,
            edges_restored=remap.edges_inserted if remap is not None else 0,
            mutated_nodes=remap.num_mutated if remap is not None else 0,
            tokens_scanned=scanned,
            tokens_evicted=evicted,
            tokens_lost_at_crashed=lost_at_crashed,
            full_eviction=full_eviction,
            shards_affected=tuple(sorted(affected)),
            tokens_regenerated=regen.tokens_added if regen is not None else 0,
            regen_rounds=regen.rounds if regen is not None else 0,
            rounds=net.rounds - rounds_before,
            deferred_shards=regen.deferred_shards if regen is not None else (),
        )
        self.reports.append(report)
        return report, mutated_mask
