"""``repro.serve`` — the round-driven serving layer on top of the engine.

Where :mod:`repro.engine` answers one request at a time, this package
schedules a *stream*: requests pass per-shard admission control, wait in a
priority/deadline queue, and are serviced as merged cohorts whose
stitching sweeps interleave over one shared BFS tree — the multi-request
generalization of the PR-3 batch path, with a deadline-driven maintenance
policy keeping the pool's shards at watermark under a per-tick round
budget.  Typical use::

    from repro import WalkEngine, random_regular_graph

    engine = WalkEngine(random_regular_graph(10_000, 4, 0), seed=7,
                        record_paths=False)
    sched = engine.scheduler(max_batch_requests=8, maintain_round_budget=128)
    tickets = [sched.submit([i, i + 1], 512, deadline=4000) for i in range(16)]
    sched.drain()
    print(sched.stats())          # admit/reject/miss counts, p50/p99 rounds

Multi-tenant serving (PR 7): a :class:`TenantRegistry` gives each client
a fair-share weight and an optional per-tick round quota; cohort
formation runs deficit round robin across per-tenant queues, packs walks
up to a Σk budget (``max_batch_walks``, splitting tickets across
cohorts), and can pipeline the whole cohort's reports into one shared
``height + Σk − 1`` convergecast (``pipelined_report``).

Module map: :mod:`~repro.serve.model` (tickets, policy, telemetry),
:mod:`~repro.serve.tenants` (tenant registry: weights, quotas,
per-tenant telemetry), :mod:`~repro.serve.scheduler` (the
``WalkScheduler``), :mod:`~repro.serve.workload` (open-/closed-loop,
fault-injected, and multi-tenant synthetic traffic).
"""

from repro.serve.model import (
    DONE,
    QUEUED,
    REJECTED,
    SchedulerStats,
    ServePolicy,
    TickReport,
    WalkTicket,
)
from repro.serve.scheduler import (
    REASON_QUEUE_FULL,
    REASON_SHARD_BUDGET,
    WalkScheduler,
)
from repro.serve.tenants import (
    DEFAULT_TENANT,
    Tenant,
    TenantRegistry,
)
from repro.serve.workload import (
    TrafficSpec,
    run_closed_loop,
    run_fault_loop,
    run_open_loop,
    run_tenant_loop,
    sample_request_args,
)

__all__ = [
    "DEFAULT_TENANT",
    "DONE",
    "QUEUED",
    "REASON_QUEUE_FULL",
    "REASON_SHARD_BUDGET",
    "REJECTED",
    "SchedulerStats",
    "ServePolicy",
    "Tenant",
    "TenantRegistry",
    "TickReport",
    "TrafficSpec",
    "WalkScheduler",
    "WalkTicket",
    "run_closed_loop",
    "run_fault_loop",
    "run_open_loop",
    "run_tenant_loop",
    "sample_request_args",
]
