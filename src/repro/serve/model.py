"""Data model of the serving subsystem: tickets, policy, telemetry.

A :class:`~repro.serve.scheduler.WalkScheduler` turns the engine's
one-request-at-a-time API into a *stream* interface: callers ``submit``
walk requests and get a :class:`WalkTicket` back immediately; the
scheduler's round-driven loop (``tick``) admits, queues, batches, and
services them.  This module holds the passive records that flow across
that boundary:

* :class:`ServePolicy` — the scheduler's knobs (queue bound, cohort size,
  walk-count packing budget, pipelined-report switch, the per-tick
  maintenance round budget, default deadline, admission switch).
* :class:`WalkTicket` — one submitted request's lifecycle: QUEUED →
  DONE, or REJECTED at admission.  Deadlines are expressed in *simulated
  rounds on the session ledger* — the paper's complexity measure, so "serve
  me within 500 rounds" means 500 rounds of simulated CONGEST time, not
  wall-clock.  A missed deadline is **counted, never dropped**: the ticket
  still completes and carries its result.
* :class:`SchedulerStats` / :class:`TickReport` — telemetry: queue depth,
  admit/reject/deadline-miss counters, p50/p99 rounds-per-request.

Like :mod:`repro.engine.model` this module is deliberately light — it
imports only dataclasses/numpy plus the engine's request model — so tests
and tooling can reason about tickets without pulling in the scheduler.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.engine.model import WalkRequest, _jsonify
from repro.serve.tenants import DEFAULT_TENANT

__all__ = [
    "DONE",
    "QUEUED",
    "REJECTED",
    "SchedulerStats",
    "ServePolicy",
    "TickReport",
    "WalkTicket",
]

#: Ticket lifecycle states (plain strings, matching the repo's ``mode`` idiom).
QUEUED = "queued"
REJECTED = "rejected"
DONE = "done"


@dataclass(frozen=True)
class ServePolicy:
    """Knobs of one :class:`~repro.serve.scheduler.WalkScheduler`.

    Attributes
    ----------
    max_queue_depth:
        Admission bound: submissions beyond this many queued tickets are
        rejected (``"queue-full"``) instead of growing the backlog without
        bound — the open-loop overload guard.
    max_batch_requests:
        How many queued requests one scheduling round services as a merged
        cohort.  Larger cohorts amortize shared BFS floods and pipeline more
        draws per sweep but delay the requests behind them.  Ignored when
        ``max_batch_walks`` is set — walk-count packing then governs.
    max_batch_walks:
        Walk-count (Σk) packing budget per merged cohort, the PODC'10-native
        cohort measure: sweep cost scales with the walks in flight, not the
        requests they came from, so the cohort fills with walks until this
        budget is met, **splitting** the last ticket across cohorts when it
        does not fit whole.  Split tickets accumulate partial results and
        complete when their last chunk is served — never dropped, never
        reordered within their tenant.  ``None`` (default) keeps PR-4
        request-count cohorts.
    pipelined_report:
        Replace each ticket's private ``height + k`` report convergecast
        with ONE shared ``height + Σk − 1`` convergecast per cohort (phase
        ``"serve/report"``, the arXiv:1201.1363 cross-request pipelining),
        apportioned into ``rounds_attributed`` with the rest of the shared
        cohort delta.  Private request deltas (``WalkTicket.rounds``) are
        then 0 — the whole cohort cost is shared.  Off by default: the
        PR-4 per-request report billing is the documented attribution
        contract and the golden serve ledgers pin it.
    drr_quantum:
        Walks added to a tenant's deficit per deficit-round-robin pass,
        scaled by the tenant's weight.  Larger quanta give coarser-grained
        fairness (whole bursts per tenant per pass); the default keeps
        per-pass service near one small request per unit weight.
    maintain_round_budget:
        Per-tick round budget for the deadline-driven maintenance sweep
        (emptiest/most-demanded shard first); ``None`` keeps the PR-3
        full-quota sweep every tick.
    default_deadline:
        Round budget applied to submissions that do not carry their own
        ``deadline``; ``None`` means no deadline (and admission control then
        has no budget to reject against for that request).
    admission_control:
        Master switch for per-shard admission: reject a request whose
        source's shard sits below watermark and cannot be refilled within
        the request's round budget.  Off, every submission queues.
    speculative_prefetch:
        Warm shards for *queued* work: each tick feeds the source shards
        of tickets still waiting in the queue into
        :meth:`~repro.engine.pool.PoolManager.note_demand`, so the
        deadline-budgeted maintenance sweep refills the shards upcoming
        cohorts will stitch through before those cohorts run.  Only the
        refill *ordering* changes — never the amount of work — so with no
        round budget the knob is a no-op.
    """

    max_queue_depth: int = 256
    max_batch_requests: int = 8
    max_batch_walks: int | None = None
    pipelined_report: bool = False
    drr_quantum: int = 8
    maintain_round_budget: int | None = None
    default_deadline: int | None = None
    admission_control: bool = True
    speculative_prefetch: bool = True


@dataclass
class WalkTicket:
    """One submitted request's lifecycle inside the scheduler.

    ``rounds`` is the ticket's *private* request delta
    (:meth:`~repro.congest.ledger.RoundLedger.delta_since` around the work
    attributable to this request alone — its report convergecast); shared
    cohort work (merged sweeps, tails, refills) is charged to the
    ``"serve"``/``"pool-refill"`` phase families and **never** leaks into
    it.  ``rounds_attributed`` adds this ticket's proportional share (by
    walk count) of its cohort's shared rounds — the quantity the p50/p99
    rounds-per-request telemetry summarizes; per cohort the attributed
    rounds sum exactly to the cohort's ledger delta.  Under
    ``ServePolicy.pipelined_report`` the report itself is shared (one
    ``height + Σk − 1`` convergecast per cohort), so ``rounds`` is 0 and
    the whole cost arrives through attribution.  ``latency_rounds`` is
    end-to-end simulated latency: ledger rounds between submission and
    completion, the number deadlines are checked against.
    """

    ticket_id: int
    request: WalkRequest
    priority: int
    submitted_round: int
    deadline_round: int | None
    #: Owning tenant (deficit-round-robin class + quota bucket); untagged
    #: submissions land on the auto-registered default tenant.
    tenant: str = DEFAULT_TENANT
    status: str = QUEUED
    reject_reason: str | None = None
    result: object | None = None  # ManyWalksResult once DONE
    serviced_tick: int | None = None
    completed_round: int | None = None
    rounds: int = 0
    rounds_attributed: int = 0
    latency_rounds: int | None = None
    deadline_missed: bool = False
    #: Walks served so far — equals ``request.k`` once DONE; in between it
    #: tracks a walk-count-packed ticket's progress across the cohorts its
    #: chunks rode (see ``ServePolicy.max_batch_walks``).
    walks_served: int = 0
    #: Cohorts this ticket's walks were split across (1 = served whole).
    cohorts: int = 0
    #: Times the scheduler parked this ticket because a source was crashed
    #: (retried — never dropped — once the scheduled recovery fires).
    retries: int = 0

    @property
    def k(self) -> int:
        return self.request.k

    def to_dict(self) -> dict:
        return _jsonify(dataclasses.asdict(self))


@dataclass(frozen=True)
class TickReport:
    """Outcome of one scheduling round (:meth:`WalkScheduler.tick`).

    ``rounds`` is the full ledger delta of the tick — cohort servicing plus
    the maintenance sweep; ``serviced`` lists the ticket ids the cohort
    completed; ``maintain_rounds`` / ``deferred_shards`` echo the budgeted
    maintenance outcome.
    """

    tick: int
    serviced: tuple[int, ...]
    rounds: int
    queue_depth: int
    refill_calls: int = 0
    maintain_rounds: int = 0
    deferred_shards: tuple[int, ...] = ()


def _percentile(values: list[int], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class SchedulerStats:
    """Telemetry snapshot from ``WalkScheduler.stats()``.

    Counter block: ``submitted = admitted + rejected``; ``completed`` of
    the admitted have results; ``deadline_misses`` of those completed after
    their deadline round (they still completed — misses are counted, not
    dropped).  ``rejects_by_reason`` splits rejections (``"queue-full"``
    vs. ``"shard-refill-exceeds-budget"``).

    Cost block: ``p50_rounds_per_request`` / ``p99_rounds_per_request``
    summarize completed tickets' attributed rounds (private + cohort
    share); ``p50_latency_rounds`` / ``p99_latency_rounds`` the end-to-end
    simulated latencies.  ``serve_rounds`` is the ledger's ``"serve"``
    phase-family total (shared scheduling work), ``serve_refill_rounds``
    the reactive refills inside merged sweeps
    (``"pool-refill/serve"``), ``maintain_rounds`` the budgeted background
    sweeps (``"pool-refill/maintain"``).

    Failures block (crash-fault serving, :mod:`repro.engine.faults`):
    ``crashes_seen`` / ``recoveries_seen`` node events fired by the
    session's fault schedule; ``walks_recovered`` in-flight walks resumed
    from a surviving prefix (``walks_restarted`` had none and restarted
    from source); ``recovery_rounds`` the ledger's ``"serve/recovery"``
    bill — regeneration, tree rebuilds, prefix replays, and idle backoff
    waits; ``ticket_retries`` park-and-retry events (a cohort slot's
    source was crashed — the ticket waited out the scheduled recovery,
    it was **never dropped**); ``backoff_waits`` idle waits charged while
    every serviceable walk sat on a crashed node; ``refill_backoffs``
    maintenance sweeps that skipped a repeatedly-deferring shard on an
    exponential retry schedule.
    """

    submitted: int
    admitted: int
    rejected: int
    completed: int
    deadline_misses: int
    queue_depth: int
    ticks: int
    cohorts: int
    walks_served: int
    refill_calls: int
    p50_rounds_per_request: float
    p99_rounds_per_request: float
    p50_latency_rounds: float
    p99_latency_rounds: float
    serve_rounds: int
    serve_refill_rounds: int
    maintain_rounds: int
    rejects_by_reason: dict[str, int] = field(default_factory=dict)
    #: Shard-demand notes fed to the pool manager by speculative prefetch
    #: (one per queued-but-unserviced ticket source shard per tick).
    prefetch_shards_noted: int = 0
    crashes_seen: int = 0
    recoveries_seen: int = 0
    walks_recovered: int = 0
    walks_restarted: int = 0
    recovery_rounds: int = 0
    ticket_retries: int = 0
    backoff_waits: int = 0
    refill_backoffs: int = 0
    #: Multi-tenant block (:mod:`repro.serve.tenants`): per-tenant
    #: telemetry keyed by name in registration order (weights, quota
    #: balances, attributed rounds, throttle counts); ``cohort_splits``
    #: counts tickets whose walks were split across cohorts by walk-count
    #: packing; ``throttled_ticks`` sums tenant-ticks on which queued work
    #: was deferred by an overdrawn quota bucket.
    tenants: dict[str, dict] = field(default_factory=dict)
    cohort_splits: int = 0
    throttled_ticks: int = 0

    def to_dict(self) -> dict:
        return _jsonify(dataclasses.asdict(self))
