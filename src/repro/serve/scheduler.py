"""``WalkScheduler`` — round-driven request scheduling on one engine session.

The engine (PR 2/3) serves exactly one request at a time and sweeps the
pool to full quota after each.  This module adds the serving layer the
paper's regime actually rewards: arXiv:1201.1363's ``Θ(√(kℓD) + k)`` bound
comes from aggregating many outstanding walk demands into *shared* sweeps,
and arXiv:1102.2906's lower bound says rounds are the scarce resource to
schedule against.  Concretely:

* **Admission control** (per shard).  ``submit`` prices the refill of the
  request's source shards with the pool manager's sweep-cost estimator;
  a request whose round budget cannot cover restoring a below-watermark
  shard is rejected *immediately and for free* — rejection is pure
  bookkeeping, no ledger charge, so an overloaded scheduler sheds load
  without spending the very rounds it is short of.
* **Multi-tenant weighted-fair queueing** (PR 7).  Every submission lands
  on a tenant (:mod:`repro.serve.tenants`; untagged → the default
  tenant).  Each tenant has its own heap ordered by (priority, deadline
  round, submission order), and cohort formation runs **deficit round
  robin** across tenants: each pass grants every backlogged tenant
  ``weight × drr_quantum`` walks of deficit, and a tenant's head ticket
  is served once its deficit covers the ticket's walk count.  Under
  saturating load each tenant's share of served walks — and therefore of
  attributed rounds — converges to ``weight / Σ weights``, so a 10× hot
  tenant cannot starve the others.  Token-bucket **round quotas** cap
  tenants harder than fair share: the bucket refills ``quota`` rounds per
  tick and is debited each cohort with the tenant's exact attributed
  rounds; an overdrawn tenant is *throttled* — its queue is skipped until
  refills cover the debt, deferred, never dropped.
* **A documented total order.**  The schedule is a deterministic function
  of (tenant registration order, per-tenant heap order), where the heap
  breaks priority and deadline ties by ticket id — global submission
  order.  There is no other tie-break anywhere, so replays with a fixed
  seed are bit-reproducible across tenants (tested in
  ``tests/test_tenants.py``).
* **Concurrent interleaved servicing with walk-count packing.**  Each
  scheduling round merges the popped work into one slot list for the
  engine's interleaved sweep engine
  (:meth:`~repro.engine.core.WalkEngine._advance_interleaved`): one BFS
  (re-)flood per sweep for the whole cohort, every walk parked at a
  connector sharing one pipelined SAMPLE-DESTINATION round trip, all
  cross-request tails completing in one parallel phase.  By default the
  cohort is ``max_batch_requests`` whole tickets (PR 4); with
  ``max_batch_walks`` set the cohort instead packs **walks** up to a Σk
  budget — the quantity sweep cost actually scales with — *splitting*
  the last ticket across cohorts when it does not fit whole.  Split
  tickets accumulate partial results chunk by chunk and complete when
  the last chunk lands.
* **Charged attribution.**  Shared cohort work lands on the session ledger
  under the ``"serve"`` phase family (``serve/setup``, ``serve/sample``,
  ``serve/stitch-route``, ``serve/tail``, and — under
  ``pipelined_report`` — ``serve/report``) and reactive refills under
  ``"pool-refill/serve"``; each ticket's *private* delta
  (:meth:`~repro.congest.ledger.RoundLedger.capture` /
  :meth:`~repro.congest.ledger.RoundLedger.delta_since` around its own
  report convergecast) never contains them.  ``rounds_attributed`` adds a
  proportional share of the cohort's shared delta, apportioned so every
  cohort's attributed rounds sum *exactly* to its ledger delta — requests
  + background maintenance balance the session ledger to the round, and
  per tenant: Σ over tenants of attributed rounds + maintain + churn +
  recovery = session delta exactly.  With ``pipelined_report`` the k
  per-ticket ``height + k`` convergecasts collapse into ONE shared
  ``height + Σk − 1`` wave per cohort
  (:meth:`~repro.engine.core.WalkEngine._report_convergecast`), billed
  shared and apportioned like the sweeps.
* **Deadline-driven maintenance.**  Instead of the engine's unconditional
  full-quota sweep after every request, each tick ends with
  ``engine.maintain(round_budget=...)``: the emptiest/most-demanded shard
  refills first and the budget defers the rest, with queued tickets'
  shards fed in as demand weighted by their tenant's fair-share weight
  (see :meth:`~repro.engine.pool.PoolManager.maintain`).

The exactness contract is unchanged: every draw inside a merged sweep is a
uniform unused token of its connector (Lemma A.2, without replacement), so
scheduled endpoints keep the exact ``P^ℓ`` law per walk, independent walks
across requests — including chunks of one request split across cohorts.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.congest.phases import (
    POOL_REFILL_MAINTAIN,
    POOL_REFILL_SERVE,
    REPORT,
    SERVE_FAMILY,
    SERVE_RECOVERY,
    SERVE_REPORT,
    SERVE_SAMPLE,
    SERVE_SETUP,
    SERVE_STITCH_ROUTE,
    SERVE_TAIL,
)
from repro.congest.primitives import build_bfs_tree
from repro.engine.core import WalkEngine, _WalkSlot
from repro.engine.model import WalkRequest
from repro.errors import WalkError
from repro.serve.model import (
    DONE,
    REJECTED,
    SchedulerStats,
    ServePolicy,
    TickReport,
    WalkTicket,
    _percentile,
)
from repro.serve.tenants import DEFAULT_TENANT, TenantRegistry
from repro.walks.many_walks import ManyWalksResult, _parallel_tails
from repro.walks.params import many_walks_params

__all__ = ["WalkScheduler"]

#: Reject reasons (stable strings for telemetry and tests).
REASON_QUEUE_FULL = "queue-full"
REASON_SHARD_BUDGET = "shard-refill-exceeds-budget"


@dataclass
class _CohortEntry:
    """One cohort's slice of a ticket: walks ``[start, start + k)``.

    Whole tickets ride as a single entry (``start == 0, k == ticket.k``);
    walk-count packing may split a ticket into chunks served by
    consecutive cohorts, each chunk one entry.
    """

    ticket: WalkTicket
    start: int
    k: int


class _Partial:
    """Accumulated state of a ticket served across one or more cohorts."""

    __slots__ = ("destinations", "trajectories", "phase_rounds", "drew")

    def __init__(self) -> None:
        self.destinations: list[int] = []
        self.trajectories: list[np.ndarray] = []
        self.phase_rounds: dict[str, int] = {}
        self.drew = False


class WalkScheduler:
    """Round-driven scheduler for a stream of walk requests on one engine.

    Usage::

        engine = WalkEngine(graph, seed=7, record_paths=False)
        tenants = TenantRegistry.parse("free:1:0,pro:4:0")
        sched = engine.scheduler(tenants=tenants, max_batch_walks=64,
                                 pipelined_report=True,
                                 maintain_round_budget=64)
        tickets = [sched.submit([0, 17, 33], 4096, deadline=5000,
                                tenant="pro")
                   for _ in range(32)]
        sched.drain()                      # tick until the queues are empty
        done = [t for t in tickets if t.status == "done"]
        print(sched.stats())               # incl. per-tenant telemetry

    The scheduler owns no network state of its own — everything is charged
    on the engine's session ledger, with shared scheduling work in the
    ``"serve"`` phase family.  Construction attaches the scheduler to the
    engine (``engine.stats().serve`` surfaces its telemetry); attaching a
    second scheduler replaces the first.  With no registry and no tenant
    tags every request rides the auto-registered default tenant, and the
    scheduler is exactly the PR-4 single-stream scheduler.
    """

    def __init__(
        self,
        engine: WalkEngine,
        *,
        policy: ServePolicy | None = None,
        tenants: TenantRegistry | None = None,
        **knobs,
    ) -> None:
        if policy is not None and knobs:
            raise WalkError("pass either policy= or individual policy knobs, not both")
        self.engine = engine
        self.policy = policy if policy is not None else ServePolicy(**knobs)
        if self.policy.max_queue_depth < 1:
            raise WalkError("max_queue_depth must be >= 1")
        if self.policy.max_batch_requests < 1:
            raise WalkError("max_batch_requests must be >= 1")
        if self.policy.max_batch_walks is not None and self.policy.max_batch_walks < 1:
            raise WalkError("max_batch_walks must be >= 1 (or None for request-count cohorts)")
        if self.policy.drr_quantum < 1:
            raise WalkError("drr_quantum must be >= 1")
        self.tenants = tenants if tenants is not None else TenantRegistry()
        engine._scheduler = self
        self.root: int | None = None  # shared-tree root, pinned at first cohort
        # True once any trajectory request was admitted while the engine
        # was still cold: the eventual auto-prepared pool must record
        # paths even if that ticket lands in a later cohort than the one
        # that installs the pool.
        self._trajectories_requested = False
        # One (priority, deadline, ticket_id) heap per tenant, visited in
        # registry registration order by deficit round robin.  The cursor
        # persists across cohorts: a tenant whose turn a full cohort cut
        # short resumes it (same deficit, no fresh quantum) in the next
        # one — without this, tenants early in registration order would
        # eat every cohort's budget and permanently truncate the last.
        self._queues: dict[str, list[tuple[int, float, int]]] = {}
        self._deficits: dict[str, float] = {}
        self._drr_cursor = 0
        self._drr_resume = False
        self._tickets: dict[int, WalkTicket] = {}
        self._partials: dict[int, _Partial] = {}
        self._next_id = 0
        self._ticks = 0
        self._cohorts = 0
        # Submission/completion totals live on the per-tenant counters
        # only (every ticket has an owner, the default tenant included);
        # stats() derives the session totals via _tenant_total so the same
        # quantity is never maintained in two places.
        self._refill_calls = 0
        self._prefetch_noted = 0
        self._cohort_splits = 0
        self._rejects_by_reason: dict[str, int] = {}
        # Crash-fault serving state: tickets parked on a crashed source
        # (ticket_id -> heap key, re-queued when the source recovers), and
        # the exponential-backoff schedule for shards whose maintenance
        # refills keep deferring (shard -> (defer streak, skip-until tick)).
        self._parked: dict[int, tuple[int, float, int]] = {}
        self._ticket_retries = 0
        self._shard_defer_streak: dict[int, int] = {}
        self._shard_skip_until: dict[int, int] = {}
        self._refill_backoffs = 0

    # ------------------------------------------------------------------
    # Submission and admission control
    # ------------------------------------------------------------------
    def submit(
        self,
        sources,
        length: int,
        *,
        deadline: int | None = None,
        priority: int = 0,
        tenant: str | None = None,
        record_paths: bool | None = None,
        report_to_source: bool = True,
    ) -> WalkTicket:
        """Submit one walk request; returns its ticket immediately.

        ``sources`` is a single node or an iterable of nodes (the request's
        k walks).  ``deadline`` is a round budget: the request should
        complete within that many *simulated rounds* from now; ``None``
        falls back to the policy default.  Smaller ``priority`` values are
        served first; ties (and the default priority 0) are FIFO.
        ``tenant`` names the submitting client (``None`` → the default
        tenant); unknown names auto-register at weight 1 with no quota —
        pre-register via the :class:`~repro.serve.TenantRegistry` to give
        a client a weight or a round quota.

        Malformed requests (bad source, non-positive length, trajectory
        request on an endpoint-only pool) raise :class:`WalkError` — those
        are caller bugs.  *Admission* failures — queue full, or a source
        shard below watermark whose estimated refill cost exceeds the
        request's round budget — return a ``REJECTED`` ticket instead:
        rejection is a scheduling outcome, costs zero ledger rounds, and is
        counted in :meth:`stats` (globally and per tenant).
        """
        if isinstance(sources, (int, np.integer)):
            sources = (int(sources),)
        request = WalkRequest(
            sources=tuple(sources),
            length=length,
            many=True,
            record_paths=record_paths,
            report_to_source=report_to_source,
        )
        for s in request.sources:
            self.engine._validate_query(s, length)
        pool = self.engine.pool
        if record_paths and pool is not None and not pool.record_paths:
            raise WalkError(
                "pool was prepared with record_paths=False; "
                "call engine.prepare(record_paths=True) to serve trajectory requests"
            )
        budget = deadline if deadline is not None else self.policy.default_deadline
        if budget is not None and budget < 1:
            raise WalkError(f"deadline must be >= 1 round, got {budget}")
        tenant_name = tenant if tenant is not None else DEFAULT_TENANT
        owner = self.tenants.ensure(tenant_name)
        owner.submitted += 1
        now = self.engine.network.rounds
        ticket = WalkTicket(
            ticket_id=self._next_id,
            request=request,
            priority=int(priority),
            submitted_round=now,
            deadline_round=now + budget if budget is not None else None,
            tenant=tenant_name,
        )
        self._next_id += 1
        reason = self._admission_reason(request, budget)
        obs = self.engine.obs
        metrics = obs.metrics
        if reason is not None:
            ticket.status = REJECTED
            ticket.reject_reason = reason
            owner.rejected += 1
            obs.slo_record("reject", tenant_name)
            self._rejects_by_reason[reason] = self._rejects_by_reason.get(reason, 0) + 1
            self._tickets[ticket.ticket_id] = ticket
            if metrics is not None:
                metrics.counter(
                    "repro_admission_rejects_total",
                    "Requests rejected at admission, by tenant and reason.",
                ).inc(1, tenant=tenant_name, reason=reason)
                metrics.counter(
                    "repro_requests_total", "Submitted requests, by tenant and outcome."
                ).inc(1, tenant=tenant_name, outcome="rejected")
            return ticket
        owner.admitted += 1
        obs.slo_record("admit", tenant_name)
        if metrics is not None:
            metrics.counter(
                "repro_requests_total", "Submitted requests, by tenant and outcome."
            ).inc(1, tenant=tenant_name, outcome="admitted")
        if record_paths and pool is None:
            # Cold engine and the request was ADMITTED: remember the wish
            # so whichever cohort installs the pool prepares it
            # path-capable (a rejected wish must not tax the session).
            self._trajectories_requested = True
        self._tickets[ticket.ticket_id] = ticket
        heapq.heappush(
            self._queues.setdefault(tenant_name, []),
            (
                ticket.priority,
                float(ticket.deadline_round) if ticket.deadline_round is not None else math.inf,
                ticket.ticket_id,  # submission order: FIFO within a class
            ),
        )
        return ticket

    def _admission_reason(self, request: WalkRequest, budget: int | None) -> str | None:
        """Admission control; pure bookkeeping, charges nothing.

        Queue-bound check first, then the per-shard rule: every distinct
        source shard sitting below its watermark must be restorable within
        the request's round budget at the manager's estimated sweep price
        (:meth:`~repro.engine.pool.PoolManager.estimate_refill_rounds`).  A
        request with no budget (no deadline) skips the shard rule — it has
        nothing to miss.  A cold engine (no pool yet) admits everything:
        the first cohort prepares the pool at full quota.
        """
        if self.queue_depth >= self.policy.max_queue_depth:
            return REASON_QUEUE_FULL
        if not self.policy.admission_control or budget is None:
            return None
        manager = self.engine.pool_manager
        if manager is None:
            return None
        unused = manager.shard_unused()
        for shard_id in sorted({manager.shard_of(s) for s in request.sources}):
            shard = manager.shards[shard_id]
            if unused[shard_id] >= shard.low_watermark:
                continue
            if manager.estimate_refill_rounds([shard_id]) > budget:
                return REASON_SHARD_BUDGET
        return None

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        # Parked tickets are still queued work (they re-enter their queue
        # at recovery), so they count against the admission bound too.  A
        # split ticket counts once until its last chunk completes.
        return sum(len(q) for q in self._queues.values()) + len(self._parked)

    def _has_queued(self) -> bool:
        return any(self._queues.values())

    def ticket(self, ticket_id: int) -> WalkTicket:
        return self._tickets[ticket_id]

    def tick(self) -> TickReport:
        """One scheduling round: service a cohort, then budgeted maintenance.

        Refills every tenant's quota bucket, forms a cohort by deficit
        round robin over the tenant queues — whole tickets up to
        ``max_batch_requests``, or walk chunks up to ``max_batch_walks``
        when packing — services it as ONE merged interleaved batch, and
        closes with the deadline-driven maintenance sweep under the
        policy's round budget.  Safe to call with an empty queue — an idle
        tick costs only the (possibly zero-cost) maintenance check.

        With a fault controller attached the tick starts by polling the
        schedule (crash/recovery cascades fire as simulated time passes
        their rounds, and the shared-tree root re-pins if it crashed),
        tickets whose source is crashed are *parked* — retried once the
        scheduled recovery fires, counted, never dropped — and when parked
        work is all that remains the tick waits simulated time forward
        (exponential backoff, billed to ``"serve/recovery"``) instead of
        spinning.  A parked ticket whose source will never recover raises
        :class:`~repro.errors.WalkError` — an unservable request fails
        loudly rather than silently vanishing.  The closing maintenance
        sweep excludes shards on refill backoff (see ``refill_backoffs``
        in :meth:`stats`).
        """
        net = self.engine.network
        rounds_before = net.rounds
        self._ticks += 1
        self._poll_faults()
        self.tenants.refill()
        for name, queue in self._queues.items():
            owner = self.tenants.get(name)
            if queue and owner.throttled:
                owner.throttled_ticks += 1
                self.engine.obs.slo_record("throttle", name)
        cohort = self._form_cohort()
        refill_calls = 0
        if cohort:
            self._cohorts += 1
            refill_calls = self._service_cohort(cohort)
        elif self._parked and not self._has_queued():
            # Every remaining request sits on a crashed source: advance
            # simulated time toward the scheduled recovery (idle rounds
            # billed to "serve/recovery", exponentially backed off).
            self.engine._faults.wait_for_next_step()
        self._note_prefetch_demand()
        maintain = self.engine.maintain(
            round_budget=self.policy.maintain_round_budget,
            exclude_shards=self._excluded_shards() or None,
        )
        self._note_shard_backoff(maintain)
        if self.engine.obs.metrics is not None:
            self._emit_tick_metrics()
        self.engine.obs.slo_tick(self._ticks, net.rounds, self.queue_depth, net.ledger)
        return TickReport(
            tick=self._ticks,
            serviced=tuple(e.ticket.ticket_id for e in cohort),
            rounds=net.rounds - rounds_before,
            queue_depth=self.queue_depth,
            refill_calls=refill_calls,
            maintain_rounds=maintain.rounds,
            deferred_shards=maintain.deferred_shards,
        )

    def _poll_faults(self) -> None:
        """Fire due fault steps, re-pin a crashed root, unpark recovered tickets."""
        faults = self.engine._faults
        if faults is None:
            return
        faults.poll()
        live = faults.live
        if self.root is not None and not live[self.root]:
            # The shared-tree root is down: the next cohort re-pins to one
            # of its own (live) sources.
            self.root = None
        if self._parked:
            for ticket_id, key in list(self._parked.items()):
                ticket = self._tickets[ticket_id]
                if all(live[s] for s in ticket.request.sources):
                    del self._parked[ticket_id]
                    heapq.heappush(self._queues[ticket.tenant], key)

    def _park_if_crashed(self, ticket: WalkTicket) -> bool:
        """Park a crashed-source ticket for retry; True if parked.

        Parking preserves the ticket's heap key, so a recovered ticket
        re-enters its tenant's queue with its original (priority, deadline,
        FIFO) position.  A crashed source with no scheduled recovery makes
        the request unservable — that raises rather than parking forever.
        """
        faults = self.engine._faults
        if faults is None:
            return False
        live = faults.live
        if all(live[s] for s in ticket.request.sources):
            return False
        for s in ticket.request.sources:
            if not live[s] and not faults.recovery_pending(s):
                raise WalkError(
                    f"ticket {ticket.ticket_id}: source {s} is crashed with no "
                    "scheduled recovery; request cannot be served"
                )
        ticket.retries += 1
        self._ticket_retries += 1
        return True

    def _form_cohort(self) -> list[_CohortEntry]:
        """Deficit-round-robin cohort formation across the tenant queues.

        The rotation visits tenants in **registration order**
        (:attr:`~repro.serve.tenants.TenantRegistry.order`) from a cursor
        that persists across cohorts.  Arriving at a backlogged,
        unthrottled tenant grants it ``weight × drr_quantum`` walks of
        deficit, and its queue head is taken while the deficit covers the
        head's walk count; the rotation keeps cycling (granting a fresh
        quantum per arrival) until the cohort budget fills or no tenant
        has eligible work.  When a full cohort cuts a tenant's turn short
        the cursor stays on it and the next cohort *resumes* the turn —
        same deficit, no fresh quantum — so one full rotation always
        grants walks in exact ``weight`` proportion no matter how the
        budget slices rotations into cohorts, and each tenant's share of
        served walks (hence of attributed rounds) converges to
        ``weight / Σ weights`` under backlog.  A tenant's deficit resets
        when its queue drains (no banking credit while idle) and persists
        while backlogged (a big ticket is not starved — the deficit keeps
        growing until it covers it).

        With ``max_batch_walks`` unset (default) the cohort is whole
        tickets, capped at ``max_batch_requests`` — the PR-4 cohort, and
        with a single tenant the pop order is bit-identical to the PR-4
        heap.  With it set, the cohort packs walks up to the Σk budget and
        the final ticket is *split* when only part of it fits: the taken
        chunk rides this cohort, the rest stays at the head of its
        tenant's queue (same key) for the next one.  Crashed-source
        tickets are parked for retry exactly as before.  The whole
        schedule is a deterministic function of (cursor, registration
        order, per-tenant heap order) with ticket id — global submission
        order — as the final tie-break, so fixed-seed replays are
        bit-reproducible.
        """
        order = self.tenants.order
        if not order:
            return []
        walk_budget = self.policy.max_batch_walks
        request_budget = self.policy.max_batch_requests if walk_budget is None else None
        entries: list[_CohortEntry] = []
        walks_packed = 0
        n = len(order)
        i = self._drr_cursor % n
        resume = self._drr_resume
        self._drr_resume = False
        visited = 0
        any_eligible = False
        while True:
            name = order[i]
            queue = self._queues.get(name)
            owner = self.tenants.get(name)
            if queue and not owner.throttled:
                any_eligible = True
                if not resume:
                    self._deficits[name] = (
                        self._deficits.get(name, 0.0) + owner.weight * self.policy.drr_quantum
                    )
                while queue:
                    if request_budget is not None and len(entries) >= request_budget:
                        self._drr_cursor, self._drr_resume = i, True
                        return entries
                    key = queue[0]
                    ticket = self._tickets[key[2]]
                    if self._park_if_crashed(ticket):
                        heapq.heappop(queue)
                        self._parked[ticket.ticket_id] = key
                        continue
                    remaining = ticket.k - ticket.walks_served
                    take = remaining
                    if walk_budget is not None:
                        room = walk_budget - walks_packed
                        if room <= 0:
                            self._drr_cursor, self._drr_resume = i, True
                            return entries
                        take = min(remaining, room)
                    if self._deficits.get(name, 0.0) < take:
                        break  # turn over — the rotation moves on
                    heapq.heappop(queue)
                    if take < remaining:
                        # Split: the chunk rides this cohort, the ticket
                        # keeps its key (and queue position) for the rest.
                        heapq.heappush(queue, key)
                        self._cohort_splits += 1
                    entries.append(_CohortEntry(ticket=ticket, start=ticket.walks_served, k=take))
                    self._deficits[name] -= take
                    walks_packed += take
                    if take < remaining:
                        # The walk budget is exactly exhausted (take was
                        # capped by room); return before re-popping the
                        # same head.
                        self._drr_cursor, self._drr_resume = i, True
                        return entries
            if queue is not None and not queue:
                self._deficits[name] = 0.0
            resume = False
            i = (i + 1) % n
            visited += 1
            if visited % n == 0:
                if not any_eligible:
                    # Every queue is empty, throttled, or fully parked.
                    self._drr_cursor = i
                    return entries
                # Some tenant still has work but deficits were short: keep
                # rotating — each arrival grants quantum (take >= 1,
                # weight > 0), so a head ticket is eventually covered and
                # termination is guaranteed.
                any_eligible = False

    def _excluded_shards(self) -> list[int]:
        """Shards currently skipped by the refill backoff schedule."""
        return [s for s, until in self._shard_skip_until.items() if self._ticks < until]

    def _note_shard_backoff(self, maintain) -> None:
        """Track defer streaks; repeatedly-deferring shards back off exponentially.

        A shard the budgeted sweep defers twice in a row is skipped for
        ``2^(streak−2)`` ticks (capped at 8) before maintenance retries it
        — the refill analogue of ticket parking: a shard that keeps losing
        the budget race (e.g. because crash evictions re-opened a deficit
        faster than the budget closes it) stops consuming ordering slots
        every tick.  Any successful refill resets the shard's streak.  The
        deficit stays visible throughout — admission pricing reads it from
        the store, not from the sweep schedule.
        """
        excluded = set(self._excluded_shards())
        for s in maintain.deferred_shards:
            if s in excluded:
                continue  # skipped by us, not deferred by the budget
            streak = self._shard_defer_streak.get(s, 0) + 1
            self._shard_defer_streak[s] = streak
            if streak >= 2:
                self._shard_skip_until[s] = self._ticks + min(1 << (streak - 2), 8)
                self._refill_backoffs += 1
        for s in maintain.shards_refilled:
            self._shard_defer_streak.pop(s, None)
            self._shard_skip_until.pop(s, None)

    def _note_prefetch_demand(self) -> None:
        """Speculative prefetch: queue contents steer the maintenance order.

        The tickets still waiting in the tenant queues name exactly the
        shards the *next* cohorts will stitch through; feeding them to
        :meth:`~repro.engine.pool.PoolManager.note_demand` makes the
        deadline-budgeted maintain about to run warm those shards first,
        each queued walk weighted by its tenant's fair-share weight — the
        share of upcoming cohorts DRR will actually grant it.  Pure
        ordering pressure — the budget and refill amounts are untouched,
        and demand expires with the sweep, so a drained queue stops
        steering.
        """
        manager = self.engine.pool_manager
        if not self.policy.speculative_prefetch or manager is None or not self._has_queued():
            return
        for name, queue in self._queues.items():
            if not queue:
                continue
            shards = [
                manager.shard_of(s)
                for _, _, ticket_id in queue
                for s in self._tickets[ticket_id].request.sources
            ]
            manager.note_demand(shards, weight=self.tenants.get(name).weight)
            self._prefetch_noted += len(shards)

    def drain(self, *, max_ticks: int = 100_000) -> list[WalkTicket]:
        """Tick until the queues are empty; returns every completed ticket.

        Parked tickets count as queued work: drain keeps ticking (waiting
        simulated time toward scheduled recoveries when nothing else is
        serviceable) until every admitted ticket completes.  Throttled
        tenants make progress too — their buckets refill every tick, so a
        quota defers work, it never wedges the drain.  A parked ticket
        whose source will never recover surfaces as
        :class:`~repro.errors.WalkError` from the tick that tries it.
        """
        ticks = 0
        while self._has_queued() or self._parked:
            self.tick()
            ticks += 1
            if ticks >= max_ticks:
                raise WalkError(f"drain() exceeded {max_ticks} ticks (scheduler bug)")
        return [t for t in self._tickets.values() if t.status == DONE]

    # ------------------------------------------------------------------
    # Cohort servicing
    # ------------------------------------------------------------------
    def _ensure_pool(self, cohort: list[_CohortEntry]) -> None:
        """Warm a cold engine with the cohort-shaped k-enlarged λ policy.

        Preparation is session warm-up, not cohort work: Phase 1 charges to
        the usual ``"phase1"`` phase (its BFS to ``"serve/setup"``) and is
        excluded from the cohort's attributed delta, exactly like
        ``engine.prepare``.  λ comes from Theorem 2.8's ``Θ(√(kℓD) + k)``
        with k = the cohort's total walk count — the demand the scheduler
        actually sees.  When the policy says the naive regime wins (λ ≥ ℓ)
        no pool is installed and the cohort runs as merged parallel tails.
        """
        if self.engine.pool is not None:
            return
        net = self.engine.network
        assert self.root is not None  # _service_cohort pins it before calling
        with net.phase(SERVE_SETUP):
            tree = build_bfs_tree(
                net,
                self.root,
                cache=self.engine._tree_cache,
                allow_unreached=self.engine._faults is not None,
            )
        d_est = max(1, 2 * tree.height)
        k_total = sum(e.k for e in cohort)
        length_max = max(e.ticket.request.length for e in cohort)
        wants_paths = (
            self.engine._default_record_paths
            or self._trajectories_requested
            or any(e.ticket.request.record_paths for e in cohort)
        )
        params = many_walks_params(
            k_total,
            length_max,
            d_est,
            constant=self.engine.lambda_constant,
            eta=self.engine._default_eta,
            n=self.engine.graph.n,
        )
        if params.use_naive or params.lam >= length_max:
            return
        self.engine._install_pool(params.lam, params.eta, wants_paths, d_est)

    def _service_cohort(self, cohort: list[_CohortEntry]) -> int:
        """Serve one cohort as a single merged interleaved batch."""
        # The annotation context rides every phase span opened inside the
        # cohort (setup, sweeps, tails, reports) and names the cohort-level
        # delta's scope span; it costs nothing when tracing is off.
        with self.engine.obs.annotate(
            scope="cohort", cohort=self._cohorts, tick=self._ticks
        ):
            return self._service_cohort_impl(cohort)

    def _service_cohort_impl(self, cohort: list[_CohortEntry]) -> int:
        engine = self.engine
        net = engine.network
        if self.root is None:
            self.root = cohort[0].ticket.request.source
        self._ensure_pool(cohort)
        pool = engine.pool

        cohort_snapshot = net.ledger.capture()
        with net.phase(SERVE_SETUP):
            tree = build_bfs_tree(
                net,
                self.root,
                cache=engine._tree_cache,
                allow_unreached=engine._faults is not None,
            )

        # One slot per walk across every entry of the cohort (an entry is a
        # whole ticket, or one chunk of a walk-count-split one).  With no
        # pool (naive regime) nothing is ever active in the sweep loop and
        # all walks complete as one merged parallel-tail phase.
        slots: list[_WalkSlot] = []
        entry_slots: list[tuple[_CohortEntry, slice, bool]] = []
        for entry in cohort:
            ticket = entry.ticket
            req = ticket.request
            # submit() rejects trajectory requests a pathless pool cannot
            # serve, and a cold-engine trajectory wish makes _ensure_pool
            # prepare path-capable — but the engine owner can still swap in
            # a pathless pool (engine.prepare / a pooled query) between
            # submit and service, so re-enforce the contract here rather
            # than silently downgrade.  With NO pool (naive regime)
            # trajectories come straight from the merged tail phase.
            rp = bool(req.record_paths)
            if rp and pool is not None and not pool.record_paths:
                raise WalkError(
                    f"ticket {ticket.ticket_id} requested trajectories but the pool "
                    "was re-prepared with record_paths=False while it was queued"
                )
            # Under a fault controller, a path-recording pool tracks every
            # slot's trajectory even for endpoint-only tickets — crash
            # recovery truncates in-flight walks to their longest valid
            # prefix, which needs the prefix recorded.
            track = rp or (
                engine._faults is not None and pool is not None and pool.record_paths
            )
            start = len(slots)
            for s in req.sources[entry.start : entry.start + entry.k]:
                slots.append(
                    _WalkSlot(
                        source=int(s),
                        length=req.length,
                        record=rp,
                        current=int(s),
                        chunks=[np.array([s], dtype=np.int64)] if track else None,
                    )
                )
            entry_slots.append((entry, slice(start, len(slots)), rp))

        refill_calls = 0
        if pool is not None:
            refill_calls = engine._advance_interleaved(
                pool,
                slots,
                base_tree=tree,
                sample_phase=SERVE_SAMPLE,
                route_phase=SERVE_STITCH_ROUTE,
                refill_phase=POOL_REFILL_SERVE,
            )
            self._refill_calls += refill_calls

        pre_tails = [(slot.current, slot.remaining) for slot in slots]
        any_rp = any(slot.record for slot in slots)
        destinations, tail_paths = _parallel_tails(
            net, pre_tails, engine.rng, record_paths=any_rp, phase=SERVE_TAIL
        )

        pipelined = self.policy.pipelined_report
        if pipelined:
            # Cross-request pipelining: ONE shared convergecast carries the
            # whole cohort's reports in height + Σk − 1 rounds (vs. one
            # height + k wave per ticket), billed to the shared
            # "serve/report" phase and apportioned below like the sweeps.
            # A lone reporting entry has no pipelining partner: the helper
            # then bills the PR-3 height + k formula — the identical
            # charge, just on the shared phase instead of a private delta.
            report_ks = [e.k for e, _, _ in entry_slots if e.ticket.request.report_to_source]
            engine._report_convergecast(tree, report_ks, phase=SERVE_REPORT)

        # Per-entry private work + capture/delta accumulation into tickets;
        # completion fires when a ticket's last chunk lands.
        private_total = 0
        entry_private: list[int] = []
        finished: list[_CohortEntry] = []
        for entry, span, rp in entry_slots:
            ticket = entry.ticket
            req = ticket.request
            with engine.obs.annotate(
                scope="ticket", ticket=ticket.ticket_id, tenant=ticket.tenant
            ):
                snapshot = net.ledger.capture()
                if not pipelined and req.report_to_source:
                    # Pipelined destination→source convergecast on the shared
                    # tree, the PR-3 formula: O(height + k) per entry.
                    engine._report_convergecast(tree, [entry.k], phase=REPORT)
                delta = net.ledger.delta_since(snapshot)
            private_total += delta.rounds
            entry_private.append(delta.rounds)

            my_slots = slots[span]
            part = self._partials.setdefault(ticket.ticket_id, _Partial())
            part.destinations.extend(destinations[span])
            if rp:
                for slot, tail in zip(my_slots, tail_paths[span]):
                    assert tail is not None and slot.chunks is not None
                    part.trajectories.append(np.concatenate(slot.chunks + [tail]))
                    if len(part.trajectories[-1]) != req.length + 1:
                        raise WalkError("scheduled trajectory has wrong length")
            part.drew = part.drew or any(slot.draws for slot in my_slots)
            for name, rounds in delta.phase_rounds.items():
                part.phase_rounds[name] = part.phase_rounds.get(name, 0) + rounds

            owner = self.tenants.get(ticket.tenant)
            ticket.rounds += delta.rounds
            ticket.walks_served += entry.k
            ticket.cohorts += 1
            ticket.serviced_tick = self._ticks
            owner.walks_served += entry.k
            metrics = engine.obs.metrics
            if metrics is not None:
                metrics.counter("repro_walks_served_total", "Walks served, by tenant.").inc(
                    entry.k, tenant=ticket.tenant
                )
            if ticket.walks_served == req.k:
                part = self._partials.pop(ticket.ticket_id)
                ticket.result = ManyWalksResult(
                    sources=[int(s) for s in req.sources],
                    length=req.length,
                    destinations=part.destinations,
                    positions=part.trajectories if rp else None,
                    mode="scheduled",
                    rounds=ticket.rounds,
                    lam=pool.lam if pool is not None else 0,
                    phase_rounds=dict(part.phase_rounds),
                )
                ticket.status = DONE
                if pool is not None and part.drew:
                    pool.queries += 1
                engine._queries += 1
                owner.completed += 1
                finished.append(entry)

        # Apportion the cohort's shared rounds (sweeps, tails, refills,
        # setup, pipelined reports — everything not in a private delta) by
        # walk count, largest entries first for the remainder, so
        # attributed rounds sum EXACTLY to the cohort's ledger delta.
        # Recovery rounds billed mid-cohort ("serve/recovery": fault
        # cascades, slot truncation, idle waits) are session failure cost,
        # not request work — they stay out of attribution, extending the
        # ledger-balance identity to Σ per-tenant attributed + maintain +
        # churn + recovery = session delta.  Each tenant's quota bucket is
        # debited with exactly the rounds attributed to it here.
        cohort_delta = net.ledger.delta_since(cohort_snapshot)
        cohort_recovery = cohort_delta.phase_rounds.get(SERVE_RECOVERY, 0)
        shared = cohort_delta.rounds - private_total - cohort_recovery
        total_walks = len(slots)
        shares = [shared * e.k // total_walks for e, _, _ in entry_slots]
        remainder = shared - sum(shares)
        order = sorted(range(len(cohort)), key=lambda i: (-cohort[i].k, i))
        for j in range(remainder):
            shares[order[j % len(shares)]] += 1
        now = net.rounds
        done_now = {e.ticket.ticket_id for e in finished}
        metrics = engine.obs.metrics
        tracer = engine.obs.tracer
        for (entry, _, _), share, private in zip(entry_slots, shares, entry_private):
            ticket = entry.ticket
            attributed = private + share
            ticket.rounds_attributed += attributed
            owner = self.tenants.get(ticket.tenant)
            owner.rounds_attributed += attributed
            owner.debit(attributed)
            if tracer is not None:
                # The ticket's scope span carries only its private delta (0
                # under pipelined reports); the apportioned share exists
                # only here, so stamp it into the trace for the per-tenant
                # rollup of trace-report.
                tracer.instant(
                    "attribution",
                    net.ledger,
                    {"tenant": ticket.tenant, "ticket": ticket.ticket_id, "rounds": attributed},
                )
            if metrics is not None:
                metrics.counter(
                    "repro_rounds_attributed_total", "Cohort rounds attributed, by tenant."
                ).inc(attributed, tenant=ticket.tenant)
            if ticket.ticket_id in done_now:
                ticket.completed_round = now
                ticket.latency_rounds = now - ticket.submitted_round
                engine.obs.slo_record("complete", ticket.tenant, ticket.latency_rounds)
                if ticket.deadline_round is not None and now > ticket.deadline_round:
                    ticket.deadline_missed = True
                    owner.deadline_misses += 1
                    engine.obs.slo_record("deadline_miss", ticket.tenant)
                if metrics is not None:
                    metrics.counter(
                        "repro_tickets_completed_total", "Tickets completed, by tenant."
                    ).inc(1, tenant=ticket.tenant)
                    metrics.histogram(
                        "repro_ticket_latency_rounds",
                        "Submit-to-complete latency in simulated rounds, by tenant.",
                    ).observe(ticket.latency_rounds, tenant=ticket.tenant)
                    metrics.histogram(
                        "repro_ticket_service_rounds",
                        "Attributed service rounds per completed ticket, by tenant.",
                    ).observe(ticket.rounds_attributed, tenant=ticket.tenant)
        return refill_calls

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _tenant_total(self, field: str) -> int:
        """Session total derived from the per-tenant counters (single home).

        Every ticket has an owner (the default tenant included), so the
        per-tenant counters ARE the session counters; deriving the totals
        here instead of double-incrementing scalars removes the telemetry
        duplication the obs layer cross-checks against.
        """
        return sum(getattr(t, field) for t in self.tenants.tenants.values())

    def _emit_tick_metrics(self) -> None:
        """Per-tick gauges: queue depth and tenant fairness deviation."""
        metrics = self.engine.obs.metrics
        if metrics is None:
            return
        metrics.counter("repro_ticks_total", "Scheduler ticks run.").inc(1)
        metrics.gauge(
            "repro_queue_depth", "Queued + parked tickets (admission-bound depth)."
        ).set(self.queue_depth)
        tenants = self.tenants.tenants
        total = sum(t.rounds_attributed for t in tenants.values())
        weight_sum = sum(t.weight for t in tenants.values())
        if total > 0 and weight_sum > 0:
            gauge = metrics.gauge(
                "repro_tenant_fairness_dev",
                "Relative deviation of a tenant's attributed-rounds share "
                "from its weight share (signed).",
            )
            for name, t in tenants.items():
                target = t.weight / weight_sum
                if target > 0:
                    gauge.set(t.rounds_attributed / total / target - 1.0, tenant=name)

    def stats(self) -> SchedulerStats:
        """Scheduler telemetry; also surfaced via ``engine.stats().serve``."""
        ledger = self.engine.network.ledger
        done = [t for t in self._tickets.values() if t.status == DONE]
        attributed = [t.rounds_attributed for t in done]
        latencies = [t.latency_rounds for t in done if t.latency_rounds is not None]
        faults = self.engine._faults
        return SchedulerStats(
            submitted=self._tenant_total("submitted"),
            admitted=self._tenant_total("admitted"),
            rejected=self._tenant_total("rejected"),
            completed=self._tenant_total("completed"),
            deadline_misses=self._tenant_total("deadline_misses"),
            queue_depth=self.queue_depth,
            ticks=self._ticks,
            cohorts=self._cohorts,
            walks_served=self._tenant_total("walks_served"),
            refill_calls=self._refill_calls,
            p50_rounds_per_request=_percentile(attributed, 50),
            p99_rounds_per_request=_percentile(attributed, 99),
            p50_latency_rounds=_percentile(latencies, 50),
            p99_latency_rounds=_percentile(latencies, 99),
            serve_rounds=ledger.phase_total(SERVE_FAMILY),
            serve_refill_rounds=ledger.phase_rounds(POOL_REFILL_SERVE),
            maintain_rounds=ledger.phase_rounds(POOL_REFILL_MAINTAIN),
            rejects_by_reason=dict(self._rejects_by_reason),
            prefetch_shards_noted=self._prefetch_noted,
            crashes_seen=faults.crashes_seen if faults is not None else 0,
            recoveries_seen=faults.recoveries_seen if faults is not None else 0,
            walks_recovered=faults.walks_recovered if faults is not None else 0,
            walks_restarted=faults.walks_restarted if faults is not None else 0,
            recovery_rounds=ledger.phase_rounds(SERVE_RECOVERY),
            ticket_retries=self._ticket_retries,
            backoff_waits=faults.backoff_waits if faults is not None else 0,
            refill_backoffs=self._refill_backoffs,
            tenants=self.tenants.stats(),
            cohort_splits=self._cohort_splits,
            throttled_ticks=self._tenant_total("throttled_ticks"),
        )

    def __repr__(self) -> str:
        return (
            f"WalkScheduler(queue={self.queue_depth}, "
            f"submitted={self._tenant_total('submitted')}, "
            f"completed={self._tenant_total('completed')}, "
            f"rejected={self._tenant_total('rejected')}, "
            f"tenants={len(self.tenants)}, ticks={self._ticks})"
        )
