"""Synthetic traffic for the serving subsystem.

Two classic load-generation disciplines drive a
:class:`~repro.serve.scheduler.WalkScheduler`:

* **Open loop** (:func:`run_open_loop`) — arrivals are exogenous: a
  Poisson number of requests lands every scheduling tick regardless of
  how the scheduler is coping.  This is the overload model: when the
  offered rate outruns service capacity the queue grows until admission
  control starts shedding (``"queue-full"`` rejections), which is exactly
  what the telemetry should show.
* **Closed loop** (:func:`run_closed_loop`) — a fixed population of
  ``concurrency`` clients each keeps exactly one request outstanding and
  submits the next only when the previous completes.  Offered load adapts
  to service speed, so closed-loop runs measure latency at a controlled
  multiprogramming level.

Both disciplines draw i.i.d. requests from a :class:`TrafficSpec` — a
hot/cold source mixture (the adversarial shape of the PR-3 fairness
tests), a walk-length menu, and a batch-width menu — and return every
ticket so callers can slice outcomes by class (hot vs. cold, deadline
hit vs. miss).  A spec may carry a ``tenant`` tag; the multi-tenant
composite (:func:`run_tenant_loop`) drives one tagged spec per tenant
through a shared scheduler so weighted-fair admission and quotas can be
observed per client.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WalkError
from repro.serve.model import DONE, WalkTicket
from repro.serve.scheduler import WalkScheduler

__all__ = [
    "TrafficSpec",
    "run_closed_loop",
    "run_fault_loop",
    "run_open_loop",
    "run_tenant_loop",
    "sample_request_args",
]


@dataclass(frozen=True)
class TrafficSpec:
    """Distribution of one synthetic request stream.

    ``hot_fraction`` of requests aim every walk at ``hot_source``; the
    rest draw sources uniformly from ``[0, n)``.  ``lengths`` / ``ks``
    are uniform menus for walk length and batch width.  ``deadline`` (a
    round budget) and ``priority`` are applied verbatim to every request;
    ``None`` deadline defers to the scheduler policy's default.
    ``tenant`` tags every request with a client name (``None`` → the
    scheduler's default tenant), which is how a stream lands on its
    weight and quota bucket in a multi-tenant scheduler.
    """

    n: int
    lengths: tuple[int, ...] = (256,)
    ks: tuple[int, ...] = (1,)
    hot_fraction: float = 0.0
    hot_source: int = 0
    deadline: int | None = None
    priority: int = 0
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise WalkError("TrafficSpec.n must be >= 1")
        if not self.lengths or not self.ks:
            raise WalkError("TrafficSpec needs at least one length and one k")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise WalkError("hot_fraction must be in [0, 1]")
        if not 0 <= self.hot_source < self.n:
            raise WalkError("hot_source out of range")


def sample_request_args(spec: TrafficSpec, rng: np.random.Generator) -> dict:
    """Draw one request's ``submit`` kwargs from the spec."""
    k = int(spec.ks[rng.integers(len(spec.ks))])
    length = int(spec.lengths[rng.integers(len(spec.lengths))])
    if spec.hot_fraction > 0 and rng.random() < spec.hot_fraction:
        sources = [spec.hot_source] * k
    else:
        sources = [int(s) for s in rng.integers(spec.n, size=k)]
    return {
        "sources": sources,
        "length": length,
        "deadline": spec.deadline,
        "priority": spec.priority,
        "tenant": spec.tenant,
    }


def run_open_loop(
    scheduler: WalkScheduler,
    spec: TrafficSpec,
    rng: np.random.Generator,
    *,
    rate: float,
    ticks: int,
    drain: bool = True,
) -> list[WalkTicket]:
    """Poisson arrivals at ``rate`` requests per scheduling tick.

    Each tick first submits ``Poisson(rate)`` fresh requests (rejections
    land in the returned tickets too — they are outcomes), then runs one
    scheduling round.  With ``drain`` the backlog is serviced to empty
    after arrivals stop, so the returned tickets are all terminal.
    """
    if rate < 0:
        raise WalkError("rate must be >= 0")
    if ticks < 1:
        raise WalkError("ticks must be >= 1")
    tickets: list[WalkTicket] = []
    for _ in range(ticks):
        for _ in range(int(rng.poisson(rate))):
            args = sample_request_args(spec, rng)
            tickets.append(scheduler.submit(**args))
        scheduler.tick()
    if drain:
        scheduler.drain()
    return tickets


def run_closed_loop(
    scheduler: WalkScheduler,
    spec: TrafficSpec,
    rng: np.random.Generator,
    *,
    concurrency: int,
    total: int,
) -> list[WalkTicket]:
    """``concurrency`` clients, each with one outstanding request.

    Submits up to ``total`` requests overall; a client whose request
    completes (or is rejected at admission) immediately submits the next.
    Returns when every submitted request is terminal.
    """
    if concurrency < 1:
        raise WalkError("concurrency must be >= 1")
    if total < 1:
        raise WalkError("total must be >= 1")
    tickets: list[WalkTicket] = []

    def outstanding() -> int:
        return sum(1 for t in tickets if t.status not in (DONE,) and t.reject_reason is None)

    while len(tickets) < total or outstanding():
        while len(tickets) < total and outstanding() < concurrency:
            args = sample_request_args(spec, rng)
            tickets.append(scheduler.submit(**args))
        scheduler.tick()
    return tickets


def run_fault_loop(
    scheduler: WalkScheduler,
    spec: TrafficSpec,
    rng: np.random.Generator,
    *,
    crash_rate: float,
    recover_after: int = 256,
    ticks: int,
    rate: float = 1.0,
    fault_seed=None,
    drain: bool = True,
) -> list[WalkTicket]:
    """Open-loop traffic over a crash/recover fault schedule.

    The robustness workload: before any traffic flows, a dry run of the
    same arrival pattern on a throwaway engine measures how many
    simulated rounds the healthy run spans; a
    :class:`~repro.congest.faults.FaultSchedule` with
    ``ceil(crash_rate · n)`` connectivity-preserving crash events (each
    victim recovering ``recover_after`` rounds later) is then sampled
    over that window, attached to the real engine, and the identical
    arrival stream replays over the failures.  Every admitted ticket
    still completes — deadline misses are counted, requests are never
    dropped.  Returns all tickets (terminal when ``drain``).

    Mirrors :func:`repro.dynamic.workload.run_churn_loop`'s shape so
    benches can sweep ``crash_rate`` the way they sweep churn rate.
    """
    if crash_rate < 0:
        raise WalkError("crash_rate must be >= 0")
    if ticks < 1:
        raise WalkError("ticks must be >= 1")
    engine = scheduler.engine
    start = engine.network.rounds
    # One arrival seed drives both the sizing probe and the real run, so
    # the submissions replay identically over the fault schedule.
    arrival_seed = int(rng.integers(2**63))
    if crash_rate > 0:
        from repro.congest.faults import FaultSchedule

        probe_engine = type(engine)(engine.graph, seed=2, record_paths=False)
        probe_sched = type(scheduler)(probe_engine, policy=scheduler.policy)
        run_open_loop(
            probe_sched,
            spec,
            np.random.default_rng(arrival_seed),
            rate=rate,
            ticks=ticks,
            drain=drain,
        )
        span = max(2, probe_engine.network.rounds)
        crashes = max(1, int(np.ceil(crash_rate * engine.graph.n)))
        schedule = FaultSchedule.sample(
            engine.graph,
            crashes=crashes,
            start_round=start + 1,
            end_round=start + span,
            recover_after=recover_after,
            seed=fault_seed,
        )
        engine.attach_faults(schedule)
    return run_open_loop(
        scheduler,
        spec,
        np.random.default_rng(arrival_seed),
        rate=rate,
        ticks=ticks,
        drain=drain,
    )


def run_tenant_loop(
    scheduler: WalkScheduler,
    specs: list[TrafficSpec],
    rng: np.random.Generator,
    *,
    rate: float,
    ticks: int,
    drain: bool = True,
) -> dict[str, list[WalkTicket]]:
    """Open-loop Poisson traffic from several tenants through one scheduler.

    Each spec is one tenant's stream (its ``tenant`` tag routes it to the
    matching weight/quota bucket; an untagged spec rides the default
    tenant) and every tick submits ``Poisson(rate)`` requests *per spec*,
    in spec order, before running one scheduling round — so all tenants
    offer the same load and the scheduler's weighted-fair admission, not
    arrival luck, decides the service split.  Returns the tickets keyed
    by tenant name so callers can compare attributed rounds, misses, and
    throttling per client.
    """
    if rate < 0:
        raise WalkError("rate must be >= 0")
    if ticks < 1:
        raise WalkError("ticks must be >= 1")
    if not specs:
        raise WalkError("run_tenant_loop needs at least one TrafficSpec")
    from repro.serve.tenants import DEFAULT_TENANT

    tickets: dict[str, list[WalkTicket]] = {}
    for _ in range(ticks):
        for spec in specs:
            name = spec.tenant if spec.tenant is not None else DEFAULT_TENANT
            bucket = tickets.setdefault(name, [])
            for _ in range(int(rng.poisson(rate))):
                args = sample_request_args(spec, rng)
                bucket.append(scheduler.submit(**args))
        scheduler.tick()
    if drain:
        scheduler.drain()
    return tickets
