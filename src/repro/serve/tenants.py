"""Multi-tenant accounting for the serving tier: weights, quotas, telemetry.

The scheduler (PR 4) serves one anonymous request stream; production
traffic means many *clients* sharing one engine session, which is exactly
the regime arXiv:1201.1363's serving model frames (many concurrent walk
samples powering token management and load balancing across users).  This
module holds the per-client state the scheduler needs to share the session
fairly:

* :class:`Tenant` — one client's policy and telemetry: a **weight** (its
  fair share of service), an optional per-tick round **quota** (a token
  bucket refilled every scheduler tick and debited with the tenant's
  *attributed* rounds off the shared :class:`~repro.congest.ledger.
  RoundLedger` — a tenant that overdraws its bucket is throttled, its
  queued work deferred until refills cover the debt, never dropped), and
  the per-tenant counters the ``stats()`` surfaces report.
* :class:`TenantRegistry` — the ordered collection of tenants one
  scheduler serves.  Registration order is load-bearing: it is the
  deficit-round-robin visit order during cohort formation, which together
  with the per-tenant (priority, deadline, submit-order) heaps makes the
  whole multi-tenant schedule a documented total order — fixed seeds
  replay bit-identically (see
  :meth:`~repro.serve.scheduler.WalkScheduler._form_cohort`).

The fairness contract lives in the scheduler; the registry only prices and
records.  Under saturating load, deficit-round-robin serves walk counts
proportional to weights, and since cohort attribution apportions shared
rounds by walk count, **attributed rounds per tenant track weights** —
the acceptance shape ``tests/test_tenants.py`` pins at 1:2:4.  The ledger
identity extends per tenant: Σ over tenants of attributed rounds, plus
maintain + churn + recovery, equals the session ledger delta exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.engine.model import _jsonify
from repro.errors import WalkError

__all__ = ["DEFAULT_TENANT", "Tenant", "TenantRegistry"]

#: Tenant every untagged ``submit`` lands on — one anonymous stream, the
#: PR-4 behavior (a single tenant degenerates deficit-round-robin into the
#: plain (priority, deadline, FIFO) heap order).
DEFAULT_TENANT = "default"


@dataclass
class Tenant:
    """One client of the serving tier: fair-share policy plus telemetry.

    ``weight`` scales the tenant's deficit-round-robin quantum — under
    saturating load its long-run share of served walks (and therefore of
    attributed rounds) is ``weight / Σ weights``.  ``quota`` is the round
    allowance added to the tenant's token bucket every scheduler tick
    (``None`` = unmetered); ``burst`` caps how much unspent allowance may
    bank (default ``4·quota``).  The bucket is debited with the tenant's
    attributed rounds — its exact share of the session ledger — so a
    tenant that spends faster than its refill goes negative and is
    *throttled*: its queued tickets are skipped by cohort formation until
    refills pay off the debt.  Throttling defers, it never drops.
    """

    name: str
    weight: float = 1.0
    quota: int | None = None
    burst: int | None = None
    #: Current token-bucket balance (rounds).  May go negative: a cohort's
    #: debit is exact, not pre-checked, so an expensive cohort leaves debt
    #: the following refills amortize.
    balance: float = 0.0
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    walks_served: int = 0
    #: This tenant's share of the session ledger: private report rounds
    #: plus apportioned cohort shares, summed over its tickets (including
    #: partially-served split tickets).
    rounds_attributed: int = 0
    deadline_misses: int = 0
    #: Ticks on which this tenant had queued work but a non-positive
    #: bucket balance kept it out of cohort formation.
    throttled_ticks: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WalkError(f"tenant {self.name!r}: weight must be > 0, got {self.weight}")
        if self.quota is not None and self.quota < 1:
            raise WalkError(f"tenant {self.name!r}: quota must be >= 1 round per tick")
        if self.burst is not None and self.quota is None:
            raise WalkError(f"tenant {self.name!r}: burst without a quota is meaningless")
        if self.quota is not None:
            self.balance = float(self.quota)

    @property
    def burst_cap(self) -> float:
        """Bucket ceiling: explicit ``burst``, else ``4·quota``."""
        assert self.quota is not None
        return float(self.burst if self.burst is not None else 4 * self.quota)

    @property
    def throttled(self) -> bool:
        """True when the bucket is overdrawn (quota tenants only)."""
        return self.quota is not None and self.balance <= 0

    def refill(self) -> None:
        """One scheduler tick's allowance, capped at the burst ceiling."""
        if self.quota is not None:
            self.balance = min(self.balance + self.quota, self.burst_cap)

    def debit(self, rounds: int) -> None:
        """Charge attributed rounds against the bucket (may overdraw)."""
        if self.quota is not None:
            self.balance -= rounds

    def to_dict(self) -> dict:
        return _jsonify(dataclasses.asdict(self))


@dataclass
class TenantRegistry:
    """Ordered tenant collection of one scheduler.

    ``order`` (registration order) is the deficit-round-robin visit order
    — a documented, replayable total order, not an implementation detail.
    Untagged submissions auto-register :data:`DEFAULT_TENANT` with weight
    1 and no quota, so a registry-less scheduler is exactly the PR-4
    single-stream scheduler.
    """

    tenants: dict[str, Tenant] = field(default_factory=dict)

    @property
    def order(self) -> list[str]:
        """Tenant names in registration order (dicts preserve insertion)."""
        return list(self.tenants)

    def register(
        self,
        name: str,
        *,
        weight: float = 1.0,
        quota: int | None = None,
        burst: int | None = None,
    ) -> Tenant:
        if name in self.tenants:
            raise WalkError(f"tenant {name!r} is already registered")
        tenant = Tenant(name=name, weight=weight, quota=quota, burst=burst)
        self.tenants[name] = tenant
        return tenant

    def ensure(self, name: str) -> Tenant:
        """Fetch a tenant, auto-registering unknown names at weight 1."""
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = self.register(name)
        return tenant

    def get(self, name: str) -> Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            raise WalkError(f"unknown tenant {name!r}") from None

    def refill(self) -> None:
        """Per-tick token-bucket refill for every quota tenant."""
        for tenant in self.tenants.values():
            tenant.refill()

    def stats(self) -> dict[str, dict]:
        """Per-tenant telemetry keyed by name, in registration order."""
        return {name: t.to_dict() for name, t in self.tenants.items()}

    @classmethod
    def parse(cls, spec: str) -> TenantRegistry:
        """Build a registry from a CLI spec: ``name:weight:quota[,...]``.

        ``quota`` of ``0`` (or ``-``) means unmetered.  Example::

            TenantRegistry.parse("alice:1:0,bob:2:0,carol:4:2000")
        """
        registry = cls()
        for triple in spec.split(","):
            parts = triple.strip().split(":")
            if len(parts) != 3 or not parts[0]:
                raise WalkError(
                    f"bad tenant triple {triple!r}: expected name:weight:quota "
                    "(quota 0 = unmetered)"
                )
            name, weight_s, quota_s = parts
            try:
                weight = float(weight_s)
                quota = None if quota_s in ("0", "-") else int(quota_s)
            except ValueError as exc:
                raise WalkError(f"bad tenant triple {triple!r}: {exc}") from None
            registry.register(name, weight=weight, quota=quota)
        return registry

    def __len__(self) -> int:
        return len(self.tenants)
