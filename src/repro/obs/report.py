"""Trace summarization behind ``python -m repro trace-report``.

Loads either export format (Chrome trace-event JSON or span JSONL) back
into span dicts and rolls them up three ways: top phases by exclusive
rounds, a per-tenant flame rollup over request scopes, and the
critical-path cohort (the single most expensive cohort scope — the first
place to look when P99 moves).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["format_report", "load_spans", "summarize"]


def _span_from_chrome_event(event: dict) -> dict | None:
    ph = event.get("ph")
    if ph not in ("X", "i"):
        return None
    args = dict(event.get("args", {}))
    rounds = int(event.get("dur", 0))
    return {
        "cat": event.get("cat", "instant" if ph == "i" else "phase"),
        "name": event.get("name", "?"),
        "start_round": int(event.get("ts", 0)),
        "end_round": int(event.get("ts", 0)) + rounds,
        "rounds": rounds,
        "self_rounds": int(args.pop("self_rounds", rounds)),
        "messages": int(args.pop("messages", 0)),
        "congestion": int(args.pop("congestion", 0)),
        "args": args,
    }


def load_spans(path: str | Path) -> list[dict]:
    """Read a trace file (Chrome JSON or JSONL) back into span dicts."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "traceEvents" in data:
        spans = [_span_from_chrome_event(ev) for ev in data["traceEvents"]]
        return [s for s in spans if s is not None]
    if isinstance(data, list):  # a bare list of span dicts
        return [dict(s) for s in data]
    # JSONL: one span dict per line
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def summarize(spans: list[dict], top: int = 10) -> dict:
    """Roll a span list up into the trace-report structure."""
    phase_agg: dict[str, dict] = {}
    tenant_agg: dict[str, dict] = {}
    critical: dict | None = None
    instants: dict[str, int] = {}
    for span in spans:
        cat = span.get("cat", "phase")
        args = span.get("args", {})
        if cat == "phase":
            cell = phase_agg.setdefault(
                span["name"], {"spans": 0, "rounds": 0, "self_rounds": 0, "messages": 0}
            )
            cell["spans"] += 1
            cell["rounds"] += span.get("rounds", 0)
            cell["self_rounds"] += span.get("self_rounds", span.get("rounds", 0))
            cell["messages"] += span.get("messages", 0)
        elif cat == "scope":
            tenant = str(args.get("tenant", "")) or None
            if tenant is not None:
                cell = tenant_agg.setdefault(
                    tenant, {"scopes": 0, "rounds": 0, "attributed": 0}
                )
                cell["scopes"] += 1
                cell["rounds"] += span.get("rounds", 0)
            if "cohort" in args and (
                critical is None or span.get("rounds", 0) > critical["rounds"]
            ):
                critical = {
                    "name": span.get("name", "?"),
                    "cohort": args.get("cohort"),
                    "rounds": span.get("rounds", 0),
                    "start_round": span.get("start_round", 0),
                    "args": dict(args),
                }
        elif cat == "instant":
            instants[span["name"]] = instants.get(span["name"], 0) + 1
            # The scheduler stamps apportioned cohort shares as
            # "attribution" instants — the tenant rollup's real signal
            # (scope deltas are private work only, 0 under pipelining).
            if span["name"] == "attribution" and args.get("tenant"):
                cell = tenant_agg.setdefault(
                    str(args["tenant"]), {"scopes": 0, "rounds": 0, "attributed": 0}
                )
                cell["attributed"] += int(args.get("rounds", 0))
    phases = sorted(
        ({"name": name, **cell} for name, cell in phase_agg.items()),
        key=lambda row: (-row["self_rounds"], row["name"]),
    )
    return {
        "span_count": len(spans),
        "total_self_rounds": sum(c["self_rounds"] for c in phase_agg.values()),
        "phases": phases[:top],
        "tenants": {
            name: tenant_agg[name] for name in sorted(tenant_agg)
        },
        "critical_cohort": critical,
        "events": dict(sorted(instants.items())),
    }


def format_report(summary: dict) -> str:
    """Render a summary dict as the human-readable trace report."""
    lines = [
        f"trace-report: {summary['span_count']} spans, "
        f"{summary['total_self_rounds']} attributed rounds",
        "",
        "top phases (by exclusive rounds):",
    ]
    if summary["phases"]:
        width = max(len(row["name"]) for row in summary["phases"])
        for row in summary["phases"]:
            lines.append(
                f"  {row['name']:<{width}}  self {row['self_rounds']:>8}  "
                f"incl {row['rounds']:>8}  msgs {row['messages']:>8}  x{row['spans']}"
            )
    else:
        lines.append("  (no phase spans)")
    if summary["tenants"]:
        lines.append("")
        lines.append("per-tenant rollup (attributed rounds):")
        shown = {
            name: cell.get("attributed", 0) or cell["rounds"]
            for name, cell in summary["tenants"].items()
        }
        total = sum(shown.values()) or 1
        for name, cell in summary["tenants"].items():
            lines.append(
                f"  {name:>10}  rounds {shown[name]:>8} ({shown[name] / total:5.1%})"
                f"  scopes {cell['scopes']}"
            )
    critical = summary.get("critical_cohort")
    if critical:
        lines.append("")
        lines.append(
            f"critical-path cohort: #{critical['cohort']} — {critical['rounds']} rounds "
            f"starting at round {critical['start_round']}"
        )
    if summary.get("events"):
        lines.append("")
        lines.append(
            "events: "
            + ", ".join(f"{name} x{n}" for name, n in summary["events"].items())
        )
    return "\n".join(lines)
