"""Trace summarization behind ``python -m repro trace-report``.

Loads either export format (Chrome trace-event JSON or span JSONL) back
into span dicts and rolls them up three ways: top phases by exclusive
rounds, a per-tenant flame rollup over request scopes, and the
critical-path cohort (the single most expensive cohort scope — the first
place to look when P99 moves).

Sibling-sink exports ride along: a ``--metrics`` snapshot (the
``MetricsRegistry.snapshot()`` JSON) adds an SLO/alert summary section,
and a ``--heatmap`` export (``HeatmapSink.to_json()``) adds the hot-edge
cartography section — one report covering all three files.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "format_report",
    "load_metrics",
    "load_spans",
    "summarize",
    "summarize_metrics",
]


def _span_from_chrome_event(event: dict) -> dict | None:
    ph = event.get("ph")
    if ph not in ("X", "i"):
        return None
    args = dict(event.get("args", {}))
    rounds = int(event.get("dur", 0))
    return {
        "cat": event.get("cat", "instant" if ph == "i" else "phase"),
        "name": event.get("name", "?"),
        "start_round": int(event.get("ts", 0)),
        "end_round": int(event.get("ts", 0)) + rounds,
        "rounds": rounds,
        "self_rounds": int(args.pop("self_rounds", rounds)),
        "messages": int(args.pop("messages", 0)),
        "congestion": int(args.pop("congestion", 0)),
        "args": args,
    }


def load_spans(path: str | Path) -> list[dict]:
    """Read a trace file (Chrome JSON or JSONL) back into span dicts."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "traceEvents" in data:
        spans = [_span_from_chrome_event(ev) for ev in data["traceEvents"]]
        return [s for s in spans if s is not None]
    if isinstance(data, list):  # a bare list of span dicts
        return [dict(s) for s in data]
    # JSONL: one span dict per line
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def load_metrics(path: str | Path) -> dict:
    """Read a ``MetricsRegistry.snapshot()`` JSON file back into a dict."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a metrics snapshot (expected a JSON object)")
    return data


def _series(snapshot: dict, name: str) -> list[dict]:
    family = snapshot.get(name)
    if not isinstance(family, dict):
        return []
    series = family.get("series")
    if isinstance(series, list):
        return series
    # Older snapshots only carry the flat "k=v,..."-keyed mapping.
    out = []
    for labelstr, value in family.get("values", {}).items():
        labels = dict(
            pair.split("=", 1) for pair in labelstr.split(",") if "=" in pair
        )
        out.append({"labels": labels, "value": value})
    return out


def summarize_metrics(snapshot: dict) -> dict:
    """Pull the serving/SLO signal out of a metrics snapshot."""
    alerts = {
        row["labels"].get("kind", "?"): row["value"]
        for row in _series(snapshot, "repro_slo_alerts_total")
    }
    events = {
        row["labels"].get("kind", "?"): row["value"]
        for row in _series(snapshot, "repro_events_total")
        if str(row["labels"].get("kind", "")).startswith("slo-")
    }
    dropped = 0
    for row in _series(snapshot, "repro_trace_spans_dropped"):
        dropped = max(dropped, int(row["value"]))
    return {
        "families": len(snapshot),
        "alerts": alerts,
        "slo_events": events,
        "spans_dropped": dropped,
    }


def summarize(spans: list[dict], top: int = 10) -> dict:
    """Roll a span list up into the trace-report structure."""
    phase_agg: dict[str, dict] = {}
    tenant_agg: dict[str, dict] = {}
    critical: dict | None = None
    instants: dict[str, int] = {}
    for span in spans:
        cat = span.get("cat", "phase")
        args = span.get("args", {})
        if cat == "phase":
            cell = phase_agg.setdefault(
                span["name"], {"spans": 0, "rounds": 0, "self_rounds": 0, "messages": 0}
            )
            cell["spans"] += 1
            cell["rounds"] += span.get("rounds", 0)
            cell["self_rounds"] += span.get("self_rounds", span.get("rounds", 0))
            cell["messages"] += span.get("messages", 0)
        elif cat == "scope":
            tenant = str(args.get("tenant", "")) or None
            if tenant is not None:
                cell = tenant_agg.setdefault(
                    tenant, {"scopes": 0, "rounds": 0, "attributed": 0}
                )
                cell["scopes"] += 1
                cell["rounds"] += span.get("rounds", 0)
            if "cohort" in args and (
                critical is None or span.get("rounds", 0) > critical["rounds"]
            ):
                critical = {
                    "name": span.get("name", "?"),
                    "cohort": args.get("cohort"),
                    "rounds": span.get("rounds", 0),
                    "start_round": span.get("start_round", 0),
                    "args": dict(args),
                }
        elif cat == "instant":
            instants[span["name"]] = instants.get(span["name"], 0) + 1
            # The scheduler stamps apportioned cohort shares as
            # "attribution" instants — the tenant rollup's real signal
            # (scope deltas are private work only, 0 under pipelining).
            if span["name"] == "attribution" and args.get("tenant"):
                cell = tenant_agg.setdefault(
                    str(args["tenant"]), {"scopes": 0, "rounds": 0, "attributed": 0}
                )
                cell["attributed"] += int(args.get("rounds", 0))
    phases = sorted(
        ({"name": name, **cell} for name, cell in phase_agg.items()),
        key=lambda row: (-row["self_rounds"], row["name"]),
    )
    return {
        "span_count": len(spans),
        "total_self_rounds": sum(c["self_rounds"] for c in phase_agg.values()),
        "phases": phases[:top],
        "tenants": {
            name: tenant_agg[name] for name in sorted(tenant_agg)
        },
        "critical_cohort": critical,
        "events": dict(sorted(instants.items())),
    }


def format_report(summary: dict, *, metrics: dict | None = None, heatmap: dict | None = None) -> str:
    """Render a summary dict as the human-readable trace report.

    ``metrics`` is an optional ``MetricsRegistry.snapshot()`` dict (adds
    the SLO/alert section); ``heatmap`` an optional ``HeatmapSink``
    summary dict (adds the congestion-cartography section).
    """
    lines = [
        f"trace-report: {summary['span_count']} spans, "
        f"{summary['total_self_rounds']} attributed rounds",
        "",
        "top phases (by exclusive rounds):",
    ]
    if summary["phases"]:
        width = max(len(row["name"]) for row in summary["phases"])
        for row in summary["phases"]:
            lines.append(
                f"  {row['name']:<{width}}  self {row['self_rounds']:>8}  "
                f"incl {row['rounds']:>8}  msgs {row['messages']:>8}  x{row['spans']}"
            )
    else:
        lines.append("  (no phase spans)")
    if summary["tenants"]:
        lines.append("")
        lines.append("per-tenant rollup (attributed rounds):")
        shown = {
            name: cell.get("attributed", 0) or cell["rounds"]
            for name, cell in summary["tenants"].items()
        }
        total = sum(shown.values()) or 1
        for name, cell in summary["tenants"].items():
            lines.append(
                f"  {name:>10}  rounds {shown[name]:>8} ({shown[name] / total:5.1%})"
                f"  scopes {cell['scopes']}"
            )
    critical = summary.get("critical_cohort")
    if critical:
        lines.append("")
        lines.append(
            f"critical-path cohort: #{critical['cohort']} — {critical['rounds']} rounds "
            f"starting at round {critical['start_round']}"
        )
    if summary.get("events"):
        lines.append("")
        lines.append(
            "events: "
            + ", ".join(f"{name} x{n}" for name, n in summary["events"].items())
        )
    if metrics is not None:
        rolled = summarize_metrics(metrics)
        lines.append("")
        lines.append(f"metrics snapshot: {rolled['families']} families")
        if rolled["alerts"]:
            lines.append(
                "  slo alerts: "
                + ", ".join(
                    f"{kind} x{int(n)}" for kind, n in sorted(rolled["alerts"].items())
                )
            )
        else:
            lines.append("  slo alerts: none")
        if rolled["spans_dropped"]:
            lines.append(f"  tracer spans dropped: {rolled['spans_dropped']}")
    if heatmap is not None:
        lines.extend(_heatmap_lines(heatmap))
    return "\n".join(lines)


def _heatmap_lines(heatmap: dict) -> list[str]:
    lines = ["", "congestion cartography:"]
    messages = heatmap.get("messages", 0)
    located = heatmap.get("located_messages", 0)
    lines.append(
        f"  located {located}/{messages} charged messages"
        f" ({located / max(1, messages):.1%}) on {heatmap.get('n_slots', 0)} edge slots;"
        f" retired {heatmap.get('retired_messages', 0)},"
        f" residual {heatmap.get('residual_messages', 0)};"
        f" max edge congestion {heatmap.get('max_edge_congestion', 0)}"
    )
    rate = heatmap.get("utilization", {}).get("*total*")
    if rate is not None:
        lines.append(f"  attributed messages per round: {rate}")
    top_edges = heatmap.get("top_edges", [])
    if top_edges:
        lines.append("  hottest edges:")
        for row in top_edges[:5]:
            lines.append(
                f"    {row['src']:>5} -> {row['dst']:<5}"
                f"  msgs {row['messages']:>8}  cmax {row['max_congestion']}"
            )
    top_nodes = heatmap.get("top_nodes", [])
    if top_nodes:
        lines.append("  hottest nodes:")
        for row in top_nodes[:5]:
            lines.append(f"    {row['node']:>5}  msgs {row['messages']:>8}")
    return lines
