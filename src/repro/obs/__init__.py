"""repro.obs — passive observability over the simulated-round timeline.

Round-accurate span tracing (:class:`Tracer` → Chrome trace / JSONL), a
deterministic metrics registry (:class:`MetricsRegistry` → Prometheus
text), per-edge congestion cartography (:class:`HeatmapSink`), a
streaming SLO monitor (:class:`SloMonitor` over :class:`SlidingWindow`
percentile digests), and the zero-cost-when-off :class:`Probe`
indirection that the ledger, engine, scheduler, fault, and churn layers
all report through::

    engine = WalkEngine(graph, seed=7)
    tracer, metrics = Tracer(), MetricsRegistry()
    heatmap = HeatmapSink()
    slo = SloMonitor(specs=[SloSpec.parse("name=lat,metric=latency,target=2000")])
    engine.attach_observability(
        tracer=tracer, metrics=metrics, heatmap=heatmap, slo=slo
    )
    ...  # serve traffic as usual — bit-identical to the unobserved run
    tracer.write("trace.json", extra_events=heatmap.counter_events())
    metrics.write("metrics.prom")  # or metrics.json for the snapshot
    heatmap.write("heatmap.json")

The observer is strictly passive: it never charges the ledger and never
touches an RNG (enforced statically by the ``obs-passivity`` analyzer
rule), so golden ledgers and sampled walks stay bit-identical with
every sink attached.  The heatmap additionally satisfies an exact
conservation identity — per phase, located + retired + residual equals
the ledger's charged messages, and no per-edge congestion maximum
exceeds the ledger's.  Wall-clock access for overhead benches lives
behind the audited wrapper in :mod:`repro.obs.clock`.
"""

from repro.obs.clock import Stopwatch, perf_counter
from repro.obs.heatmap import HeatmapSink
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.probe import Probe
from repro.obs.report import (
    format_report,
    load_metrics,
    load_spans,
    summarize,
    summarize_metrics,
)
from repro.obs.slo import SloAlert, SloMonitor, SloSpec, format_dashboard
from repro.obs.trace import DEFAULT_RING_SIZE, Span, Tracer
from repro.obs.window import (
    DEFAULT_LATENCY_BUCKETS,
    EVENT_KINDS,
    LatencyDigest,
    SlidingWindow,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RING_SIZE",
    "EVENT_KINDS",
    "Counter",
    "Gauge",
    "HeatmapSink",
    "Histogram",
    "LatencyDigest",
    "MetricsRegistry",
    "Probe",
    "SlidingWindow",
    "SloAlert",
    "SloMonitor",
    "SloSpec",
    "Span",
    "Stopwatch",
    "Tracer",
    "format_dashboard",
    "format_report",
    "load_metrics",
    "load_spans",
    "perf_counter",
    "summarize",
    "summarize_metrics",
]
