"""repro.obs — passive observability over the simulated-round timeline.

Round-accurate span tracing (:class:`Tracer` → Chrome trace / JSONL), a
deterministic metrics registry (:class:`MetricsRegistry` → Prometheus
text), and the zero-cost-when-off :class:`Probe` indirection that the
ledger, engine, scheduler, fault, and churn layers all report through::

    engine = WalkEngine(graph, seed=7)
    tracer, metrics = Tracer(), MetricsRegistry()
    engine.attach_observability(tracer=tracer, metrics=metrics)
    ...  # serve traffic as usual — bit-identical to the untraced run
    tracer.write("trace.json")     # load in Perfetto / chrome://tracing
    metrics.write("metrics.prom")  # Prometheus text exposition

The observer is strictly passive: it never charges the ledger and never
touches an RNG (enforced statically by the ``obs-passivity`` analyzer
rule), so golden ledgers and sampled walks stay bit-identical with
tracing on.  Wall-clock access for overhead benches lives behind the
audited wrapper in :mod:`repro.obs.clock`.
"""

from repro.obs.clock import Stopwatch, perf_counter
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.probe import Probe
from repro.obs.report import format_report, load_spans, summarize
from repro.obs.trace import DEFAULT_RING_SIZE, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_RING_SIZE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Probe",
    "Span",
    "Stopwatch",
    "Tracer",
    "format_report",
    "load_spans",
    "perf_counter",
    "summarize",
]
