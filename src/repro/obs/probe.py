"""The single indirection between instrumented code and the obs sinks.

A :class:`Probe` is the one object instrumentation points talk to: the
ledger drives its observer interface (``phase_pushed``/``phase_popped``/
``charged``/``delta_measured``), and the engine/scheduler/fault/churn
layers add context (``annotate``) and instant events (``event``).

Zero-cost-when-off is the design constraint: a sink-less probe
early-returns from every hook on a single attribute check, ``annotate``
hands back one shared ``nullcontext`` (no allocation), and engines that
never attach observability leave ``ledger.observer`` as ``None`` so the
hot charge path pays exactly one ``is not None`` test.  The probe is
strictly *passive* — it reads the ledger, never charges it, and never
touches an RNG (enforced by the ``obs-passivity`` analyzer rule).
"""

from __future__ import annotations

from contextlib import nullcontext

__all__ = ["Probe"]

_NULL = nullcontext()


class _Annotation:
    """Context-stack frame pushed by :meth:`Probe.annotate`."""

    __slots__ = ("_probe", "_ctx")

    def __init__(self, probe: Probe, ctx: dict) -> None:
        self._probe = probe
        self._ctx = ctx

    def __enter__(self) -> _Annotation:
        probe = self._probe
        probe._context.append(self._ctx)
        merged = dict(probe._merged)
        merged.update(self._ctx)
        probe._merged = merged
        return self

    def __exit__(self, *exc: object) -> None:
        probe = self._probe
        probe._context.pop()
        merged: dict = {}
        for frame in probe._context:
            merged.update(frame)
        probe._merged = merged


class Probe:
    """Ledger observer + annotation/event entry point for one engine."""

    __slots__ = (
        "tracer",
        "metrics",
        "heatmap",
        "slo",
        "_context",
        "_merged",
        "_rounds_total",
        "_messages_total",
        "_congestion_gauge",
        "_spans_dropped_gauge",
    )

    def __init__(self, tracer=None, metrics=None, heatmap=None, slo=None) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.heatmap = heatmap
        self.slo = slo
        self._context: list[dict] = []
        self._merged: dict = {}
        if metrics is not None:
            # Cached instruments: ``charged`` runs on every ledger charge,
            # so it must not pay a registry lookup per call.
            self._rounds_total = metrics.counter(
                "repro_rounds_total", "Simulated rounds charged, by ledger phase."
            )
            self._messages_total = metrics.counter(
                "repro_messages_total", "Messages charged, by ledger phase."
            )
            self._congestion_gauge = metrics.gauge(
                "repro_congestion_max", "Worst per-edge congestion observed."
            )
            self._spans_dropped_gauge = (
                metrics.gauge(
                    "repro_trace_spans_dropped",
                    "Spans evicted from the tracer ring buffer.",
                )
                if tracer is not None
                else None
            )
        else:
            self._rounds_total = None
            self._messages_total = None
            self._congestion_gauge = None
            self._spans_dropped_gauge = None

    @property
    def active(self) -> bool:
        return (
            self.tracer is not None
            or self.metrics is not None
            or self.heatmap is not None
            or self.slo is not None
        )

    @property
    def context(self) -> dict:
        """The currently merged annotation context (read-only by convention)."""
        return self._merged

    def annotate(self, **context: object):
        """Attach ``context`` (tenant, ticket, cohort, ...) to spans opened inside.

        A ``scope=...`` key also names the scope span emitted for any
        ``delta_since`` measured inside the block.  With neither a tracer
        nor a heatmap (which attributes settled charges by the ``tenant``
        key) this returns a shared ``nullcontext`` — no allocation on the
        off path.
        """
        if self.tracer is None and self.heatmap is None:
            return _NULL
        return _Annotation(self, context)

    # ------------------------------------------------------------------
    # ledger observer interface (see RoundLedger.observer)

    def attached(self, ledger) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.attached(ledger)

    def phase_pushed(self, name: str, ledger) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.phase_push(name, ledger, self._merged)

    def phase_popped(self, name: str, ledger) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.phase_pop(name, ledger)
            gauge = self._spans_dropped_gauge
            if gauge is not None:
                gauge.set(tracer.dropped)

    def charged(self, phase: str, rounds: int, messages: int, congestion: int) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.charged(rounds, messages, congestion)
        heatmap = self.heatmap
        if heatmap is not None:
            heatmap.settle_charge(
                phase, rounds, messages, congestion, tenant=self._merged.get("tenant")
            )
        counter = self._rounds_total
        if counter is not None:
            counter.inc(rounds, phase=phase)
            self._messages_total.inc(messages, phase=phase)
            if congestion:
                self._congestion_gauge.set_max(congestion)

    def delta_measured(self, ledger, snapshot, delta) -> None:
        tracer = self.tracer
        if tracer is not None:
            ctx = self._merged
            tracer.scope(str(ctx.get("scope", "delta")), ledger, snapshot, delta, ctx)

    # ------------------------------------------------------------------
    # instant events (crash / recovery / churn / admission markers)

    def event(self, name: str, ledger=None, **args: object) -> None:
        tracer = self.tracer
        if tracer is not None and ledger is not None:
            merged = {**self._merged, **args} if args else self._merged
            tracer.instant(name, ledger, merged)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("repro_events_total", "Instant events, by kind.").inc(
                1, kind=name
            )

    # ------------------------------------------------------------------
    # streaming-SLO feed (driven by the serving scheduler)

    def slo_record(self, kind: str, tenant: str | None = None, value: float | None = None) -> None:
        """Fold one serving event into the SLO monitor's open tick frame."""
        slo = self.slo
        if slo is not None:
            slo.record(kind, tenant, value)

    def slo_tick(self, tick: int, round_now: int, queue_depth: int = 0, ledger=None) -> list:
        """Close one scheduler tick: roll windows, evaluate rules, emit alerts.

        Alert transitions become tracer instant events (``slo-fire`` /
        ``slo-resolve``) and bump ``repro_slo_alerts_total``; the list of
        transitions is returned for the caller (dashboard rendering).
        """
        slo = self.slo
        if slo is None:
            return []
        alerts = slo.close_tick(tick, round_now, queue_depth)
        if alerts:
            metrics = self.metrics
            for alert in alerts:
                self.event(
                    f"slo-{alert.kind}",
                    ledger,
                    slo=alert.spec,
                    tenant=alert.tenant,
                    burn=round(alert.burn, 4),
                )
                if metrics is not None:
                    metrics.counter(
                        "repro_slo_alerts_total", "SLO alert transitions, by kind."
                    ).inc(1, kind=alert.kind)
        return alerts
