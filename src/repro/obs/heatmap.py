"""Congestion cartography: per-edge/per-node message attribution.

The CONGEST model the paper charges against is fundamentally *per-edge* —
bandwidth is constrained on every link — yet the :class:`RoundLedger`
collapses a whole execution into one global ``max_congestion`` scalar.
A :class:`HeatmapSink` recovers the map: every charge site (the
``deliver_*`` family, the charged BFS/convergecast/broadcast fast paths,
the engine's pipelined sweeps) *stages* the per-edge message counts it is
about to bill immediately before calling ``ledger.charge``, and the
:class:`~repro.obs.probe.Probe` settles the staged batch into columnar
per-phase accumulators when the ledger's ``charged`` notification fires.

The settlement protocol makes the conservation identity hold by
construction: for every phase,

    Σ per-edge attributed + retired + residual == ledger ``messages``

where *retired* is history that belonged to churn-deleted edge slots and
*residual* is whatever a charge site did not locate onto edges.  On the
covered workloads (every golden one-shot case and the serving tier) the
residual is exactly zero — pinned by ``tests/test_obs_heatmap.py`` —
and the per-edge congestion maxima reproduce ``max_congestion`` exactly.

Strictly passive: the sink never charges the ledger, never draws from an
RNG, and never reads wall-clock.  Attribution is *emitted* only from
charge/deliver call sites and *consumed* only by the probe — enforced
statically by the ``obs-passivity`` analyzer rule (``stage_edges`` /
``stage_counts`` may not be called anywhere under ``obs/``;
``settle_charge`` only from ``probe.py``).

Edge identity is the directed CSR slot (the ledger's congestion unit).
Across a churn event the accounting survives via :meth:`apply_remap`,
re-keying every column through the :class:`~repro.dynamic.delta.DeltaRemap`
slot map; deleted slots' history moves to per-phase retired buckets that
keep counting toward conservation.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["HeatmapSink"]

#: Counter-track sampling: ring capacity and the decimation applied when
#: it fills (keep every other sample, double the stride) — deterministic,
#: bounded, and still round-accurate at both ends of long runs.
DEFAULT_SAMPLE_CAP = 4096


class HeatmapSink:
    """Columnar per-edge message attribution keyed by directed CSR slot.

    Lifecycle: :meth:`bind_topology` once at attach (done by
    ``WalkEngine.attach_observability``), then charge sites call
    :meth:`stage_edges` immediately before ``ledger.charge`` and the probe
    calls :meth:`settle_charge` from the ledger's ``charged`` hook.  On a
    churn/fault topology event :meth:`apply_remap` re-keys the columns.
    """

    __slots__ = (
        "n",
        "n_slots",
        "edge_src",
        "edge_dst",
        "charges",
        "rounds_total",
        "messages_total",
        "remaps",
        "_staged",
        "_staged_counts",
        "_phase_messages",
        "_phase_rounds",
        "_slot_cmax",
        "_residual",
        "_retired",
        "_retired_cmax",
        "_tenant_messages",
        "_tenant_rounds",
        "_samples",
        "_sample_cap",
        "_sample_stride",
        "_settles",
    )

    def __init__(self, *, sample_cap: int = DEFAULT_SAMPLE_CAP) -> None:
        if sample_cap < 2:
            raise ValueError("sample_cap must be >= 2")
        self.n = 0
        self.n_slots = 0
        self.edge_src: np.ndarray | None = None
        self.edge_dst: np.ndarray | None = None
        self.charges = 0
        self.rounds_total = 0
        self.messages_total = 0
        self.remaps = 0
        self._staged: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._staged_counts: list[tuple[np.ndarray, int, int]] = []
        self._phase_messages: dict[str, np.ndarray] = {}
        self._phase_rounds: dict[str, int] = {}
        self._slot_cmax: np.ndarray | None = None
        self._residual: dict[str, int] = {}
        self._retired: dict[str, int] = {}
        self._retired_cmax = 0
        self._tenant_messages: dict[str, int] = {}
        self._tenant_rounds: dict[str, int] = {}
        self._samples: list[tuple[int, int, int]] = []
        self._sample_cap = sample_cap
        self._sample_stride = 1
        self._settles = 0

    # ------------------------------------------------------------------
    # Topology binding
    # ------------------------------------------------------------------
    @property
    def bound(self) -> bool:
        return self.edge_src is not None

    def bind_topology(self, n: int, edge_src: np.ndarray, edge_dst: np.ndarray) -> None:
        """(Re)bind the directed-slot identity arrays.

        The accumulator columns are sized to ``len(edge_src)``; rebinding
        to a different slot count without an intervening
        :meth:`apply_remap` would silently misattribute history, so it is
        an error.
        """
        edge_src = np.array(edge_src, dtype=np.int64)  # defensive copies:
        edge_dst = np.array(edge_dst, dtype=np.int64)  # CSR rebuilds in place
        if self._slot_cmax is not None and len(edge_src) != self.n_slots:
            raise ValueError(
                f"topology has {len(edge_src)} slots but accumulators hold "
                f"{self.n_slots}; churn must go through apply_remap()"
            )
        self.n = int(n)
        self.n_slots = len(edge_src)
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        if self._slot_cmax is None:
            self._slot_cmax = np.zeros(self.n_slots, dtype=np.int64)

    # ------------------------------------------------------------------
    # The staging/settlement protocol (hot path)
    # ------------------------------------------------------------------
    def stage_edges(self, slots, messages=None, congestion=None) -> None:
        """Stage per-edge message counts for the imminent ``charge`` call.

        ``slots`` are directed CSR slot ids; ``messages`` parallels it
        (scalar broadcast allowed; default 1 per slot) and ``congestion``
        defaults to ``messages`` — the per-edge load of this charge.
        Called only from charge/deliver call sites, never from ``obs/``.
        """
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        if messages is None:
            messages = np.ones(slots.size, dtype=np.int64)
        elif np.isscalar(messages):
            messages = np.full(slots.size, messages, dtype=np.int64)
        else:
            messages = np.asarray(messages, dtype=np.int64)
        if congestion is None:
            congestion = messages
        elif np.isscalar(congestion):
            congestion = np.full(slots.size, congestion, dtype=np.int64)
        else:
            congestion = np.asarray(congestion, dtype=np.int64)
        self._staged.append((slots, messages, congestion))

    def stage_counts(
        self,
        counts: np.ndarray,
        total: int | None = None,
        congestion: int | None = None,
    ) -> None:
        """Stage a dense per-slot message vector (a prefix of the slot space).

        ``counts[s]`` is both the message count and the per-edge load
        crossing slot ``s`` in the imminent charge; ``total`` and
        ``congestion`` optionally carry ``counts.sum()`` / ``counts.max()``
        when the call site already computed them.  This is the zero-copy
        fast path for ``deliver_step``, whose per-slot ``bincount`` *is*
        this vector — settlement adds it column-wise instead of scattering
        through ``ufunc.at``, and a congestion-1 batch skips the per-slot
        maximum entirely (a unit load only lifts touched slots to 1, which
        the message column already proves — see ``_cmax_floor``).  Same
        contract as :meth:`stage_edges`: call sites only, never from
        ``obs/``.
        """
        if counts.size:
            self._staged_counts.append(
                (
                    counts,
                    int(counts.sum()) if total is None else total,
                    int(counts.max()) if congestion is None else congestion,
                )
            )

    def settle_charge(
        self,
        phase: str,
        rounds: int,
        messages: int,
        congestion: int,
        tenant: str | None = None,
    ) -> None:
        """Consume staged batches under ``phase``; book the rest as residual.

        Called by the probe from the ledger's ``charged`` notification —
        the one place staged attribution meets the authoritative charge.
        """
        located = 0
        staged = self._staged
        dense = self._staged_counts
        if staged or dense:
            col = self._phase_messages.get(phase)
            if col is None:
                col = np.zeros(self.n_slots, dtype=np.int64)
                self._phase_messages[phase] = col
            cmax = self._slot_cmax
            for counts, total, load in dense:
                m = counts.size
                col[:m] += counts
                if load > 1:
                    np.maximum(cmax[:m], counts, out=cmax[:m])
                located += total
            dense.clear()
            for slots, msgs, cong in staged:
                np.add.at(col, slots, msgs)
                np.maximum.at(cmax, slots, cong)
                located += int(msgs.sum())
            staged.clear()
        self.charges += 1
        self.rounds_total += rounds
        self.messages_total += messages
        self._phase_rounds[phase] = self._phase_rounds.get(phase, 0) + rounds
        leftover = messages - located
        if leftover:
            self._residual[phase] = self._residual.get(phase, 0) + leftover
        if tenant is not None:
            self._tenant_messages[tenant] = self._tenant_messages.get(tenant, 0) + messages
            self._tenant_rounds[tenant] = self._tenant_rounds.get(tenant, 0) + rounds
        if self._settles % self._sample_stride == 0:
            samples = self._samples
            samples.append((self.rounds_total, self.messages_total, congestion))
            if len(samples) >= self._sample_cap:
                del samples[::2]
                self._sample_stride *= 2
        self._settles += 1

    # ------------------------------------------------------------------
    # Churn survival
    # ------------------------------------------------------------------
    def apply_remap(self, remap, *, n: int, edge_src: np.ndarray, edge_dst: np.ndarray) -> None:
        """Re-key every column through a churn slot remap.

        ``remap`` is the :class:`~repro.dynamic.delta.DeltaRemap` returned
        by ``Graph.apply_delta``; history on deleted slots (``-1`` in
        ``slot_remap``) moves into per-phase retired buckets that still
        count toward the conservation identity.
        """
        slot_remap = np.asarray(remap.slot_remap, dtype=np.int64)
        if len(slot_remap) != self.n_slots:
            raise ValueError(
                f"remap covers {len(slot_remap)} slots, accumulators hold {self.n_slots}"
            )
        self._cmax_floor()  # retire exact maxima, unit-load charges included
        new_n_slots = int(remap.new_n_slots)
        live = slot_remap >= 0
        targets = slot_remap[live]
        for phase, col in self._phase_messages.items():
            fresh = np.zeros(new_n_slots, dtype=np.int64)
            np.add.at(fresh, targets, col[live])
            dead = int(col.sum()) - int(col[live].sum())
            if dead:
                self._retired[phase] = self._retired.get(phase, 0) + dead
            self._phase_messages[phase] = fresh
        fresh_cmax = np.zeros(new_n_slots, dtype=np.int64)
        np.maximum.at(fresh_cmax, targets, self._slot_cmax[live])
        dead_cmax = self._slot_cmax[~live]
        if dead_cmax.size:
            self._retired_cmax = max(self._retired_cmax, int(dead_cmax.max()))
        self._slot_cmax = fresh_cmax
        self.n_slots = new_n_slots
        self.remaps += 1
        self.bind_topology(n, edge_src, edge_dst)

    # ------------------------------------------------------------------
    # Conservation accessors (the tested identity)
    # ------------------------------------------------------------------
    def located_messages(self, phase: str | None = None) -> int:
        """Σ per-edge attributed messages (live columns only)."""
        if phase is not None:
            col = self._phase_messages.get(phase)
            return int(col.sum()) if col is not None else 0
        return sum(int(col.sum()) for col in self._phase_messages.values())

    def residual_messages(self, phase: str | None = None) -> int:
        if phase is not None:
            return self._residual.get(phase, 0)
        return sum(self._residual.values())

    def retired_messages(self, phase: str | None = None) -> int:
        if phase is not None:
            return self._retired.get(phase, 0)
        return sum(self._retired.values())

    def attributed_messages(self, phase: str | None = None) -> int:
        """Located + retired + residual — equals ledger ``messages`` exactly."""
        return (
            self.located_messages(phase)
            + self.retired_messages(phase)
            + self.residual_messages(phase)
        )

    def max_edge_congestion(self) -> int:
        """Max per-edge congestion ever staged (retired slots included)."""
        live = 0
        if self._slot_cmax is not None and self.n_slots:
            live = int(self._slot_cmax.max())
            if live == 0 and self.located_messages() > 0:
                live = 1  # only congestion-1 charges ever landed (see _cmax_floor)
        return max(live, self._retired_cmax)

    def _cmax_floor(self) -> None:
        """Materialize the unit-load floor into the tracked per-slot maxima.

        Dense settlement skips the per-slot maximum for congestion-1
        charges — exact because a unit load can only lift a touched slot's
        maximum to 1, and ``slot_totals() > 0`` identifies exactly the
        touched slots.  Reports and remaps fold the floor back in here.
        """
        if self._slot_cmax is not None and self.n_slots:
            np.maximum(
                self._slot_cmax,
                self.slot_totals() > 0,
                out=self._slot_cmax,
            )

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def slot_totals(self) -> np.ndarray:
        """Per-slot message totals summed across phases."""
        total = np.zeros(self.n_slots, dtype=np.int64)
        for col in self._phase_messages.values():
            total += col
        return total

    def node_totals(self) -> np.ndarray:
        """Per-node totals: each message attributed to the sending endpoint."""
        out = np.zeros(self.n, dtype=np.int64)
        if self.edge_src is not None and self.n_slots:
            np.add.at(out, self.edge_src, self.slot_totals())
        return out

    def top_edges(self, k: int = 10) -> list[dict]:
        """The ``k`` hottest directed edges, ties broken by slot id."""
        self._cmax_floor()
        totals = self.slot_totals()
        order = np.lexsort((np.arange(self.n_slots), -totals))
        out = []
        for slot in order[:k]:
            if totals[slot] == 0:
                break
            out.append(
                {
                    "slot": int(slot),
                    "src": int(self.edge_src[slot]),
                    "dst": int(self.edge_dst[slot]),
                    "messages": int(totals[slot]),
                    "max_congestion": int(self._slot_cmax[slot]),
                    "messages_per_round": round(
                        int(totals[slot]) / max(1, self.rounds_total), 6
                    ),
                }
            )
        return out

    def top_nodes(self, k: int = 10) -> list[dict]:
        """The ``k`` hottest sender nodes, ties broken by node id."""
        totals = self.node_totals()
        order = np.lexsort((np.arange(self.n), -totals))
        out = []
        for node in order[:k]:
            if totals[node] == 0:
                break
            out.append(
                {
                    "node": int(node),
                    "messages": int(totals[node]),
                    "messages_per_round": round(
                        int(totals[node]) / max(1, self.rounds_total), 6
                    ),
                }
            )
        return out

    def utilization(self) -> dict[str, float]:
        """Attributed messages per simulated round, per phase and overall."""
        out = {
            phase: round(self.attributed_messages(phase) / max(1, rounds), 6)
            for phase, rounds in sorted(self._phase_rounds.items())
        }
        out["*total*"] = round(self.messages_total / max(1, self.rounds_total), 6)
        return out

    def phase_table(self) -> dict[str, dict]:
        """Per-phase breakdown: located/retired/residual/rounds/utilization."""
        phases = (
            set(self._phase_messages) | set(self._phase_rounds)
            | set(self._residual) | set(self._retired)
        )
        table = {}
        for phase in sorted(phases):
            rounds = self._phase_rounds.get(phase, 0)
            table[phase] = {
                "located": self.located_messages(phase),
                "retired": self.retired_messages(phase),
                "residual": self.residual_messages(phase),
                "rounds": rounds,
                "messages_per_round": round(
                    self.attributed_messages(phase) / max(1, rounds), 6
                ),
            }
        return table

    def tenant_table(self) -> dict[str, dict]:
        return {
            tenant: {
                "messages": msgs,
                "rounds": self._tenant_rounds.get(tenant, 0),
            }
            for tenant, msgs in sorted(self._tenant_messages.items())
        }

    def summary(self, *, top: int = 10) -> dict:
        """One JSON-able document: totals, conservation, hot spots."""
        return {
            "schema": "congestion_heatmap/v1",
            "n": self.n,
            "n_slots": self.n_slots,
            "charges": self.charges,
            "remaps": self.remaps,
            "rounds": self.rounds_total,
            "messages": self.messages_total,
            "located_messages": self.located_messages(),
            "retired_messages": self.retired_messages(),
            "residual_messages": self.residual_messages(),
            "max_edge_congestion": self.max_edge_congestion(),
            "phases": self.phase_table(),
            "tenants": self.tenant_table(),
            "utilization": self.utilization(),
            "top_edges": self.top_edges(top),
            "top_nodes": self.top_nodes(top),
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def counter_events(self, *, pid: int = 1) -> list[dict]:
        """Perfetto counter-track events (``"ph": "C"``), one round = 1 µs.

        Merged into the Chrome trace via
        ``Tracer.to_chrome_trace(extra_events=sink.counter_events())``.
        """
        events = []
        for ts, messages, congestion in self._samples:
            events.append(
                {
                    "name": "attributed messages",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {"messages": messages},
                }
            )
            events.append(
                {
                    "name": "charge congestion",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {"congestion": congestion},
                }
            )
        return events

    def to_json(self, *, top: int = 10) -> str:
        return json.dumps(self.summary(top=top), indent=2, sort_keys=True) + "\n"

    def write(self, path, *, top: int = 10) -> Path:
        path = Path(path)
        path.write_text(self.to_json(top=top))
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeatmapSink(n={self.n}, n_slots={self.n_slots}, charges={self.charges}, "
            f"messages={self.messages_total}, residual={self.residual_messages()})"
        )
