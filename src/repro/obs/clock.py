"""Audited wall-clock access — the only wall clock under ``src/repro``.

The complexity measure everything in this repo reports is *simulated*
round-time from the :class:`~repro.congest.ledger.RoundLedger`; wall
clocks in library code would make traces nondeterministic and break
fixed-seed replay.  The ``obs-passivity`` analyzer rule therefore bans
``time.perf_counter`` (and ``monotonic``/``process_time``/``thread_time``)
everywhere under ``src/repro`` *except* this module, so optional
wall-clock profiling — bench overhead measurement, future kernel
profiling for the n ≥ 10⁶ scaling work — stays one grep wide and every
use is audited.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch", "perf_counter"]


def perf_counter() -> float:
    """Monotonic wall-clock seconds (the audited exception)."""
    return time.perf_counter()


class Stopwatch:
    """Accumulating wall-clock timer for off-ledger profiling.

    Re-enterable: each ``with`` block adds to ``elapsed``, so one
    stopwatch can meter many disjoint slices of the same activity::

        sw = Stopwatch()
        for _ in range(ticks):
            with sw:
                sched.tick()
        print(sw.elapsed)
    """

    __slots__ = ("elapsed", "_started")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def __enter__(self) -> Stopwatch:
        self._started = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._started is not None:
            self.elapsed += perf_counter() - self._started
            self._started = None
