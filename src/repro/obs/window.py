"""Deterministic sliding-window aggregation over scheduler ticks.

The streaming-SLO layer's time base is the scheduler tick — simulated
time, never wall-clock — so every aggregate here replays bit-identically
at a fixed seed.  A :class:`TickFrame` accumulates one tick's serving
events (admissions, rejects, throttles, completions with their
round-latency, deadline misses); a :class:`SlidingWindow` keeps the last
``window_ticks`` closed frames and answers aggregate queries over any
suffix of them.

Latency percentiles use a **fixed-bucket digest** (:class:`LatencyDigest`)
rather than a sampling sketch: the bucket edges are powers of two in
simulated rounds, an observation lands in the smallest bucket whose edge
is ≥ its value, and ``percentile(q)`` returns the edge of the smallest
bucket where the cumulative count reaches ``ceil(q · total)``.  No
randomness, no data-dependent compression — two runs with equal inputs
produce equal digests, which is what the determinism tests pin.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "LatencyDigest",
    "SlidingWindow",
    "TickFrame",
    "WindowTotals",
]

#: Power-of-two bucket upper edges in simulated rounds (1 … 65536);
#: observations beyond the last edge land in an overflow bucket whose
#: percentile reads as ``inf``.
DEFAULT_LATENCY_BUCKETS: tuple[int, ...] = tuple(2**i for i in range(17))

#: Event kinds a frame accumulates, in storage order.
EVENT_KINDS = ("admit", "reject", "throttle", "complete", "deadline_miss")
_EVENT_INDEX = {kind: i for i, kind in enumerate(EVENT_KINDS)}


class LatencyDigest:
    """Fixed-bucket histogram with deterministic percentile reads."""

    __slots__ = ("buckets", "counts", "total")

    def __init__(self, buckets: tuple[int, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 overflow bucket
        self.total = 0

    def note(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += 1

    def absorb(self, other: "LatencyDigest") -> None:
        """Accumulate another digest over the identical bucket edges."""
        if other.buckets != self.buckets:
            raise ValueError("cannot absorb a digest with different bucket edges")
        counts = self.counts
        for i, c in enumerate(other.counts):
            counts[i] += c
        self.total += other.total

    def percentile(self, q: float) -> float:
        """Smallest bucket edge whose cumulative count reaches ⌈q·total⌉."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = math.ceil(q * self.total)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return float(self.buckets[i]) if i < len(self.buckets) else math.inf
        return math.inf  # pragma: no cover - rank <= total always hits

    def count_above(self, threshold: float) -> int:
        """Observations strictly above ``threshold``, bucket-resolved.

        A bucket counts as *above* when its lower edge (the previous
        bucket's upper edge) is ≥ ``threshold`` — i.e. every value it can
        contain exceeds the threshold.  Exact whenever ``threshold`` is a
        bucket edge, conservative otherwise.
        """
        idx = bisect_left(self.buckets, threshold)
        # Buckets idx+1.. contain only values > buckets[idx] >= threshold.
        return sum(self.counts[idx + 1 :])

    def to_dict(self) -> dict:
        return {"buckets": list(self.buckets), "counts": list(self.counts), "total": self.total}


class TickFrame:
    """One tick's serving events, counted and latency-digested."""

    __slots__ = ("tick", "counts", "latency")

    def __init__(self, tick: int, buckets: tuple[int, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.tick = tick
        self.counts = [0] * len(EVENT_KINDS)
        self.latency = LatencyDigest(buckets)

    def note(self, kind: str, value: float | None = None) -> None:
        self.counts[_EVENT_INDEX[kind]] += 1
        if kind == "complete" and value is not None:
            self.latency.note(value)

    def count(self, kind: str) -> int:
        return self.counts[_EVENT_INDEX[kind]]


class WindowTotals:
    """Aggregated view over a suffix of closed frames."""

    __slots__ = ("ticks", "counts", "latency")

    def __init__(self, ticks: int, counts: list[int], latency: LatencyDigest) -> None:
        self.ticks = ticks
        self.counts = counts
        self.latency = latency

    def count(self, kind: str) -> int:
        return self.counts[_EVENT_INDEX[kind]]

    @property
    def admitted(self) -> int:
        return self.count("admit")

    @property
    def rejected(self) -> int:
        return self.count("reject")

    @property
    def throttled(self) -> int:
        return self.count("throttle")

    @property
    def completed(self) -> int:
        return self.count("complete")

    @property
    def deadline_missed(self) -> int:
        return self.count("deadline_miss")


class SlidingWindow:
    """The last ``window_ticks`` closed :class:`TickFrame` s, one stream.

    Events land in an *open* frame; :meth:`roll` closes it at a tick
    boundary.  Aggregates are recomputed from the retained frames on
    demand — windows are small (tens of ticks) and reads are per-tick,
    so no incremental-eviction bookkeeping is worth its bug surface.
    """

    __slots__ = ("window_ticks", "buckets", "frames", "_open")

    def __init__(
        self,
        window_ticks: int,
        *,
        buckets: tuple[int, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if window_ticks < 1:
            raise ValueError(f"window_ticks must be >= 1, got {window_ticks}")
        self.window_ticks = window_ticks
        self.buckets = buckets
        self.frames: deque[TickFrame] = deque(maxlen=window_ticks)
        self._open: TickFrame | None = None

    def note(self, kind: str, value: float | None = None) -> None:
        frame = self._open
        if frame is None:
            frame = self._open = TickFrame(0, self.buckets)
        frame.note(kind, value)

    def roll(self, tick: int) -> TickFrame:
        """Close the open frame under ``tick`` and start a fresh one."""
        frame = self._open if self._open is not None else TickFrame(tick, self.buckets)
        frame.tick = tick
        self.frames.append(frame)
        self._open = None
        return frame

    def totals(self, last: int | None = None) -> WindowTotals:
        """Aggregate over the most recent ``last`` closed frames."""
        if last is None or last > len(self.frames):
            last = len(self.frames)
        counts = [0] * len(EVENT_KINDS)
        latency = LatencyDigest(self.buckets)
        if last:
            for frame in list(self.frames)[-last:]:
                for i, c in enumerate(frame.counts):
                    counts[i] += c
                latency.absorb(frame.latency)
        return WindowTotals(last, counts, latency)

    def percentile(self, q: float, *, last: int | None = None) -> float:
        return self.totals(last).latency.percentile(q)
