"""Round-time span tracing with Chrome-trace / JSONL export.

Spans are stamped in *simulated* round-time: a phase span opens when the
ledger pushes the phase and closes when it pops, carrying the exact
rounds/messages charged in between; a scope span is emitted whenever
``delta_since`` measures a request delta, carrying that delta verbatim.
No wall clock is read anywhere, so a fixed seed reproduces the trace
byte-for-byte.

Two exact balance identities hold (and are tested in
``tests/test_obs.py``):

* globally, ``Σ phase-span self_rounds + unattributed_rounds ==
  ledger.rounds − attached_round`` — every simulated round after attach
  is owned by exactly one span (or the explicit unattributed bucket);
* per phase name, ``Σ self_rounds == ledger.phases[name].rounds`` minus
  the phase's pre-attach rounds — the trace is the ledger's per-phase
  attribution, just laid out on a timeline.

``self_rounds`` is inclusive rounds minus the inclusive rounds of child
phases, i.e. exactly the rounds the ledger attributed to this phase
while it was innermost — correct even for same-name nesting.

The Chrome export renders 1 round as 1 microsecond of trace time, so
Perfetto/``chrome://tracing`` timelines read directly in rounds.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.congest.ledger import LedgerSnapshot, RoundLedger

__all__ = ["DEFAULT_RING_SIZE", "Span", "Tracer"]

DEFAULT_RING_SIZE = 65_536

PHASE = "phase"
SCOPE = "scope"
INSTANT = "instant"

_PID = 1
_TID_BY_CAT = {PHASE: 1, SCOPE: 2, INSTANT: 3}
_TID_NAMES = {1: "ledger phases", 2: "request scopes", 3: "events"}


@dataclass(frozen=True)
class Span:
    """One completed trace span, stamped in simulated rounds."""

    seq: int
    cat: str  # "phase" | "scope" | "instant"
    name: str
    start_round: int
    end_round: int
    rounds: int  # inclusive (children counted)
    self_rounds: int  # exclusive (rounds charged while innermost)
    messages: int
    self_messages: int
    congestion: int  # worst congestion charged while innermost
    depth: int  # phase-stack depth at open (0 for scopes/instants)
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "cat": self.cat,
            "name": self.name,
            "start_round": self.start_round,
            "end_round": self.end_round,
            "rounds": self.rounds,
            "self_rounds": self.self_rounds,
            "messages": self.messages,
            "self_messages": self.self_messages,
            "congestion": self.congestion,
            "depth": self.depth,
            "args": dict(self.args),
        }


class _Frame:
    """Mutable open-phase record; becomes a Span at pop."""

    __slots__ = (
        "name",
        "start_round",
        "start_messages",
        "child_rounds",
        "child_messages",
        "congestion",
        "depth",
        "args",
    )


class Tracer:
    """Ring-buffered span sink driven by a :class:`~repro.obs.probe.Probe`.

    The ring (``deque(maxlen=ring_size)``) drops *oldest* spans first and
    counts drops explicitly, so a long session degrades to "recent
    history" rather than unbounded memory.  Balance counters
    (``unattributed_rounds`` etc.) are scalars and never drop.
    """

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.ring_size = ring_size
        self.spans: deque[Span] = deque(maxlen=ring_size)
        self.emitted = 0
        self.attached_round = 0
        self.attached_messages = 0
        self.attached_snapshot: LedgerSnapshot | None = None
        self.unattributed_rounds = 0
        self.unattributed_messages = 0
        self.orphan_pops = 0  # pops with no matching push (observer swapped mid-phase)
        self._stack: list[_Frame] = []
        self._seq = 0

    @property
    def dropped(self) -> int:
        return self.emitted - len(self.spans)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    # hooks — driven by Probe, which is driven by the ledger

    def attached(self, ledger: RoundLedger) -> None:
        self.attached_round = ledger.rounds
        self.attached_messages = ledger.messages
        # Baseline for the per-phase balance identity, never delta'd:
        # pre-attach phase rounds are subtracted span-side, not measured.
        self.attached_snapshot = ledger.capture()  # repro: allow-capture-balance

    def phase_push(self, name: str, ledger: RoundLedger, args: dict) -> None:
        frame = _Frame()
        frame.name = name
        frame.start_round = ledger.rounds
        frame.start_messages = ledger.messages
        frame.child_rounds = 0
        frame.child_messages = 0
        frame.congestion = 0
        frame.depth = len(self._stack)
        frame.args = dict(args) if args else {}
        self._stack.append(frame)

    def phase_pop(self, name: str, ledger: RoundLedger) -> Span | None:
        if not self._stack:
            self.orphan_pops += 1
            return None
        frame = self._stack.pop()
        rounds = ledger.rounds - frame.start_round
        messages = ledger.messages - frame.start_messages
        if self._stack:
            parent = self._stack[-1]
            parent.child_rounds += rounds
            parent.child_messages += messages
        span = Span(
            seq=self._next_seq(),
            cat=PHASE,
            name=name,
            start_round=frame.start_round,
            end_round=ledger.rounds,
            rounds=rounds,
            self_rounds=rounds - frame.child_rounds,
            messages=messages,
            self_messages=messages - frame.child_messages,
            congestion=frame.congestion,
            depth=frame.depth,
            args=frame.args,
        )
        self._emit(span)
        return span

    def charged(self, rounds: int, messages: int, congestion: int) -> None:
        if self._stack:
            top = self._stack[-1]
            if congestion > top.congestion:
                top.congestion = congestion
        else:
            self.unattributed_rounds += rounds
            self.unattributed_messages += messages

    def scope(
        self,
        name: str,
        ledger: RoundLedger,
        snapshot: LedgerSnapshot,
        delta: LedgerSnapshot,
        args: dict,
    ) -> Span:
        span = Span(
            seq=self._next_seq(),
            cat=SCOPE,
            name=name,
            start_round=snapshot.rounds,
            end_round=ledger.rounds,
            rounds=delta.rounds,
            self_rounds=delta.rounds,
            messages=delta.messages,
            self_messages=delta.messages,
            congestion=delta.max_congestion,
            depth=0,
            args=dict(args) if args else {},
        )
        self._emit(span)
        return span

    def instant(self, name: str, ledger: RoundLedger, args: dict) -> Span:
        span = Span(
            seq=self._next_seq(),
            cat=INSTANT,
            name=name,
            start_round=ledger.rounds,
            end_round=ledger.rounds,
            rounds=0,
            self_rounds=0,
            messages=0,
            self_messages=0,
            congestion=0,
            depth=0,
            args=dict(args) if args else {},
        )
        self._emit(span)
        return span

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _emit(self, span: Span) -> None:
        self.spans.append(span)
        self.emitted += 1

    # ------------------------------------------------------------------
    # balance accessors (used by the span-vs-ledger identity tests)

    def self_rounds_by_phase(self) -> dict[str, int]:
        """Σ ``self_rounds`` per phase name over the retained ring."""
        out: dict[str, int] = {}
        for span in self.spans:
            if span.cat == PHASE:
                out[span.name] = out.get(span.name, 0) + span.self_rounds
        return out

    def total_self_rounds(self) -> int:
        return sum(s.self_rounds for s in self.spans if s.cat == PHASE)

    def total_self_messages(self) -> int:
        return sum(s.self_messages for s in self.spans if s.cat == PHASE)

    # ------------------------------------------------------------------
    # export

    def span_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.spans]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(d, sort_keys=True, default=str) + "\n" for d in self.span_dicts()
        )

    def to_chrome_trace(self, *, extra_events=(), extra_other: dict | None = None) -> dict:
        """Chrome trace-event JSON (Perfetto/``chrome://tracing`` loadable).

        ``ts``/``dur`` are simulated rounds rendered as microseconds;
        phases, scopes, and instants land on separate named tracks.
        ``extra_events`` appends pre-built trace events (e.g. the heatmap's
        Perfetto counter track) and ``extra_other`` merges additional keys
        into ``otherData`` — how sibling sinks ride along in one file.
        """
        events: list[dict] = [
            {
                "ph": "M",
                "pid": _PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "repro (simulated rounds; 1 round = 1us)"},
            }
        ]
        for tid, label in sorted(_TID_NAMES.items()):
            events.append(
                {
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": label},
                }
            )
        for span in self.spans:
            args = {
                "self_rounds": span.self_rounds,
                "messages": span.messages,
                "congestion": span.congestion,
                **span.args,
            }
            if span.cat == INSTANT:
                events.append(
                    {
                        "ph": "i",
                        "pid": _PID,
                        "tid": _TID_BY_CAT[INSTANT],
                        "name": span.name,
                        "ts": span.start_round,
                        "s": "p",
                        "args": args,
                    }
                )
            else:
                events.append(
                    {
                        "ph": "X",
                        "pid": _PID,
                        "tid": _TID_BY_CAT[span.cat],
                        "cat": span.cat,
                        "name": span.name,
                        "ts": span.start_round,
                        "dur": span.rounds,
                        "args": args,
                    }
                )
        for event in extra_events:
            events.append(dict(event))
        other = {
            "clock": "simulated rounds (1 round rendered as 1us)",
            "attached_round": self.attached_round,
            "unattributed_rounds": self.unattributed_rounds,
            "dropped_spans": self.dropped,
            "ring_size": self.ring_size,
        }
        if extra_other:
            other.update(extra_other)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def write(
        self,
        path: str | Path,
        *,
        extra_events=(),
        extra_other: dict | None = None,
    ) -> Path:
        """Write the trace: ``.jsonl`` → span lines, anything else → Chrome JSON."""
        target = Path(path)
        if target.suffix == ".jsonl":
            target.write_text(self.to_jsonl())
        else:
            target.write_text(
                json.dumps(
                    self.to_chrome_trace(extra_events=extra_events, extra_other=extra_other),
                    sort_keys=True,
                    default=str,
                )
                + "\n"
            )
        return target
