"""Deterministic metrics registry with Prometheus-text exposition.

Counters, gauges, and fixed-bucket histograms keyed by sorted label
tuples.  Every observed quantity is *simulated* (rounds, tokens, queue
depths) and bucket edges are fixed powers of two, so a fixed seed
reproduces the exposition byte-for-byte — no wall clock, no process
state, no float accumulation ordering dependence.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

# Fixed power-of-two edges (1 .. 65536): deterministic, scale-free enough
# for round counts from single hops to full cohort sweeps.
DEFAULT_BUCKETS: tuple[int, ...] = tuple(2**i for i in range(17))

LabelKey = tuple  # tuple[tuple[str, str], ...] — sorted (name, value) pairs


def _labelkey(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(key) + tuple(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in pairs) + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labelstr(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: dict[LabelKey, object] = {}

    def header_lines(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help or self.name}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """Monotone counter; ``inc`` with negative values is rejected."""

    kind = "counter"

    def inc(self, value: float = 1, **labels: object) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {value})")
        key = _labelkey(labels)
        self.values[key] = self.values.get(key, 0) + value

    def value(self, **labels: object) -> float:
        return self.values.get(_labelkey(labels), 0)

    def total(self) -> float:
        return sum(self.values.values())

    def exposition_lines(self) -> list[str]:
        return [
            f"{self.name}{_format_labels(key)} {_format_value(val)}"
            for key, val in sorted(self.values.items())
        ]

    def snapshot_values(self) -> dict:
        return {_labelstr(k): v for k, v in sorted(self.values.items())}

    def snapshot_series(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": val}
            for key, val in sorted(self.values.items())
        ]


class Gauge(_Metric):
    """Last-write-wins gauge with a running-max helper."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self.values[_labelkey(labels)] = value

    def set_max(self, value: float, **labels: object) -> None:
        key = _labelkey(labels)
        if value > self.values.get(key, value - 1):
            self.values[key] = value

    def add(self, value: float, **labels: object) -> None:
        key = _labelkey(labels)
        self.values[key] = self.values.get(key, 0) + value

    def value(self, **labels: object) -> float:
        return self.values.get(_labelkey(labels), 0)

    exposition_lines = Counter.exposition_lines
    snapshot_values = Counter.snapshot_values
    snapshot_series = Counter.snapshot_series


class Histogram(_Metric):
    """Fixed-bucket histogram (counts stored per bucket, cumulated on export)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket edge")

    def observe(self, value: float, **labels: object) -> None:
        key = _labelkey(labels)
        cell = self.values.get(key)
        if cell is None:
            cell = self.values[key] = {
                "counts": [0] * len(self.buckets),
                "sum": 0,
                "count": 0,
            }
        for i, le in enumerate(self.buckets):
            if value <= le:
                cell["counts"][i] += 1
                break
        # values beyond the last edge only land in the implicit +Inf bucket
        cell["sum"] += value
        cell["count"] += 1

    def count(self, **labels: object) -> int:
        cell = self.values.get(_labelkey(labels))
        return cell["count"] if cell else 0

    def exposition_lines(self) -> list[str]:
        lines: list[str] = []
        for key, cell in sorted(self.values.items()):
            cumulative = 0
            for le, n in zip(self.buckets, cell["counts"]):
                cumulative += n
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(key, (('le', _format_value(float(le))),))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{self.name}_bucket{_format_labels(key, (('le', '+Inf'),))}"
                f" {cell['count']}"
            )
            lines.append(f"{self.name}_sum{_format_labels(key)} {_format_value(cell['sum'])}")
            lines.append(f"{self.name}_count{_format_labels(key)} {cell['count']}")
        return lines

    def snapshot_values(self) -> dict:
        return {
            _labelstr(key): {
                "buckets": dict(zip(map(str, self.buckets), cell["counts"])),
                "sum": cell["sum"],
                "count": cell["count"],
            }
            for key, cell in sorted(self.values.items())
        }

    def snapshot_series(self) -> list[dict]:
        return [
            {
                "labels": dict(key),
                "buckets": dict(zip(map(str, self.buckets), cell["counts"])),
                "sum": cell["sum"],
                "count": cell["count"],
            }
            for key, cell in sorted(self.values.items())
        ]


class MetricsRegistry:
    """Get-or-create registry over named metrics, with snapshot + exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help, **kwargs)
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
            )
        elif help and not metric.help:
            # Help backfill: a hot-path call site may register the family
            # first without text; the first documented registration wins.
            metric.help = help
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-able view: ``{name: {type, help, values, series}}``, sorted.

        ``values`` keeps the legacy flat ``"k=v,..."``-keyed mapping;
        ``series`` carries the same data with structured label dicts, so
        downstream tooling (``trace-report --metrics``) never re-parses
        label strings.
        """
        return {
            name: {
                "type": metric.kind,
                "help": metric.help,
                "values": metric.snapshot_values(),
                "series": metric.snapshot_series(),
            }
            for name, metric in sorted(self._metrics.items())
        }

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format 0.0.4, sorted by metric name."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.extend(metric.header_lines())
            lines.extend(metric.exposition_lines())
        return "\n".join(lines) + "\n" if lines else ""

    def write(self, path: str | Path) -> Path:
        """Write to ``path``: ``.json`` → snapshot JSON, else Prometheus text."""
        target = Path(path)
        if target.suffix == ".json":
            target.write_text(json.dumps(self.snapshot(), sort_keys=True) + "\n")
        else:
            target.write_text(self.to_prometheus_text())
        return target
