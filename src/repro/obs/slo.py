"""Streaming SLO monitor: declarative burn-rate rules over tick windows.

An :class:`SloSpec` declares an objective — "at most 5% of completions in
any 8-tick window may exceed 2000 rounds of latency" — as
``(metric, objective, window, burn_threshold)``.  The
:class:`SloMonitor` consumes the scheduler's per-event feed (admissions,
rejects, throttles, completions, deadline misses), closes a
:class:`~repro.obs.window.TickFrame` per scheduler tick, and evaluates
every rule against its window: the **burn rate** is
``bad_fraction / objective``, and crossing ``burn_threshold`` fires an
edge-triggered :class:`SloAlert` (with a matching ``resolve`` when the
window drains back under).  Alerts are returned to the probe, which
stamps them into the tracer instant stream and the
``repro_slo_alerts_total`` metric — the monitor itself, like everything
in ``obs/``, is strictly passive and clocked in simulated ticks/rounds.

``format_dashboard`` renders the live per-tick ANSI table behind
``python -m repro serve --dashboard``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.window import DEFAULT_LATENCY_BUCKETS, SlidingWindow

__all__ = ["SloAlert", "SloMonitor", "SloSpec", "format_dashboard"]

#: Metrics an SLO objective can target → the bad/total event pair.
SLO_METRICS = ("latency", "deadline_miss", "reject", "throttle")

#: Aggregate pseudo-tenant: events from every tenant fold in here too, so
#: a spec with ``tenant=None`` watches the whole service.
ALL_TENANTS = "*all*"


@dataclass(frozen=True)
class SloSpec:
    """One declarative SLO rule.

    ``objective`` is the *allowed bad fraction* (e.g. 0.05 = "at most 5%
    bad"); ``window`` the evaluation horizon in closed scheduler ticks;
    ``burn_threshold`` the multiple of the objective's budget at which
    the alert fires (1.0 = firing exactly at budget).  ``tenant=None``
    evaluates the all-tenant aggregate.  ``latency_target`` (simulated
    rounds) is required for ``metric="latency"`` — a completion is bad
    when its latency exceeds it.  Windows with fewer than ``min_events``
    qualifying events never fire (cold-start guard).
    """

    name: str
    metric: str = "latency"
    objective: float = 0.05
    window: int = 8
    burn_threshold: float = 1.0
    tenant: str | None = None
    latency_target: int | None = None
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            raise ValueError(f"unknown SLO metric {self.metric!r}; one of {SLO_METRICS}")
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(f"objective must be in (0, 1], got {self.objective}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1 tick, got {self.window}")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        if self.metric == "latency" and self.latency_target is None:
            raise ValueError("metric='latency' requires latency_target (rounds)")

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        """Parse ``key=value`` CSV, e.g.
        ``"name=pro-lat,metric=latency,target=2000,objective=0.05,window=8,burn=2,tenant=pro"``.
        """
        fields: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"SLO spec field {part!r} is not key=value")
            key, value = part.split("=", 1)
            key, value = key.strip(), value.strip()
            if key in ("name", "metric", "tenant"):
                fields[key] = value
            elif key in ("objective", "burn"):
                fields["burn_threshold" if key == "burn" else key] = float(value)
            elif key in ("window", "min_events"):
                fields[key] = int(value)
            elif key == "target":
                fields["latency_target"] = int(value)
            else:
                raise ValueError(f"unknown SLO spec field {key!r}")
        if "name" not in fields:
            raise ValueError(f"SLO spec {text!r} needs a name=")
        return cls(**fields)


@dataclass(frozen=True)
class SloAlert:
    """One edge-triggered alert transition (``fire`` or ``resolve``)."""

    spec: str
    metric: str
    tenant: str
    kind: str  # "fire" | "resolve"
    tick: int
    round: int
    burn: float
    bad_rate: float
    bad: int
    total: int

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "metric": self.metric,
            "tenant": self.tenant,
            "kind": self.kind,
            "tick": self.tick,
            "round": self.round,
            "burn": round(self.burn, 6),
            "bad_rate": round(self.bad_rate, 6),
            "bad": self.bad,
            "total": self.total,
        }


@dataclass
class _RuleState:
    spec: SloSpec
    firing: bool = False
    fired: int = 0
    resolved: int = 0
    last_burn: float = 0.0
    last_bad_rate: float = 0.0


class SloMonitor:
    """Evaluate :class:`SloSpec` rules over per-tenant sliding windows."""

    def __init__(
        self,
        specs: tuple[SloSpec, ...] | list[SloSpec] = (),
        *,
        buckets: tuple[int, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self._rules = [_RuleState(spec) for spec in specs]
        names = [r.spec.name for r in self._rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO spec names: {names}")
        self.buckets = buckets
        self._window_ticks = max((r.spec.window for r in self._rules), default=8)
        self._windows: dict[str, SlidingWindow] = {}
        self.alerts: list[SloAlert] = []
        self.ticks_closed = 0
        self.last_tick = 0
        self.last_round = 0
        self.last_queue_depth = 0
        self.events = 0

    @property
    def specs(self) -> list[SloSpec]:
        return [r.spec for r in self._rules]

    def _window(self, tenant: str) -> SlidingWindow:
        win = self._windows.get(tenant)
        if win is None:
            win = self._windows[tenant] = SlidingWindow(
                self._window_ticks, buckets=self.buckets
            )
        return win

    # ------------------------------------------------------------------
    # Feed (called by the probe, which the scheduler notifies)
    # ------------------------------------------------------------------
    def record(self, kind: str, tenant: str | None, value: float | None = None) -> None:
        self.events += 1
        if tenant is not None:
            self._window(tenant).note(kind, value)
        self._window(ALL_TENANTS).note(kind, value)

    def close_tick(self, tick: int, round_now: int, queue_depth: int = 0) -> list[SloAlert]:
        """Roll every window at a tick boundary and evaluate all rules.

        Returns only the *transitions* (new fires / resolves); the full
        history stays on :attr:`alerts`.
        """
        self.ticks_closed += 1
        self.last_tick = tick
        self.last_round = round_now
        self.last_queue_depth = queue_depth
        for win in self._windows.values():
            win.roll(tick)
        transitions: list[SloAlert] = []
        for rule in self._rules:
            spec = rule.spec
            bad, total = self._bad_total(spec)
            bad_rate = bad / total if total else 0.0
            burn = bad_rate / spec.objective
            rule.last_burn = burn
            rule.last_bad_rate = bad_rate
            should_fire = total >= spec.min_events and burn >= spec.burn_threshold
            if should_fire != rule.firing:
                rule.firing = should_fire
                kind = "fire" if should_fire else "resolve"
                if should_fire:
                    rule.fired += 1
                else:
                    rule.resolved += 1
                alert = SloAlert(
                    spec=spec.name,
                    metric=spec.metric,
                    tenant=spec.tenant or ALL_TENANTS,
                    kind=kind,
                    tick=tick,
                    round=round_now,
                    burn=burn,
                    bad_rate=bad_rate,
                    bad=bad,
                    total=total,
                )
                self.alerts.append(alert)
                transitions.append(alert)
        return transitions

    def _bad_total(self, spec: SloSpec) -> tuple[int, int]:
        win = self._windows.get(spec.tenant or ALL_TENANTS)
        if win is None:
            return 0, 0
        agg = win.totals(spec.window)
        if spec.metric == "latency":
            return agg.latency.count_above(spec.latency_target), agg.completed
        if spec.metric == "deadline_miss":
            return agg.deadline_missed, agg.completed
        if spec.metric == "reject":
            return agg.rejected, agg.admitted + agg.rejected
        # throttle: fraction of window ticks the tenant spent throttled.
        return agg.throttled, agg.ticks
    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def percentile(self, tenant: str | None, q: float, *, last: int | None = None) -> float:
        win = self._windows.get(tenant if tenant is not None else ALL_TENANTS)
        return win.percentile(q, last=last) if win is not None else 0.0

    def firing(self) -> list[str]:
        return [r.spec.name for r in self._rules if r.firing]

    def status(self, tenant: str | None = None) -> str:
        """``"firing"`` / ``"ok"`` for one tenant (or the whole service)."""
        for rule in self._rules:
            if rule.firing and (
                tenant is None or (rule.spec.tenant or ALL_TENANTS) == tenant
            ):
                return "firing"
        return "ok"

    def tenants(self) -> list[str]:
        return sorted(t for t in self._windows if t != ALL_TENANTS)

    def summary(self) -> dict:
        """JSON-able state: rules, burn rates, alert history, percentiles."""
        return {
            "schema": "slo_monitor/v1",
            "ticks": self.ticks_closed,
            "last_round": self.last_round,
            "last_queue_depth": self.last_queue_depth,
            "events": self.events,
            "rules": {
                r.spec.name: {
                    "metric": r.spec.metric,
                    "tenant": r.spec.tenant or ALL_TENANTS,
                    "objective": r.spec.objective,
                    "window": r.spec.window,
                    "burn_threshold": r.spec.burn_threshold,
                    "latency_target": r.spec.latency_target,
                    "firing": r.firing,
                    "fired": r.fired,
                    "resolved": r.resolved,
                    "burn": round(r.last_burn, 6),
                    "bad_rate": round(r.last_bad_rate, 6),
                }
                for r in self._rules
            },
            "alerts": [a.to_dict() for a in self.alerts],
            "tenants": {
                tenant: {
                    "p50_latency": _finite(self.percentile(tenant, 0.50)),
                    "p95_latency": _finite(self.percentile(tenant, 0.95)),
                    "status": self.status(tenant),
                }
                for tenant in self.tenants()
            },
        }


def _finite(value: float) -> float | str:
    return value if math.isfinite(value) else "inf"


# ----------------------------------------------------------------------
# ANSI dashboard
# ----------------------------------------------------------------------
_GREEN = "\x1b[32m"
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_BOLD = "\x1b[1m"
_RESET = "\x1b[0m"


def _fmt_latency(value: float) -> str:
    return "-" if value == 0 else ("+inf" if math.isinf(value) else f"{int(value)}")


def format_dashboard(
    *,
    tick: int,
    round_now: int,
    queue_depth: int,
    rows: list[dict],
    alerts: list[SloAlert] | tuple = (),
    color: bool = True,
) -> str:
    """Render one per-tick dashboard frame as an ANSI table.

    ``rows`` carry per-tenant cells:
    ``{tenant, p50, p95, attributed, quota_debt, status, burn}``.
    """

    def paint(text: str, code: str) -> str:
        return f"{code}{text}{_RESET}" if color else text

    header = paint(
        f"tick {tick:>4} · round {round_now:>8} · queue {queue_depth:>4}", _BOLD
    )
    cols = f"{'tenant':<10} {'p50':>8} {'p95':>8} {'rounds':>10} {'quota debt':>11} {'burn':>6}  slo"
    lines = [header, paint(cols, _BOLD)]
    for row in rows:
        status = row.get("status", "ok")
        badge = paint("FIRING", _RED) if status == "firing" else paint("ok", _GREEN)
        lines.append(
            f"{row['tenant']:<10} "
            f"{_fmt_latency(row.get('p50', 0)):>8} "
            f"{_fmt_latency(row.get('p95', 0)):>8} "
            f"{row.get('attributed', 0):>10} "
            f"{row.get('quota_debt', 0):>11} "
            f"{row.get('burn', 0.0):>6.2f}  {badge}"
        )
    for alert in alerts:
        mark = paint("⚠ fire", _RED) if alert.kind == "fire" else paint("✓ resolve", _YELLOW)
        lines.append(
            f"  {mark} {alert.spec} [{alert.tenant}] "
            f"burn={alert.burn:.2f} bad={alert.bad}/{alert.total} @round {alert.round}"
        )
    return "\n".join(lines)
