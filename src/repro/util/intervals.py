"""Closed-integer-interval algebra.

The PATH-VERIFICATION lower-bound machinery (Section 3 of the paper)
describes verification algorithms in terms of nodes that hold *verified
segments* ``[i, j]`` of the path and merge overlapping/adjacent segments.
This module provides the small amount of interval arithmetic those
algorithms need, as plain functions over ``(lo, hi)`` tuples and an
:class:`IntervalSet` container that maintains a normalized disjoint set.

Intervals are closed: ``(2, 5)`` covers positions 2, 3, 4, 5.  Two intervals
merge when they overlap **or touch** (``[1,3]`` and ``[4,6]`` merge to
``[1,6]``), matching the paper's notion of combining a verified ``[i1,j1]``
with ``[i2,j2]`` when they share or abut an endpoint of the path sequence.
"""

from __future__ import annotations

from typing import Iterable, Iterator

Interval = tuple[int, int]

__all__ = ["Interval", "IntervalSet", "intervals_mergeable", "merge_intervals", "normalize"]


def intervals_mergeable(a: Interval, b: Interval) -> bool:
    """Return True when ``a`` and ``b`` overlap or are adjacent integers."""
    (alo, ahi), (blo, bhi) = a, b
    return not (ahi + 1 < blo or bhi + 1 < alo)


def merge_intervals(a: Interval, b: Interval) -> Interval:
    """Merge two mergeable intervals into their union."""
    if not intervals_mergeable(a, b):
        raise ValueError(f"intervals {a} and {b} neither overlap nor touch")
    return (min(a[0], b[0]), max(a[1], b[1]))


def normalize(intervals: Iterable[Interval]) -> list[Interval]:
    """Collapse an arbitrary collection of intervals into a sorted disjoint list."""
    items = sorted(intervals)
    out: list[Interval] = []
    for lo, hi in items:
        if lo > hi:
            raise ValueError(f"malformed interval ({lo}, {hi})")
        if out and intervals_mergeable(out[-1], (lo, hi)):
            out[-1] = merge_intervals(out[-1], (lo, hi))
        else:
            out.append((lo, hi))
    return out


class IntervalSet:
    """A normalized set of disjoint closed integer intervals.

    Supports the operations the interval-merging verification protocol
    performs every round: add a segment (merging as needed), query coverage,
    and report the largest verified segment to forward to neighbors.
    """

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: list[Interval] = normalize(intervals)

    def add(self, interval: Interval) -> bool:
        """Insert ``interval``; return True when the set actually changed."""
        lo, hi = interval
        if lo > hi:
            raise ValueError(f"malformed interval ({lo}, {hi})")
        if self.covers(interval):
            return False
        self._intervals = normalize(self._intervals + [interval])
        return True

    def update(self, intervals: Iterable[Interval]) -> bool:
        """Insert many intervals; return True when anything changed."""
        changed = False
        for interval in intervals:
            changed |= self.add(interval)
        return changed

    def covers(self, interval: Interval) -> bool:
        """Return True when a single stored interval contains ``interval``."""
        lo, hi = interval
        return any(slo <= lo and hi <= shi for slo, shi in self._intervals)

    def covers_point(self, point: int) -> bool:
        return self.covers((point, point))

    def largest(self) -> Interval | None:
        """Return the widest stored interval (ties broken by position)."""
        if not self._intervals:
            return None
        return max(self._intervals, key=lambda iv: (iv[1] - iv[0], -iv[0]))

    def total_length(self) -> int:
        """Total number of integer points covered."""
        return sum(hi - lo + 1 for lo, hi in self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __contains__(self, point: object) -> bool:
        return isinstance(point, int) and self.covers_point(point)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntervalSet):
            return self._intervals == other._intervals
        return NotImplemented

    def __repr__(self) -> str:
        return f"IntervalSet({self._intervals!r})"

    def as_list(self) -> list[Interval]:
        return list(self._intervals)
