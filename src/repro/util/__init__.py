"""Shared utilities: RNG derivation, interval algebra, fits, stats, tables."""

from repro.util.fitting import PowerLawFit, fit_power_law, ratio_stability
from repro.util.intervals import IntervalSet, merge_intervals, normalize
from repro.util.rng import derive_rng, make_rng, spawn_rngs
from repro.util.stats import (
    ChiSquareResult,
    chi_square_goodness_of_fit,
    empirical_distribution,
    total_variation,
    total_variation_counts,
)
from repro.util.tables import render_table

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "ratio_stability",
    "IntervalSet",
    "merge_intervals",
    "normalize",
    "derive_rng",
    "make_rng",
    "spawn_rngs",
    "ChiSquareResult",
    "chi_square_goodness_of_fit",
    "empirical_distribution",
    "total_variation",
    "total_variation_counts",
    "render_table",
]
