"""Plain-text table rendering for benchmark reports.

Every bench in ``benchmarks/`` prints the rows it reproduces in the same
layout, via :func:`render_table`.  Keeping formatting here means the bench
modules contain only experiment logic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object) -> str:
    """Render one table cell: floats get 4 significant digits, rest via str."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if 0.001 <= magnitude < 100000:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Returns the table as a single string (callers decide whether to print
    or write it to a report file).
    """
    str_rows = [[format_cell(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
