"""Scaling-law fits for round-complexity experiments.

The paper's claims are asymptotic (``Õ(√(ℓD))``, ``Ω(√(ℓ/log ℓ))``, ...).
Our benches validate them by sweeping a parameter (walk length, node count,
edge count) and fitting the measured round counts to a power law
``rounds ≈ c · x^α``; the recovered exponent ``α`` is then compared against
the claim (0.5 for the new algorithm, 1.0 for the naive baseline, 2/3 for
PODC'09, ...).

The fit is ordinary least squares in log–log space, which is the standard
way to read off a polynomial growth rate from an empirical sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "ratio_stability"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y ≈ coefficient * x**exponent``.

    Attributes
    ----------
    exponent:
        The fitted power ``α``.
    coefficient:
        The fitted prefactor ``c``.
    r_squared:
        Goodness of fit in log–log space (1.0 means an exact power law).
    """

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent

    def __str__(self) -> str:
        return (
            f"y = {self.coefficient:.3g} * x^{self.exponent:.3f} "
            f"(R^2 = {self.r_squared:.4f})"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``ys ≈ c * xs**α`` by least squares on ``log y`` vs ``log x``.

    Requires at least two distinct positive ``x`` values and positive ``y``
    values; raises :class:`ValueError` otherwise.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-D sequences of equal length")
    if len(x) < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires strictly positive data")
    lx, ly = np.log(x), np.log(y)
    if np.allclose(lx, lx[0]):
        raise ValueError("xs must contain at least two distinct values")
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - np.mean(ly)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=float(slope), coefficient=float(math.exp(intercept)), r_squared=r_squared)


def ratio_stability(xs: Sequence[float], ys: Sequence[float], reference: Sequence[float]) -> float:
    """Return max/min of ``ys[i] / reference[i]`` — a bounded-ratio check.

    Useful for claims of the form "measured rounds stay within a constant
    factor of ``f(x)``": a small returned ratio means the measurement tracks
    the reference curve ``f`` up to constants across the sweep.
    """
    y = np.asarray(ys, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if y.shape != ref.shape:
        raise ValueError("ys and reference must have equal length")
    if np.any(ref <= 0):
        raise ValueError("reference values must be positive")
    ratios = y / ref
    if np.any(ratios <= 0):
        raise ValueError("ys must be positive")
    return float(ratios.max() / ratios.min())
