"""Source-level contract markers checked by :mod:`repro.analysis`.

The standing *charged fast-path contract* (ROADMAP invariant #1) says a
wall-clock optimization may replace the event-driven protocol only if it
bills the ledger the exact same rounds/messages/congestion, and only if a
test proves the equivalence.  :func:`charged_fast_path` makes that pairing
machine-checkable: the decorated function names the pytest node that pins
its equivalence, and the ``fast-path-pairing`` analyzer rule verifies the
named test actually exists (so a renamed or deleted test breaks the gate,
not the invariant).

The decorator is deliberately a no-op at runtime — it only attaches
metadata — so decorating a hot path costs nothing.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["FAST_PATH_ATTR", "charged_fast_path"]

#: Attribute under which the equivalence-test node id is stored.
FAST_PATH_ATTR = "__charged_fast_path__"

_F = TypeVar("_F", bound=Callable)


def charged_fast_path(*, equivalence_test: str) -> Callable[[_F], _F]:
    """Mark a function as a charged fast path pinned by ``equivalence_test``.

    ``equivalence_test`` is a pytest node id relative to the repo root,
    ``"tests/test_file.py::test_name"`` (the test name is looked up anywhere
    in the module, including inside test classes).  The analyzer requires it
    to be a string literal at the decoration site so the pairing is visible
    statically.
    """
    if "::" not in equivalence_test:
        raise ValueError(
            "equivalence_test must be a pytest node id 'path::test_name', "
            f"got {equivalence_test!r}"
        )

    def mark(fn: _F) -> _F:
        setattr(fn, FAST_PATH_ATTR, equivalence_test)
        return fn

    return mark
