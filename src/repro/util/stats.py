"""Statistical helpers shared by tests and benchmarks.

The library's correctness claims are distributional ("the sampled endpoint
has exactly the ℓ-step walk law", "every spanning tree is equally likely"),
so tests need goodness-of-fit machinery: chi-square tests against a known
discrete law, total-variation distance between empirical and exact
distributions, and empirical-distribution construction from samples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "ChiSquareResult",
    "chi_square_goodness_of_fit",
    "empirical_distribution",
    "total_variation",
    "total_variation_counts",
]


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square goodness-of-fit test."""

    statistic: float
    p_value: float
    dof: int

    def rejects_at(self, alpha: float) -> bool:
        """True when the null hypothesis is rejected at level ``alpha``."""
        return self.p_value < alpha


def chi_square_goodness_of_fit(
    observed: Mapping[Hashable, int],
    expected_probs: Mapping[Hashable, float],
    *,
    min_expected: float = 5.0,
) -> ChiSquareResult:
    """Test observed category counts against exact category probabilities.

    Categories whose expected count falls below ``min_expected`` are pooled
    into a single bucket, the standard validity fix for the chi-square
    approximation.  Categories present in ``expected_probs`` but absent from
    ``observed`` count as zero observations.

    Raises :class:`ValueError` when the expected probabilities do not sum to
    approximately one or when there are fewer than two effective categories.
    """
    total_prob = float(sum(expected_probs.values()))
    if not np.isclose(total_prob, 1.0, atol=1e-6):
        raise ValueError(f"expected probabilities sum to {total_prob}, not 1")
    unknown = set(observed) - set(expected_probs)
    if unknown:
        raise ValueError(f"observed categories not in expected support: {sorted(map(str, unknown))[:5]}")
    n = sum(observed.values())
    if n <= 0:
        raise ValueError("no observations")

    obs_main: list[float] = []
    exp_main: list[float] = []
    pooled_obs = 0.0
    pooled_exp = 0.0
    for category, prob in expected_probs.items():
        exp_count = prob * n
        obs_count = float(observed.get(category, 0))
        if exp_count < min_expected:
            pooled_obs += obs_count
            pooled_exp += exp_count
        else:
            obs_main.append(obs_count)
            exp_main.append(exp_count)
    if pooled_exp > 0:
        obs_main.append(pooled_obs)
        exp_main.append(pooled_exp)
    if len(obs_main) < 2:
        raise ValueError("fewer than two effective categories after pooling")

    statistic, p_value = _scipy_stats.chisquare(obs_main, exp_main)
    return ChiSquareResult(statistic=float(statistic), p_value=float(p_value), dof=len(obs_main) - 1)


def empirical_distribution(samples: Iterable[Hashable]) -> dict[Hashable, float]:
    """Return the empirical probability of each distinct sample value."""
    counts = Counter(samples)
    n = sum(counts.values())
    if n == 0:
        raise ValueError("no samples")
    return {value: count / n for value, count in counts.items()}


def total_variation(p: Mapping[Hashable, float], q: Mapping[Hashable, float]) -> float:
    """Total-variation distance ``0.5 * Σ |p(x) − q(x)|`` over the joint support."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(x, 0.0) - q.get(x, 0.0)) for x in support)


def total_variation_counts(counts: Mapping[Hashable, int], q: Mapping[Hashable, float]) -> float:
    """Total-variation distance between an empirical count table and a law ``q``."""
    n = sum(counts.values())
    if n == 0:
        raise ValueError("no samples")
    p = {x: c / n for x, c in counts.items()}
    return total_variation(p, q)


def sample_quantiles(values: Sequence[float], quantiles: Sequence[float]) -> list[float]:
    """Convenience wrapper over :func:`numpy.quantile` returning plain floats."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    return [float(v) for v in np.quantile(arr, quantiles)]
