"""Deterministic random-number-generator plumbing.

All randomized components of the library draw from :class:`numpy.random.Generator`
instances.  To keep experiments reproducible while still giving every node,
walk, and phase an *independent* stream, generators are derived from a root
seed plus a tuple of string/integer keys using :class:`numpy.random.SeedSequence`
``spawn``-style derivation.

Example
-------
>>> root = make_rng(7)
>>> phase1 = derive_rng(7, "phase1")
>>> node3 = derive_rng(7, "phase1", 3)

Two derivations with the same ``(seed, *keys)`` always produce identical
streams; derivations with different keys are statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Seedable = Union[int, None, np.random.Generator]

__all__ = ["make_rng", "derive_rng", "key_to_entropy", "spawn_rngs"]


def key_to_entropy(key: Union[str, int]) -> int:
    """Map a string or integer key to a stable 64-bit entropy word.

    Strings are hashed with BLAKE2b so that the mapping is stable across
    processes and Python versions (the builtin ``hash`` is salted and
    therefore unusable for reproducibility).
    """
    if isinstance(key, bool):  # bool is an int subclass; reject to avoid confusion
        raise TypeError("rng keys must be str or int, not bool")
    if isinstance(key, int):
        return key & 0xFFFFFFFFFFFFFFFF
    if isinstance(key, str):
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little")
    raise TypeError(f"rng keys must be str or int, got {type(key).__name__}")


def make_rng(seed: Seedable = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, ``None`` (OS entropy), or an existing
    generator, which is returned unchanged so call sites can accept either.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: int, *keys: Union[str, int]) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a key path.

    The key path acts like a filesystem path into seed space:
    ``derive_rng(7, "phase1", 3)`` is independent of
    ``derive_rng(7, "phase1", 4)`` and of ``derive_rng(7, "phase2", 3)``.
    """
    entropy = [seed & 0xFFFFFFFFFFFFFFFF]
    entropy.extend(key_to_entropy(key) for key in keys)
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``rng``.

    Used where a component needs one stream per node or per walk and only
    holds a generator (not the original seed).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
