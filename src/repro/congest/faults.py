"""Fault injection: node crashes, omission windows, lossy links.

The paper closes (§5) with: "from a practical standpoint, it is important
to develop algorithms that are robust to failures and it would be nice to
extend our techniques to handle such node/edge failures."  This module is
that substrate — three failure models plus one concrete robust algorithm:

* :class:`FaultSchedule` — a deterministic, replayable script of node
  **crash-stop** and **crash-recover** events plus **omission windows** on
  individual links.  Schedules come from explicit event lists or from the
  seeded :meth:`FaultSchedule.sample` generator (adversarial membership
  churn in the style of routing-simulator fault scripts): same seed, same
  schedule, bit-for-bit.
* :class:`FaultyNetwork` — a :class:`~repro.congest.network.Network` that
  tracks per-node liveness and *silently* stops delivering any message
  sent by, addressed to, or routed over a crashed node or an omitting
  link.  Crashes are silent exactly as in the crash-stop model: senders
  learn nothing; detection is the algorithm's problem.  The schedule's
  node events fire automatically as the round counter passes them during
  protocol runs.
* :class:`LossyNetwork` — links drop each delivered message independently
  with probability ``p`` (crash-free but lossy links, the classic first
  failure model).

Only event-driven traffic is subject to loss/crash filtering — the
batch-charged fast paths model algorithms already proven correct, so the
*engine-level* crash story (pool eviction, in-flight walk recovery,
``serve/recovery`` charging) lives in :mod:`repro.engine.faults`, which
consumes the same :class:`FaultSchedule` and models a crashed node as an
isolated one via :meth:`~repro.graphs.graph.Graph.apply_delta`.

* :class:`ReliableTokenWalkProtocol` — the naive walk made loss-tolerant
  with per-hop acknowledgements and timeout retransmission.  Crucially the
  retransmitted hop re-sends the *same* sampled neighbor, so reliability
  does not bias the walk's law: the endpoint distribution remains exactly
  ``P^ℓ`` (chi-square-verified in ``tests/test_faults.py``), only the
  round count inflates by ≈ ``1/(1−p)²`` (token and ack must both survive).
  The engine's suffix recovery reuses this sampling-once discipline:
  recovery replays already-sampled prefixes, never resamples them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.protocol import Protocol, ProtocolAPI
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.util.rng import make_rng

__all__ = [
    "FaultSchedule",
    "FaultStep",
    "FaultyNetwork",
    "LossyNetwork",
    "OmissionWindow",
    "ReliableTokenWalkProtocol",
]


@dataclass(frozen=True)
class FaultStep:
    """One batch of node fault events firing at a simulated round.

    ``crash`` nodes stop at ``at_round``: they deliver nothing, forward
    nothing, and (at the engine level) lose all resident walk state.
    ``recover`` nodes rejoin with their former incident edges but blank
    memory.  A node may not crash and recover in the same step.
    """

    at_round: int
    crash: tuple[int, ...] = ()
    recover: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.at_round < 0:
            raise ProtocolError(f"fault step round must be >= 0, got {self.at_round}")
        crash = tuple(int(v) for v in self.crash)
        recover = tuple(int(v) for v in self.recover)
        object.__setattr__(self, "crash", crash)
        object.__setattr__(self, "recover", recover)
        if set(crash) & set(recover):
            raise ProtocolError("a node cannot crash and recover in the same step")
        if not crash and not recover:
            raise ProtocolError("a fault step must name at least one node event")


@dataclass(frozen=True)
class OmissionWindow:
    """Link ``{u, v}`` silently drops every message during ``[start, end)``."""

    u: int
    v: int
    start_round: int
    end_round: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ProtocolError("omission window needs two distinct endpoints")
        if not 0 <= self.start_round < self.end_round:
            raise ProtocolError(
                f"omission window needs 0 <= start < end, got "
                f"[{self.start_round}, {self.end_round})"
            )

    def covers(self, u: int, v: int, at_round: int) -> bool:
        if {u, v} != {self.u, self.v}:
            return False
        return self.start_round <= at_round < self.end_round


def _live_graph_connected(graph: Graph, dead: np.ndarray) -> bool:
    """BFS connectivity of the subgraph induced on the live (non-dead) nodes."""
    live = ~dead
    total = int(live.sum())
    if total <= 1:
        return True
    start = int(np.argmax(live))
    visited = np.zeros(graph.n, dtype=bool)
    visited[start] = True
    frontier = np.array([start], dtype=np.int64)
    reached = 1
    while frontier.size and reached < total:
        starts = graph.indptr[frontier]
        counts = graph.indptr[frontier + 1] - starts
        width = int(counts.sum())
        if width == 0:
            break
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        slots = np.repeat(starts - offsets, counts) + np.arange(width)
        targets = graph.csr_target[slots]
        targets = targets[live[targets]]
        fresh = np.unique(targets[~visited[targets]])
        visited[fresh] = True
        reached += int(fresh.size)
        frontier = fresh
    return reached == total


@dataclass(frozen=True)
class FaultSchedule:
    """A replayable script of crash/recover node events and link omissions.

    ``steps`` are kept sorted by ``at_round`` (stable for ties) and fire
    when a consumer's round counter passes them — the
    :class:`FaultyNetwork` applies them during protocol runs, and
    :class:`repro.engine.faults.FaultController` applies them to a serving
    session.  The schedule itself is immutable and carries no cursor, so
    one schedule object can drive any number of replays.
    """

    steps: tuple[FaultStep, ...] = ()
    omissions: tuple[OmissionWindow, ...] = ()

    def __post_init__(self) -> None:
        steps = tuple(sorted(self.steps, key=lambda s: s.at_round))
        object.__setattr__(self, "steps", steps)
        object.__setattr__(self, "omissions", tuple(self.omissions))
        crashed: set[int] = set()
        for step in steps:
            for v in step.recover:
                if v not in crashed:
                    raise ProtocolError(
                        f"step at round {step.at_round} recovers node {v}, "
                        "which is not crashed at that point"
                    )
                crashed.discard(v)
            for v in step.crash:
                if v in crashed:
                    raise ProtocolError(
                        f"step at round {step.at_round} crashes node {v} twice"
                    )
                crashed.add(v)

    @property
    def is_empty(self) -> bool:
        return not self.steps and not self.omissions

    @property
    def num_crashes(self) -> int:
        return sum(len(s.crash) for s in self.steps)

    @property
    def num_recoveries(self) -> int:
        return sum(len(s.recover) for s in self.steps)

    def link_omitted(self, u: int, v: int, at_round: int) -> bool:
        """Is link ``{u, v}`` inside an omission window at ``at_round``?"""
        return any(w.covers(u, v, at_round) for w in self.omissions)

    def recovery_pending(self, node: int, *, after_index: int = 0) -> bool:
        """Will ``node`` recover in any step from ``after_index`` on?

        The engine uses this to distinguish a transient crash (park the
        walk, wait) from a permanent crash-stop (fail loudly rather than
        spin forever).
        """
        return any(node in s.recover for s in self.steps[after_index:])

    @classmethod
    def sample(
        cls,
        graph: Graph,
        *,
        crashes: int,
        start_round: int,
        end_round: int,
        recover_after: int | None,
        seed=None,
        protect: Sequence[int] = (),
        preserve_connectivity: bool = True,
    ) -> "FaultSchedule":
        """Draw a seeded crash/recover schedule for ``graph``.

        ``crashes`` crash events land at rng-uniform rounds in
        ``[start_round, end_round)``; each crashed node recovers
        ``recover_after`` rounds later (``None`` for crash-stop: no
        recovery).  Victims are drawn uniformly among nodes that are live
        at the event time and not in ``protect``; with
        ``preserve_connectivity`` a victim whose removal would disconnect
        the surviving live subgraph is skipped (re-drawn), mirroring
        :func:`repro.dynamic.workload.sample_churn_delta`.  The realized
        crash count can fall short of ``crashes`` on graphs with few
        removable nodes — the schedule records what was actually sampled.
        Same seed, same graph: identical schedule.
        """
        if crashes < 0:
            raise ProtocolError(f"crashes must be >= 0, got {crashes}")
        if crashes and not start_round < end_round:
            raise ProtocolError("need start_round < end_round to place crash events")
        if recover_after is not None and recover_after < 1:
            raise ProtocolError(f"recover_after must be >= 1, got {recover_after}")
        if crashes == 0:
            return cls()
        rng = make_rng(seed)
        n = graph.n
        protected = np.zeros(n, dtype=bool)
        if len(protect):
            protected[np.asarray(list(protect), dtype=np.int64)] = True
        crash_rounds = np.sort(rng.integers(start_round, end_round, size=crashes))
        dead = np.zeros(n, dtype=bool)
        pending_recovers: list[tuple[int, int]] = []  # (round, node), kept sorted
        events: dict[int, dict[str, list[int]]] = {}

        def note(at_round: int, kind: str, node: int) -> None:
            events.setdefault(int(at_round), {"crash": [], "recover": []})[kind].append(node)

        for r in crash_rounds:
            r = int(r)
            while pending_recovers and pending_recovers[0][0] <= r:
                rec_round, node = pending_recovers.pop(0)
                dead[node] = False
                note(rec_round, "recover", node)
            candidates = np.flatnonzero(~dead & ~protected)
            if candidates.size == 0:
                continue
            victim = -1
            for v in rng.permutation(candidates):
                dead[v] = True
                if not preserve_connectivity or _live_graph_connected(graph, dead):
                    victim = int(v)
                    break
                dead[v] = False
            if victim < 0:
                continue  # every candidate would disconnect the live graph
            note(r, "crash", victim)
            if recover_after is not None:
                pending_recovers.append((r + recover_after, victim))
                pending_recovers.sort()
        for rec_round, node in pending_recovers:
            note(rec_round, "recover", node)
        steps = tuple(
            FaultStep(at_round=r, crash=tuple(ev["crash"]), recover=tuple(ev["recover"]))
            for r, ev in sorted(events.items())
            if ev["crash"] or ev["recover"]
        )
        return cls(steps=steps)


class FaultyNetwork(Network):
    """A network with crash-stop/crash-recover nodes and omitting links.

    Liveness is a per-node boolean surface (:meth:`is_live`,
    :attr:`live_mask`).  Delivery filtering is *silent*: a message whose
    sender or receiver is crashed at delivery time — or whose link sits in
    an omission window — consumed its bandwidth slot but never arrives,
    and nobody is told.  During :meth:`~Network.run` the attached
    schedule's node events fire automatically as rounds pass; callers
    driving liveness by hand (the engine's fault controller) use
    :meth:`mark_crashed` / :meth:`mark_recovered` directly.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        schedule: FaultSchedule | None = None,
        capacity: int = 1,
        max_words: int = 8,
        seed=None,
    ) -> None:
        super().__init__(graph, capacity=capacity, max_words=max_words, seed=seed)
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self._live = np.ones(graph.n, dtype=bool)
        self._step_cursor = 0
        self.crashes_seen = 0
        self.recoveries_seen = 0
        self.messages_lost_to_crashes = 0
        self.messages_omitted = 0

    # -- liveness surface ----------------------------------------------
    @property
    def live_mask(self) -> np.ndarray:
        """Per-node liveness (read-only view; True = live)."""
        view = self._live.view()
        view.flags.writeable = False
        return view

    def is_live(self, v: int) -> bool:
        return bool(self._live[v])

    @property
    def crashed_nodes(self) -> tuple[int, ...]:
        return tuple(int(v) for v in np.flatnonzero(~self._live))

    def mark_crashed(self, nodes: Sequence[int]) -> None:
        for v in nodes:
            if self._live[v]:
                self._live[v] = False
                self.crashes_seen += 1

    def mark_recovered(self, nodes: Sequence[int]) -> None:
        for v in nodes:
            if not self._live[v]:
                self._live[v] = True
                self.recoveries_seen += 1

    # -- delivery filtering --------------------------------------------
    def _advance_schedule(self) -> None:
        steps = self.schedule.steps
        while self._step_cursor < len(steps) and steps[self._step_cursor].at_round <= self.rounds:
            step = steps[self._step_cursor]
            self.mark_crashed(step.crash)
            self.mark_recovered(step.recover)
            self._step_cursor += 1

    def _deliver_one_round(self) -> list[Message]:
        self._advance_schedule()
        delivered = super()._deliver_one_round()
        survivors: list[Message] = []
        for msg in delivered:
            if not (self._live[msg.src] and self._live[msg.dst]):
                self.messages_lost_to_crashes += 1
            elif self.schedule.link_omitted(msg.src, msg.dst, self.rounds):
                self.messages_omitted += 1
            else:
                survivors.append(msg)
        return survivors


class LossyNetwork(Network):
    """A network whose links lose messages independently with probability p.

    Loss happens at delivery time: a dropped message consumed its slot of
    the edge's per-round bandwidth (as a real corrupted frame would) but
    never reaches the receiver.  Drops are counted in ``messages_dropped``.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        drop_probability: float,
        capacity: int = 1,
        max_words: int = 8,
        seed=None,
        fault_seed=None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ProtocolError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        super().__init__(graph, capacity=capacity, max_words=max_words, seed=seed)
        self.drop_probability = drop_probability
        self.messages_dropped = 0
        self._fault_rng = make_rng(fault_seed if fault_seed is not None else self.rng)

    def _deliver_one_round(self) -> list[Message]:
        delivered = super()._deliver_one_round()
        if self.drop_probability == 0.0:
            return delivered
        survivors: list[Message] = []
        for msg in delivered:
            if self._fault_rng.random() < self.drop_probability:
                self.messages_dropped += 1
            else:
                survivors.append(msg)
        return survivors


class ReliableTokenWalkProtocol(Protocol):
    """Loss-tolerant naive walk: per-hop ACK + timeout retransmission.

    Protocol per hop: the holder samples a neighbor **once**, then sends
    ``(token, hop_index, remaining)`` and keeps retransmitting every
    ``timeout`` rounds until the receiver's ACK arrives.  Receivers
    deduplicate by hop index, so retransmissions are idempotent; sampling
    once per hop keeps the walk's law exact under any loss pattern.

    ``is_done`` requires the *source-visible* completion: the final holder
    floods nothing — it just stops — but the last ACK confirms delivery,
    at which point every hop has been both taken and acknowledged.
    """

    name = "reliable-token-walk"

    def __init__(self, source: int, length: int, *, timeout: int = 2) -> None:
        if timeout < 1:
            raise ProtocolError(f"timeout must be >= 1, got {timeout}")
        self.source = source
        self.length = length
        self.timeout = timeout
        self.destination: int | None = None
        self.trajectory: list[int] = [source]
        self.retransmissions = 0
        # Sender-side state for the single in-flight hop:
        # (sender, receiver, hop_index, remaining, last_sent_round)
        self._pending: tuple[int, int, int, int, int] | None = None
        self._acked_hops: set[int] = set()
        self._received_hops: set[int] = set()

    # ------------------------------------------------------------------
    def _launch_hop(self, api: ProtocolAPI, node: int, hop_index: int, remaining: int) -> None:
        if remaining == 0:
            self.destination = node
            self._pending = None
            return
        nxt = api.graph.random_neighbor(node, api.rng)  # sampled exactly once
        self.trajectory.append(nxt)
        self._pending = (node, nxt, hop_index, remaining, api.round)
        api.send(node, nxt, ("token", hop_index, remaining - 1), words=3)

    def on_start(self, api: ProtocolAPI) -> None:
        self._launch_hop(api, self.source, 0, self.length)

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:
        for msg in messages:
            kind = msg.payload[0]
            if kind == "token":
                _tag, hop_index, remaining = msg.payload
                api.send(node, msg.src, ("ack", hop_index), words=2)
                if hop_index in self._received_hops:
                    continue  # duplicate delivery of a retransmission
                self._received_hops.add(hop_index)
                self._launch_hop(api, node, hop_index + 1, remaining)
            elif kind == "ack":
                _tag, hop_index = msg.payload
                self._acked_hops.add(hop_index)
                if self._pending is not None and self._pending[2] == hop_index:
                    self._pending = None

    def maybe_retransmit(self, api: ProtocolAPI, *, force: bool = False) -> bool:
        """Resend the in-flight hop (if timed out, or always when forced)."""
        if self._pending is None:
            return False
        sender, receiver, hop_index, remaining, last_sent = self._pending
        if not force and api.round - last_sent < self.timeout:
            return False
        self._pending = (sender, receiver, hop_index, remaining, api.round)
        self.retransmissions += 1
        api.send(sender, receiver, ("token", hop_index, remaining - 1), words=3)
        return True

    def on_round_begin(self, api: ProtocolAPI) -> None:
        # Timeout-based retransmission while the network is busy (the ACK
        # takes 2 rounds when everything survives; beyond that, resend).
        if self.destination is None:
            self.maybe_retransmit(api)

    def is_done(self, api: ProtocolAPI) -> bool:
        if self.destination is not None:
            return True
        # The network has gone quiet while the walk is incomplete: in a
        # synchronous system that is a definite loss signal, so retransmit
        # immediately (the engine picks the resend up from the outbox).
        self.maybe_retransmit(api, force=True)
        return False


def reliable_walk(
    graph: Graph,
    source: int,
    length: int,
    *,
    drop_probability: float,
    seed=None,
    fault_seed=None,
    timeout: int = 2,
    max_rounds: int = 1_000_000,
) -> tuple[ReliableTokenWalkProtocol, LossyNetwork]:
    """Run a reliable token walk over a lossy network; returns (protocol, net)."""
    net = LossyNetwork(
        graph,
        drop_probability=drop_probability,
        seed=seed,
        fault_seed=fault_seed,
    )
    proto = ReliableTokenWalkProtocol(source, length, timeout=timeout)
    net.run(proto, max_rounds=max_rounds)
    if proto.destination is None:
        raise ProtocolError("reliable walk terminated without a destination (bug)")
    return proto, net
