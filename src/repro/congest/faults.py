"""Fault injection: lossy links and reliable token forwarding.

The paper closes (§5) with: "from a practical standpoint, it is important
to develop algorithms that are robust to failures and it would be nice to
extend our techniques to handle such node/edge failures."  This module
provides the substrate for that extension and one concrete robust
algorithm:

* :class:`LossyNetwork` — a :class:`~repro.congest.network.Network` whose
  links drop each delivered message independently with probability ``p``
  (crash-free but lossy links, the classic first failure model).  Only
  event-driven traffic is subject to loss — batch-charged fast paths model
  algorithms already proven, so fault experiments should run protocols.
* :class:`ReliableTokenWalkProtocol` — the naive walk made loss-tolerant
  with per-hop acknowledgements and timeout retransmission.  Crucially the
  retransmitted hop re-sends the *same* sampled neighbor, so reliability
  does not bias the walk's law: the endpoint distribution remains exactly
  ``P^ℓ`` (chi-square-verified in ``tests/test_faults.py``), only the
  round count inflates by ≈ ``1/(1−p)²`` (token and ack must both survive).
"""

from __future__ import annotations

from typing import Sequence

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.protocol import Protocol, ProtocolAPI
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.util.rng import make_rng

__all__ = ["LossyNetwork", "ReliableTokenWalkProtocol"]


class LossyNetwork(Network):
    """A network whose links lose messages independently with probability p.

    Loss happens at delivery time: a dropped message consumed its slot of
    the edge's per-round bandwidth (as a real corrupted frame would) but
    never reaches the receiver.  Drops are counted in ``messages_dropped``.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        drop_probability: float,
        capacity: int = 1,
        max_words: int = 8,
        seed=None,
        fault_seed=None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ProtocolError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        super().__init__(graph, capacity=capacity, max_words=max_words, seed=seed)
        self.drop_probability = drop_probability
        self.messages_dropped = 0
        self._fault_rng = make_rng(fault_seed if fault_seed is not None else self.rng)

    def _deliver_one_round(self) -> list[Message]:
        delivered = super()._deliver_one_round()
        if self.drop_probability == 0.0:
            return delivered
        survivors: list[Message] = []
        for msg in delivered:
            if self._fault_rng.random() < self.drop_probability:
                self.messages_dropped += 1
            else:
                survivors.append(msg)
        return survivors


class ReliableTokenWalkProtocol(Protocol):
    """Loss-tolerant naive walk: per-hop ACK + timeout retransmission.

    Protocol per hop: the holder samples a neighbor **once**, then sends
    ``(token, hop_index, remaining)`` and keeps retransmitting every
    ``timeout`` rounds until the receiver's ACK arrives.  Receivers
    deduplicate by hop index, so retransmissions are idempotent; sampling
    once per hop keeps the walk's law exact under any loss pattern.

    ``is_done`` requires the *source-visible* completion: the final holder
    floods nothing — it just stops — but the last ACK confirms delivery,
    at which point every hop has been both taken and acknowledged.
    """

    name = "reliable-token-walk"

    def __init__(self, source: int, length: int, *, timeout: int = 2) -> None:
        if timeout < 1:
            raise ProtocolError(f"timeout must be >= 1, got {timeout}")
        self.source = source
        self.length = length
        self.timeout = timeout
        self.destination: int | None = None
        self.trajectory: list[int] = [source]
        self.retransmissions = 0
        # Sender-side state for the single in-flight hop:
        # (sender, receiver, hop_index, remaining, last_sent_round)
        self._pending: tuple[int, int, int, int, int] | None = None
        self._acked_hops: set[int] = set()
        self._received_hops: set[int] = set()

    # ------------------------------------------------------------------
    def _launch_hop(self, api: ProtocolAPI, node: int, hop_index: int, remaining: int) -> None:
        if remaining == 0:
            self.destination = node
            self._pending = None
            return
        nxt = api.graph.random_neighbor(node, api.rng)  # sampled exactly once
        self.trajectory.append(nxt)
        self._pending = (node, nxt, hop_index, remaining, api.round)
        api.send(node, nxt, ("token", hop_index, remaining - 1), words=3)

    def on_start(self, api: ProtocolAPI) -> None:
        self._launch_hop(api, self.source, 0, self.length)

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:
        for msg in messages:
            kind = msg.payload[0]
            if kind == "token":
                _tag, hop_index, remaining = msg.payload
                api.send(node, msg.src, ("ack", hop_index), words=2)
                if hop_index in self._received_hops:
                    continue  # duplicate delivery of a retransmission
                self._received_hops.add(hop_index)
                self._launch_hop(api, node, hop_index + 1, remaining)
            elif kind == "ack":
                _tag, hop_index = msg.payload
                self._acked_hops.add(hop_index)
                if self._pending is not None and self._pending[2] == hop_index:
                    self._pending = None

    def maybe_retransmit(self, api: ProtocolAPI, *, force: bool = False) -> bool:
        """Resend the in-flight hop (if timed out, or always when forced)."""
        if self._pending is None:
            return False
        sender, receiver, hop_index, remaining, last_sent = self._pending
        if not force and api.round - last_sent < self.timeout:
            return False
        self._pending = (sender, receiver, hop_index, remaining, api.round)
        self.retransmissions += 1
        api.send(sender, receiver, ("token", hop_index, remaining - 1), words=3)
        return True

    def on_round_begin(self, api: ProtocolAPI) -> None:
        # Timeout-based retransmission while the network is busy (the ACK
        # takes 2 rounds when everything survives; beyond that, resend).
        if self.destination is None:
            self.maybe_retransmit(api)

    def is_done(self, api: ProtocolAPI) -> bool:
        if self.destination is not None:
            return True
        # The network has gone quiet while the walk is incomplete: in a
        # synchronous system that is a definite loss signal, so retransmit
        # immediately (the engine picks the resend up from the outbox).
        self.maybe_retransmit(api, force=True)
        return False


def reliable_walk(
    graph: Graph,
    source: int,
    length: int,
    *,
    drop_probability: float,
    seed=None,
    fault_seed=None,
    timeout: int = 2,
    max_rounds: int = 1_000_000,
) -> tuple[ReliableTokenWalkProtocol, LossyNetwork]:
    """Run a reliable token walk over a lossy network; returns (protocol, net)."""
    net = LossyNetwork(
        graph,
        drop_probability=drop_probability,
        seed=seed,
        fault_seed=fault_seed,
    )
    proto = ReliableTokenWalkProtocol(source, length, timeout=timeout)
    net.run(proto, max_rounds=max_rounds)
    if proto.destination is None:
        raise ProtocolError("reliable walk terminated without a destination (bug)")
    return proto, net
