"""Protocol interface for event-driven CONGEST executions.

A :class:`Protocol` expresses per-node behaviour: what each node sends at
wake-up and how it reacts to delivered messages.  The engine
(:class:`repro.congest.network.Network`) owns timing — it batches sends,
enforces per-edge bandwidth, and advances rounds — so protocol code never
sees or manipulates the clock.  This mirrors the paper's model: "all the
nodes wake up simultaneously at the beginning of round 1" and react to
messages arriving "at the end of the current round".

Protocols interact with the world only through :class:`ProtocolAPI`:

* ``api.send(src, dst, payload, words=1)`` — enqueue a message for the next
  round (``dst`` must neighbor ``src``).
* ``api.graph`` / ``api.rng`` — topology access and the protocol's RNG.
* ``api.round`` — current round number (read-only; for logging/asserts).

Local computation is free, per the model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.congest.message import Message
from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.congest.network import Network

__all__ = ["Protocol", "ProtocolAPI"]


class ProtocolAPI:
    """The capabilities handed to protocol callbacks by the engine."""

    def __init__(self, network: "Network", rng) -> None:
        self._network = network
        self.graph = network.graph
        self.rng = rng
        self._outbox: list[Message] = []

    @property
    def round(self) -> int:
        return self._network.rounds

    def send(self, src: int, dst: int, payload: Any, words: int = 1) -> None:
        """Queue a message from ``src`` to its neighbor ``dst``.

        Raises :class:`ProtocolError` when ``dst`` is not adjacent to
        ``src`` (CONGEST has no routing — only edge-local communication) or
        when the message is wider than the per-round bandwidth allows.
        """
        if words > self._network.max_words:
            raise ProtocolError(
                f"message of {words} words exceeds the engine's {self._network.max_words}-word"
                " bandwidth cap; split it across rounds"
            )
        if not self._network.are_adjacent(src, dst):
            raise ProtocolError(f"node {src} tried to message non-neighbor {dst}")
        self._outbox.append(Message(src=src, dst=dst, payload=payload, words=words))

    def drain_outbox(self) -> list[Message]:
        out, self._outbox = self._outbox, []
        return out


class Protocol:
    """Base class for event-driven protocols.

    Subclasses override some of:

    * :meth:`on_start` — called once before round 1; initial sends go here.
    * :meth:`on_receive` — called for each node that received messages in
      the round just completed.
    * :meth:`is_done` — polled after each round once no messages remain in
      flight; defaults to True (quiescence = termination).

    The engine guarantees that messages sent during ``on_receive`` in round
    ``r`` are delivered no earlier than round ``r+1``, and later if the edge
    is congested (FIFO per directed edge).
    """

    name = "protocol"

    def on_start(self, api: ProtocolAPI) -> None:  # noqa: B027 - optional hook
        """Initial sends, before any round has run."""

    def on_round_begin(self, api: ProtocolAPI) -> None:  # noqa: B027 - optional hook
        """Per-round tick before delivery — nodes act every round in the
        synchronous model, not only when messages arrive.  Sends made here
        are delivered at the end of the same round (they share it with
        sends from the previous round's ``on_receive``)."""

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:  # noqa: B027
        """React to the batch of messages ``node`` received this round."""

    def is_done(self, api: ProtocolAPI) -> bool:
        """Extra termination predicate checked when the network is quiet."""
        return True
