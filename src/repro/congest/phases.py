"""The registry of legal ledger phase names.

Every cost the :class:`~repro.congest.ledger.RoundLedger` attributes is
filed under a *phase* name, and the repo's accounting identities (request
deltas, the ``Σ attributed + maintain + churn + recovery = session delta``
balance, the golden-ledger freezes) all key on those names as plain
strings.  A typo'd name does not error — it silently opens a fresh phase
and the rounds leak out of whatever family a test or telemetry sum was
watching.  This module is the single place a phase name may be spelled:

* every constant below registers itself in :data:`ALL_PHASES`;
* production code imports the constant (never re-spells the string);
* the ``phase-registry`` rule of :mod:`repro.analysis` statically flags
  any raw phase literal under ``src/repro`` — unregistered literals are
  typos, registered ones should use the constant.

Families (:data:`PHASE_FAMILIES`) are the ``prefix`` arguments accepted by
:meth:`~repro.congest.ledger.RoundLedger.phase_total`: a family name such
as ``"pool-refill"`` may double as a plain phase (reactive refills charge
it directly) while also prefixing sub-phases (``"pool-refill/maintain"``).
"""

from __future__ import annotations

__all__ = [
    "ALL_PHASES",
    "BASELINE_POWER_ITERATION",
    "BASELINE_SETUP",
    "BATCH_SAMPLE",
    "GET_MORE_WALKS",
    "MH_SETUP",
    "MH_WALK",
    "MIXING_BUCKET_UPCAST",
    "MIXING_SETUP",
    "NAIVE",
    "NAIVE_PARALLEL",
    "NAIVE_TAIL",
    "PHASE1",
    "PHASE_FAMILIES",
    "POOL_REFILL",
    "POOL_REFILL_CHURN",
    "POOL_REFILL_MAINTAIN",
    "POOL_REFILL_SERVE",
    "REGENERATE",
    "REPORT",
    "RST_COVER_CHECK",
    "RST_PICK_EDGES",
    "RST_REGENERATE",
    "RST_SETUP",
    "SAMPLE_DESTINATION",
    "SERVE_FAMILY",
    "SERVE_RECOVERY",
    "SERVE_REPORT",
    "SERVE_SAMPLE",
    "SERVE_SETUP",
    "SERVE_STITCH_ROUTE",
    "SERVE_TAIL",
    "SETUP",
    "STITCH_ROUTE",
    "UNATTRIBUTED",
    "is_registered",
]

_REGISTRY: set[str] = set()


def _phase(name: str) -> str:
    """Declare ``name`` as a legal phase and return it."""
    _REGISTRY.add(name)
    return name


# -- Core walk phases (the paper's own decomposition) ----------------------

#: Phase 1: every node performs ⌈η·deg⌉ short walks (Algorithm 1, step 1).
PHASE1 = _phase("phase1")
#: GET-MORE-WALKS replenishment outside any pool (Algorithm 2).
GET_MORE_WALKS = _phase("get-more-walks")
#: Warm-up BFS + diameter estimate before stitching.
SETUP = _phase("setup")
#: Connector → root → destination routing of each stitched token.
STITCH_ROUTE = _phase("stitch-route")
#: Interleaved-sweep SAMPLE-DESTINATION draws of the engine batch path.
BATCH_SAMPLE = _phase("batch-sample")
#: The SAMPLE-DESTINATION primitive run standalone (Algorithm 3).
SAMPLE_DESTINATION = _phase("sample-destination")
#: Step-by-step baseline walk (also the λ ≥ ℓ short-query branch).
NAIVE = _phase("naive")
#: The < 2λ tail every stitched walk finishes with, step by step.
NAIVE_TAIL = _phase("naive-tail")
#: k independent naive walks advanced in lock-step (many-walks baseline).
NAIVE_PARALLEL = _phase("naive-parallel")
#: Destination → source report convergecast (height + k pipelined).
REPORT = _phase("report")
#: Trajectory regeneration replay (§ applications, Lemma 2.5 replay).
REGENERATE = _phase("regenerate")
#: Costs charged outside any ``with ledger.phase(...)`` block.
UNATTRIBUTED = _phase("unattributed")

# -- Pool refill family (engine/pool: request vs. background attribution) --

#: Reactive mid-request refills (dry connector during stitching).
POOL_REFILL = _phase("pool-refill")
#: Background watermark sweeps (PoolManager.maintain) — session cost,
#: excluded from request deltas.
POOL_REFILL_MAINTAIN = _phase("pool-refill/maintain")
#: Churn-driven shard regeneration after GraphDelta eviction.
POOL_REFILL_CHURN = _phase("pool-refill/churn")
#: Reactive refills inside a scheduler cohort sweep.
POOL_REFILL_SERVE = _phase("pool-refill/serve")

# -- Serving family (serve/scheduler cohort phases) ------------------------

#: Cohort setup BFS (shared tree build / λ policy warm-up).
SERVE_SETUP = _phase("serve/setup")
#: Cohort interleaved SAMPLE-DESTINATION sweeps.
SERVE_SAMPLE = _phase("serve/sample")
#: Cohort stitched-token routing.
SERVE_STITCH_ROUTE = _phase("serve/stitch-route")
#: Merged cross-request naive tails.
SERVE_TAIL = _phase("serve/tail")
#: Cross-request pipelined report convergecast (height + Σk − 1).
SERVE_REPORT = _phase("serve/report")
#: Crash/recovery cascades, slot truncation, parked-slot idle waits —
#: session failure cost, excluded from attribution.
SERVE_RECOVERY = _phase("serve/recovery")

# -- Application phases (apps/) --------------------------------------------

MH_SETUP = _phase("mh-setup")
MH_WALK = _phase("mh-walk")
MIXING_SETUP = _phase("mixing-setup")
MIXING_BUCKET_UPCAST = _phase("mixing-bucket-upcast")
BASELINE_SETUP = _phase("baseline-setup")
BASELINE_POWER_ITERATION = _phase("baseline-power-iteration")
RST_SETUP = _phase("rst-setup")
RST_COVER_CHECK = _phase("rst-cover-check")
RST_REGENERATE = _phase("rst-regenerate")
RST_PICK_EDGES = _phase("rst-pick-edges")

#: Every registered phase name (frozen once the module finishes loading).
ALL_PHASES: frozenset[str] = frozenset(_REGISTRY)

#: The ``"serve"`` family has no plain-phase member (every serve charge is a
#: sub-phase), so the prefix is registered here rather than via ``_phase``.
SERVE_FAMILY = "serve"

#: Legal ``prefix`` arguments to :meth:`RoundLedger.phase_total` — every
#: phase name (a family may be a plain phase too) plus pure prefixes.
PHASE_FAMILIES: frozenset[str] = frozenset(
    {SERVE_FAMILY} | {name.split("/", 1)[0] for name in ALL_PHASES}
)


def is_registered(name: str) -> bool:
    """True if ``name`` is a legal phase or family prefix."""
    return name in ALL_PHASES or name in PHASE_FAMILIES
