"""CONGEST-model substrate: engine, messages, ledger, and tree primitives."""

from repro.congest.faults import (
    FaultSchedule,
    FaultStep,
    FaultyNetwork,
    LossyNetwork,
    OmissionWindow,
    ReliableTokenWalkProtocol,
    reliable_walk,
)
from repro.congest.ledger import LedgerSnapshot, PhaseStats, RoundLedger
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.pipelines import PipelinedUpcastProtocol, pipelined_upcast
from repro.congest.primitives import (
    BfsFloodProtocol,
    BfsTree,
    BroadcastProtocol,
    ConvergecastProtocol,
    build_bfs_tree,
    charged_broadcast,
    charged_convergecast,
)
from repro.congest.protocol import Protocol, ProtocolAPI

__all__ = [
    "FaultSchedule",
    "FaultStep",
    "FaultyNetwork",
    "LossyNetwork",
    "OmissionWindow",
    "ReliableTokenWalkProtocol",
    "reliable_walk",
    "PipelinedUpcastProtocol",
    "pipelined_upcast",
    "LedgerSnapshot",
    "PhaseStats",
    "RoundLedger",
    "Message",
    "Network",
    "Protocol",
    "ProtocolAPI",
    "BfsTree",
    "BfsFloodProtocol",
    "ConvergecastProtocol",
    "BroadcastProtocol",
    "build_bfs_tree",
    "charged_broadcast",
    "charged_convergecast",
]
