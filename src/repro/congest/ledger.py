"""Round/message accounting for CONGEST executions.

The quantity every theorem in the paper bounds is the number of
*rounds*; the ledger is the single source of truth for it.  It also tracks
message counts and the worst per-edge congestion observed, broken down by
named phase (e.g. ``"phase1"``, ``"stitch"``, ``"sample-destination"``), so
benches can report exactly where the rounds went — mirroring the paper's
analysis, which bounds each phase separately and sums.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.congest.phases import UNATTRIBUTED
from repro.errors import WalkError

__all__ = ["LedgerSnapshot", "PhaseStats", "RoundLedger"]


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable point-in-time (or delta) view of a ledger.

    Produced by :meth:`RoundLedger.capture` (cumulative totals) and
    :meth:`RoundLedger.delta_since` (per-request accounting on a shared
    network: what one query cost between two captures).  ``max_congestion``
    is a running maximum, not additive, so a delta reports the value
    observed at capture time.
    """

    rounds: int
    messages: int
    max_congestion: int
    phase_rounds: dict[str, int] = field(default_factory=dict)
    phase_messages: dict[str, int] = field(default_factory=dict)


@dataclass
class PhaseStats:
    """Accumulated costs of one named phase."""

    rounds: int = 0
    messages: int = 0
    max_congestion: int = 0
    invocations: int = 0

    def merge_step(self, rounds: int, messages: int, congestion: int) -> None:
        self.rounds += rounds
        self.messages += messages
        self.max_congestion = max(self.max_congestion, congestion)


@dataclass
class RoundLedger:
    """Cumulative cost accounting across an algorithm execution.

    ``observer`` is the passive observability hook (``repro.obs.Probe``
    or anything with the same ``phase_pushed``/``phase_popped``/
    ``charged``/``delta_measured`` surface).  It defaults to ``None`` and
    every hook site is a single ``is not None`` check, so un-observed
    ledgers — the golden-ledger fast path — pay nothing.  Observers only
    *read* the ledger; they must never charge it.
    """

    rounds: int = 0
    messages: int = 0
    max_congestion: int = 0
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    observer: object | None = None
    _phase_stack: list[str] = field(default_factory=list)

    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else UNATTRIBUTED

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Attribute all costs charged inside the block to ``name``.

        Phases nest: costs inside an inner phase are attributed to the inner
        name only (the totals on the ledger always include everything).
        """
        stats = self.phases.setdefault(name, PhaseStats())
        stats.invocations += 1
        self._phase_stack.append(name)
        # Captured at entry so push/pop notifications stay symmetric even
        # if the observer is installed or swapped while the phase is open.
        obs = self.observer
        if obs is not None:
            obs.phase_pushed(name, self)
        try:
            yield stats
        finally:
            popped = self._phase_stack.pop()
            if popped != name:
                # Not an assert: under `python -O` asserts vanish and the
                # stack corruption would silently misattribute every
                # subsequent charge.
                raise WalkError(
                    f"phase stack corrupted: popped {popped!r} while closing {name!r}"
                )
            if obs is not None:
                obs.phase_popped(name, self)

    def charge(self, rounds: int, messages: int = 0, congestion: int = 0) -> None:
        """Record ``rounds`` rounds / ``messages`` messages in the current phase."""
        if rounds < 0 or messages < 0:
            raise ValueError("cannot charge negative cost")
        self.rounds += rounds
        self.messages += messages
        self.max_congestion = max(self.max_congestion, congestion)
        name = self.current_phase
        self.phases.setdefault(name, PhaseStats()).merge_step(rounds, messages, congestion)
        obs = self.observer
        if obs is not None:
            obs.charged(name, rounds, messages, congestion)

    def phase_rounds(self, name: str) -> int:
        stats = self.phases.get(name)
        return stats.rounds if stats else 0

    def phase_total(self, prefix: str) -> int:
        """Rounds of a phase *family*: ``prefix`` plus any ``prefix/sub``.

        Sub-phases are plain phase names spelled ``"family/detail"`` (e.g.
        ``"pool-refill"`` for reactive dry-connector refills vs.
        ``"pool-refill/maintain"`` for background watermark sweeps); this
        sums the family so callers asking "what did refilling cost overall"
        need not know the attribution split.
        """
        marker = prefix + "/"
        return sum(
            stats.rounds
            for name, stats in self.phases.items()
            if name == prefix or name.startswith(marker)
        )

    def capture(self) -> LedgerSnapshot:
        """Freeze the cumulative totals (for later :meth:`delta_since`)."""
        return LedgerSnapshot(
            rounds=self.rounds,
            messages=self.messages,
            max_congestion=self.max_congestion,
            phase_rounds={k: v.rounds for k, v in self.phases.items()},
            phase_messages={k: v.messages for k, v in self.phases.items()},
        )

    def delta_since(self, snapshot: LedgerSnapshot) -> LedgerSnapshot:
        """Costs accrued since ``snapshot``, with zero-delta phases dropped.

        This is how per-request accounting works on a *shared* network:
        the engine captures before serving a query and attributes the
        difference to it, so result ``rounds``/``phase_rounds`` stay
        per-request even though the ledger keeps one global total.
        """
        phase_rounds: dict[str, int] = {}
        phase_messages: dict[str, int] = {}
        for name, stats in self.phases.items():
            dr = stats.rounds - snapshot.phase_rounds.get(name, 0)
            dm = stats.messages - snapshot.phase_messages.get(name, 0)
            if dr or dm:
                phase_rounds[name] = dr
                phase_messages[name] = dm
        delta = LedgerSnapshot(
            rounds=self.rounds - snapshot.rounds,
            messages=self.messages - snapshot.messages,
            max_congestion=self.max_congestion,
            phase_rounds=phase_rounds,
            phase_messages=phase_messages,
        )
        obs = self.observer
        if obs is not None:
            obs.delta_measured(self, snapshot, delta)
        return delta

    def snapshot(self) -> dict[str, int]:
        """Flat summary used by benches and reports."""
        out = {"rounds": self.rounds, "messages": self.messages, "max_congestion": self.max_congestion}
        for name, stats in sorted(self.phases.items()):
            out[f"rounds[{name}]"] = stats.rounds
        return out

    def __repr__(self) -> str:
        per_phase = ", ".join(f"{k}={v.rounds}" for k, v in sorted(self.phases.items()))
        return f"RoundLedger(rounds={self.rounds}, messages={self.messages}, phases=[{per_phase}])"
