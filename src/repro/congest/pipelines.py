"""Pipelined upcast: move many items to the root in height + k − 1 rounds.

Several charged costs in the library (MANY-RANDOM-WALKS' destination
reports, the mixing estimator's bucket-count recovery) rely on the classic
CONGEST pipelining fact: ``k`` constant-size items spread over a BFS tree
reach the root in ``height + k − 1`` rounds, because each tree edge can
forward one item per round and items stream behind each other.  This
module implements that primitive as a real protocol so the charge formulas
elsewhere are *validated by measurement* (``tests/test_pipelines.py``)
rather than asserted.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.primitives import BfsTree
from repro.congest.protocol import Protocol, ProtocolAPI
from repro.errors import ProtocolError

__all__ = ["PipelinedUpcastProtocol", "pipelined_upcast"]


class PipelinedUpcastProtocol(Protocol):
    """Stream every node's items up a BFS tree, one item per edge per round.

    Each node keeps a FIFO of items to forward (its own plus everything
    received from children) and pushes one to its parent per round.  The
    root collects all items in arrival order.
    """

    name = "pipelined-upcast"

    def __init__(self, tree: BfsTree, items: Sequence[Sequence[Any]], *, words: int = 2) -> None:
        if len(items) != tree.n:
            raise ProtocolError("items must provide one (possibly empty) list per node")
        self.tree = tree
        self.words = words
        self.collected: list[Any] = list(items[tree.root])
        self._queues: list[deque[Any]] = [deque(node_items) for node_items in items]
        self._queues[tree.root].clear()
        self.expected = sum(len(node_items) for i, node_items in enumerate(items) if i != tree.root)
        self.received_at_root = 0

    def _pump(self, api: ProtocolAPI, node: int) -> None:
        if node == self.tree.root or not self._queues[node]:
            return
        item = self._queues[node].popleft()
        api.send(node, self.tree.parent[node], ("up", item), words=self.words)

    def _pump_all(self, api: ProtocolAPI) -> None:
        for node in range(self.tree.n):
            self._pump(api, node)

    def on_start(self, api: ProtocolAPI) -> None:
        self._pump_all(api)

    def on_round_begin(self, api: ProtocolAPI) -> None:
        # Every round, every node streams its next queued item upward —
        # this is what makes the height + k − 1 pipelining bound real.
        self._pump_all(api)

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:
        for msg in messages:
            item = msg.payload[1]
            if node == self.tree.root:
                self.collected.append(item)
                self.received_at_root += 1
            else:
                self._queues[node].append(item)

    def is_done(self, api: ProtocolAPI) -> bool:
        if self.received_at_root >= self.expected:
            return True
        # Quiet but incomplete should be impossible (any nonempty queue
        # pumps at round begin); kick defensively rather than deadlock.
        self._pump_all(api)
        return False


def pipelined_upcast(
    network: Network,
    tree: BfsTree,
    items: Sequence[Sequence[Any]],
    *,
    words: int = 2,
    max_rounds: int = 1_000_000,
) -> tuple[list[Any], int]:
    """Run the upcast; returns (items collected at root, rounds used)."""
    proto = PipelinedUpcastProtocol(tree, items, words=words)
    rounds = network.run(proto, max_rounds=max_rounds)
    return proto.collected, rounds
