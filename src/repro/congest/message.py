"""Message type for the CONGEST engine.

A CONGEST round lets a node push one ``O(log n)``-bit message through each
incident edge.  We measure message size in *words*, where one word is one
``O(log n)``-bit quantity (a node ID, a counter, a length).  A message of
``w ≤ max_words`` words still counts as a single ``O(log n)``-bit message
(constant number of words); anything wider is rejected by the engine — a
protocol that needs to move more data must split it across rounds itself,
exactly as a real CONGEST algorithm would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One in-flight message.

    Attributes
    ----------
    src, dst:
        Endpoint node IDs; ``dst`` must be a neighbor of ``src``.
    payload:
        Arbitrary (hashable or not) protocol data.  The engine never
        inspects it; ``words`` is the declared size.
    words:
        Number of ``O(log n)``-bit words the payload occupies on the wire.
    round_sent:
        Round in which the sender enqueued the message (set by the engine).
    """

    src: int
    dst: int
    payload: Any
    words: int = 1
    round_sent: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.words < 1:
            raise ValueError(f"message must occupy at least one word, got {self.words}")
