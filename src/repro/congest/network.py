"""The synchronous CONGEST engine.

This is the substrate every distributed algorithm in the library runs on.
It models the system of Section 1.1 of the paper:

* communication happens in synchronous *rounds*;
* in each round, each directed edge carries at most ``capacity`` messages of
  at most ``max_words`` words each (one ``O(log n)``-bit message per edge per
  round in the standard model, i.e. ``capacity=1``);
* local computation is free.

Two execution styles share one round/ledger namespace:

1. **Event-driven protocols** (:meth:`Network.run`) — per-node callbacks
   with FIFO queueing on congested edges.  Used for BFS construction,
   convergecast, broadcast, and the naive walk.
2. **Batch steps** (:meth:`Network.deliver_step`) — an algorithm hands the
   engine the full set of directed-edge traversals one logical iteration
   needs; the engine charges ``ceil(max-per-edge-load / capacity)`` rounds,
   which is exactly the congestion quantity bounded in the paper's
   Lemma 2.1 ("any iteration could require more than 1 round").  Used for
   the massively parallel short-walk phases where per-message callbacks
   would be needless overhead.

Both styles draw rounds from the same counter, so a composite algorithm
(e.g. SINGLE-RANDOM-WALK = batch Phase 1 + protocol-driven BFS sweeps +
batch stitching) reports one faithful total.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable

import numpy as np

from repro.congest.ledger import RoundLedger
from repro.congest.message import Message
from repro.congest.protocol import Protocol, ProtocolAPI
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.util.rng import make_rng

__all__ = ["Network"]


class Network:
    """A synchronous message-passing network over a :class:`Graph`.

    Parameters
    ----------
    graph:
        Topology.  Directed-edge identity uses the graph's CSR slots.
    capacity:
        Messages per directed edge per round (standard CONGEST: 1).
    max_words:
        Maximum words per message; a word is one ``O(log n)``-bit quantity.
        Default 8 admits constant-size payloads while rejecting accidental
        bulk transfer in one message.
    seed:
        Seed for the engine RNG handed to protocols (also accepts a
        :class:`numpy.random.Generator`).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        capacity: int = 1,
        max_words: int = 8,
        seed=None,
    ) -> None:
        if capacity < 1:
            raise ProtocolError(f"capacity must be >= 1, got {capacity}")
        if max_words < 1:
            raise ProtocolError(f"max_words must be >= 1, got {max_words}")
        self.graph = graph
        self.capacity = capacity
        self.max_words = max_words
        self.rng = make_rng(seed)
        self.ledger = RoundLedger()
        # Telemetry: total retransmissions reported by protocols run on
        # this network (protocols expose a `retransmissions` counter, e.g.
        # ReliableTokenWalkProtocol); aggregated here so engine/scheduler
        # stats can surface them without holding protocol objects.
        self.retransmissions_seen = 0
        # Optional congestion-cartography sink (repro.obs.heatmap).  When
        # attached, every deliver/charge path stages its per-edge message
        # attribution immediately before charging the ledger; detached, each
        # site pays exactly one `is not None` test.
        self.heatmap = None
        self._pair_slot_index: tuple[np.ndarray, np.ndarray] | None = None
        # FIFO queue per directed edge, keyed by (src, dst).  Multi-edges
        # between the same pair pool their bandwidth, which matches the
        # multigraph-bandwidth equivalence used in Section 3.2.
        self._queues: dict[tuple[int, int], deque[Message]] = defaultdict(deque)
        self._build_multiplicity()

    def _build_multiplicity(self) -> None:
        # Directed adjacency with multiplicity, as sorted (u*n + v) keys —
        # built vectorized from the edge array; queries binary-search it.
        graph = self.graph
        ea = graph.edge_array
        if len(ea):
            u, v = ea[:, 0], ea[:, 1]
            non_loop = u != v
            keys = np.concatenate([u * graph.n + v, v[non_loop] * graph.n + u[non_loop]])
            self._mult_keys, self._mult_counts = np.unique(keys, return_counts=True)
        else:
            self._mult_keys = np.empty(0, dtype=np.int64)
            self._mult_counts = np.empty(0, dtype=np.int64)

    def refresh_topology(self) -> None:
        """Re-derive adjacency tables after the graph's edge set changed.

        Called by the churn cascade right after
        :meth:`~repro.graphs.graph.Graph.apply_delta` rebuilt the CSR
        arrays.  Only derived lookup state is rebuilt — the ledger, RNG,
        and round counters carry straight across the topology event (churn
        happens *between* rounds of one continuing execution).  Refusing
        to re-key in-flight messages is deliberate: protocols run to
        quiescence before control returns to the caller, so a non-empty
        queue here means a protocol was abandoned mid-run.
        """
        if any(self._queues.values()):
            raise ProtocolError("cannot change topology with messages in flight")
        self._queues.clear()
        self._build_multiplicity()
        self._pair_slot_index = None  # slot ids re-keyed by the churn remap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Total rounds consumed so far (the paper's complexity measure)."""
        return self.ledger.rounds

    @property
    def messages_sent(self) -> int:
        return self.ledger.messages

    def are_adjacent(self, u: int, v: int) -> bool:
        return self.edge_multiplicity(u, v) > 0

    def edge_multiplicity(self, u: int, v: int) -> int:
        """Number of parallel edges carrying ``u -> v`` traffic."""
        key = u * self.graph.n + v
        i = int(np.searchsorted(self._mult_keys, key))
        if i < len(self._mult_keys) and int(self._mult_keys[i]) == key:
            return int(self._mult_counts[i])
        return 0

    def phase(self, name: str):
        """Attribute subsequent costs to phase ``name`` (context manager)."""
        return self.ledger.phase(name)

    # ------------------------------------------------------------------
    # Heatmap attribution support
    # ------------------------------------------------------------------
    def _pair_index(self) -> tuple[np.ndarray, np.ndarray]:
        # Lazy (sorted pair-key, representative-slot) index: the first CSR
        # slot (stable argsort) represents each directed (src, dst) pair,
        # so parallel edges fold onto one canonical slot.  Invalidated by
        # refresh_topology().
        idx = self._pair_slot_index
        if idx is None:
            graph = self.graph
            keys = graph.csr_source.astype(np.int64) * graph.n + graph.csr_target
            order = np.argsort(keys, kind="stable").astype(np.int64)
            idx = self._pair_slot_index = (keys[order], order)
        return idx

    def edge_slots_for_pairs(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Representative directed CSR slot per (src, dst) pair; -1 if absent."""
        keys_sorted, order = self._pair_index()
        keys = np.asarray(sources, dtype=np.int64) * self.graph.n + np.asarray(
            targets, dtype=np.int64
        )
        if keys_sorted.size == 0:
            return np.full(keys.shape, -1, dtype=np.int64)
        pos = np.minimum(np.searchsorted(keys_sorted, keys), keys_sorted.size - 1)
        return np.where(keys_sorted[pos] == keys, order[pos], -1)

    def _stage_pairs(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        messages: np.ndarray,
        congestion: np.ndarray,
    ) -> None:
        """Locate pairs onto slots and stage them on the attached heatmap.

        Stray pairs (no live slot — e.g. a replay hop across a just-deleted
        edge) fold sum-preservingly onto the first located slot so the
        conservation identity survives; a batch with no located slot at all
        stays unstaged and lands in the sink's residual bucket.
        """
        slots = self.edge_slots_for_pairs(sources, targets)
        bad = slots < 0
        if bad.any():
            good = ~bad
            if not good.any():
                return
            stray_messages = int(messages[bad].sum())
            stray_load = int(congestion[bad].max())
            slots = slots[good]
            messages = messages[good].copy()
            congestion = congestion[good].copy()
            messages[0] += stray_messages
            congestion[0] = max(congestion[0], stray_load)
        self.heatmap.stage_edges(slots, messages, congestion)

    # ------------------------------------------------------------------
    # Batch-step execution
    # ------------------------------------------------------------------
    def _as_slot_array(self, slots: np.ndarray | Iterable[int]) -> np.ndarray:
        """Coerce to an int64 slot array and validate the CSR slot range."""
        arr = np.asarray(list(slots) if not isinstance(slots, np.ndarray) else slots, dtype=np.int64)
        if arr.size and (np.any(arr < 0) or np.any(arr >= self.graph.n_slots)):
            raise ProtocolError("slot index out of range")
        return arr

    def _check_words(self, words: int) -> None:
        if words > self.max_words:
            raise ProtocolError(f"message of {words} words exceeds the {self.max_words}-word cap")

    def _charge_iteration(self, n_messages: int, congestion: int) -> int:
        """Charge one batch iteration: ``max(1, ceil(congestion/capacity))``."""
        rounds = max(1, -(-congestion // self.capacity))  # ceil division
        self.ledger.charge(rounds, messages=n_messages, congestion=congestion)
        return rounds

    def deliver_step(
        self,
        slots: np.ndarray | Iterable[int],
        *,
        aggregate: bool = False,
        words: int = 1,
    ) -> int:
        """Charge one logical iteration that pushes a message along each slot.

        ``slots`` are directed-edge CSR slot indices, one per message.  The
        iteration costs ``max(1, ceil(L / capacity))`` rounds where ``L`` is
        the heaviest per-edge load — the congestion measure from the
        paper's analysis.  With ``aggregate=True`` all messages sharing a
        directed edge collapse into a single *(payload, count)* message, the
        trick GET-MORE-WALKS uses ("only the count of the number of walks
        along an edge are passed"), making every iteration cost one round.

        Returns the number of rounds charged.
        """
        slot_arr = self._as_slot_array(slots)
        if slot_arr.size == 0:
            return 0
        self._check_words(words)
        counts = np.bincount(slot_arr, minlength=0)
        heatmap = self.heatmap
        if aggregate:
            n_messages = int(np.count_nonzero(counts))
            congestion = 1
            if heatmap is not None:
                heatmap.stage_counts(np.minimum(counts, 1), n_messages, congestion)
        else:
            n_messages = int(slot_arr.size)
            congestion = int(counts.max())
            if heatmap is not None:
                heatmap.stage_counts(counts, n_messages, congestion)
        return self._charge_iteration(n_messages, congestion)

    def deliver_step_grouped(
        self,
        slots: np.ndarray | Iterable[int],
        groups: np.ndarray | Iterable[int],
        *,
        words: int = 1,
    ) -> int:
        """Charge one iteration whose messages aggregate per (edge, group).

        The multi-source generalization of ``deliver_step(aggregate=True)``:
        ``groups[i]`` names the aggregation class of message ``i`` (for
        batched GET-MORE-WALKS, the walk's source ID).  Tokens of the *same*
        group crossing the same directed edge collapse into one
        *(group payload, count)* message — the paper's count-aggregation
        trick — while tokens of *different* groups stay distinct messages,
        so the per-edge load is the number of distinct groups on that edge.
        With a single group this charges exactly what
        ``deliver_step(aggregate=True)`` does.

        Returns the number of rounds charged.
        """
        slot_arr = self._as_slot_array(slots)
        group_arr = np.asarray(list(groups) if not isinstance(groups, np.ndarray) else groups, dtype=np.int64)
        if slot_arr.shape != group_arr.shape:
            raise ProtocolError("slots and groups must have equal length")
        if slot_arr.size == 0:
            return 0
        self._check_words(words)
        span = int(group_arr.max()) - int(group_arr.min()) + 1
        keys = slot_arr * span + (group_arr - int(group_arr.min()))
        pair_slots = np.unique(keys) // span
        used, per_edge = np.unique(pair_slots, return_counts=True)
        heatmap = self.heatmap
        if heatmap is not None:
            heatmap.stage_edges(used, per_edge, per_edge)
        return self._charge_iteration(int(pair_slots.size), int(per_edge.max()))

    def deliver_pairs(
        self,
        sources: np.ndarray | Iterable[int],
        targets: np.ndarray | Iterable[int],
        *,
        aggregate: bool = False,
        words: int = 1,
    ) -> int:
        """Like :meth:`deliver_step` but keyed by (src, dst) node pairs.

        Used when the caller has hop endpoints rather than CSR slots (walk
        regeneration re-sends along recorded trajectories).  Parallel edges
        between one node pair pool bandwidth here — identical to the
        event-driven engine's per-pair FIFO queues.
        """
        src = np.asarray(list(sources) if not isinstance(sources, np.ndarray) else sources, dtype=np.int64)
        dst = np.asarray(list(targets) if not isinstance(targets, np.ndarray) else targets, dtype=np.int64)
        if src.shape != dst.shape:
            raise ProtocolError("sources and targets must have equal length")
        if src.size == 0:
            return 0
        self._check_words(words)
        keys = src * self.graph.n + dst
        pair_keys, counts = np.unique(keys, return_counts=True)
        if aggregate:
            n_messages = int(len(counts))
            congestion = 1
        else:
            n_messages = int(src.size)
            congestion = int(counts.max())
        if self.heatmap is not None:
            n = self.graph.n
            per_pair = (
                np.ones(pair_keys.size, dtype=np.int64) if aggregate else counts
            )
            self._stage_pairs(pair_keys // n, pair_keys % n, per_pair, per_pair)
        return self._charge_iteration(n_messages, congestion)

    def deliver_sequential(
        self,
        hop_count: int,
        *,
        messages_per_hop: int = 1,
        path: np.ndarray | Iterable[int] | None = None,
    ) -> int:
        """Charge a token travelling ``hop_count`` hops, one hop per round.

        Convenience for walk tokens and path routing, where congestion is
        structurally impossible (a single message moves per round).

        ``path`` optionally names the node sequence travelled (at least
        ``hop_count + 1`` nodes, hop ``i`` crossing ``path[i] → path[i+1]``)
        so an attached heatmap can attribute the traffic per edge; it is
        ignored — never even materialized by callers — when no heatmap is
        attached, and a too-short path simply leaves the charge in the
        sink's residual bucket.
        """
        if hop_count < 0:
            raise ProtocolError("hop_count must be non-negative")
        if hop_count:
            if self.heatmap is not None and path is not None:
                nodes = np.asarray(
                    list(path) if not isinstance(path, np.ndarray) else path,
                    dtype=np.int64,
                )
                if nodes.size > hop_count:
                    keys = nodes[:hop_count] * self.graph.n + nodes[1 : hop_count + 1]
                    pair_keys, hops = np.unique(keys, return_counts=True)
                    n = self.graph.n
                    self._stage_pairs(
                        pair_keys // n,
                        pair_keys % n,
                        hops * messages_per_hop,
                        np.ones(pair_keys.size, dtype=np.int64),
                    )
            self.ledger.charge(hop_count, messages=hop_count * messages_per_hop, congestion=1)
        return hop_count

    # ------------------------------------------------------------------
    # Event-driven execution
    # ------------------------------------------------------------------
    def run(self, protocol: Protocol, *, max_rounds: int = 1_000_000, rng=None) -> int:
        """Execute ``protocol`` until quiescence; return rounds consumed.

        Messages queue FIFO per directed edge; at most ``capacity`` of them
        are delivered per round per edge.  The run ends when no messages are
        queued and ``protocol.is_done()`` holds.  Raises
        :class:`ProtocolError` if ``max_rounds`` elapse first (protocol
        bug or genuinely divergent algorithm).
        """
        api = ProtocolAPI(self, make_rng(rng) if rng is not None else self.rng)
        start_round = self.rounds
        protocol.on_start(api)
        self._enqueue(api.drain_outbox())

        rounds_used = 0
        while True:
            if not any(self._queues.values()):
                done = protocol.is_done(api)
                # is_done may queue recovery traffic (e.g. retransmissions
                # after message loss); pick it up before judging deadlock.
                self._enqueue(api.drain_outbox())
                if done:
                    break
                if not any(self._queues.values()):
                    raise ProtocolError(
                        f"protocol {protocol.name!r} is idle but not done (deadlock) "
                        f"after {rounds_used} rounds"
                    )
            if rounds_used >= max_rounds:
                raise ProtocolError(
                    f"protocol {protocol.name!r} exceeded the {max_rounds}-round budget"
                )
            protocol.on_round_begin(api)
            self._enqueue(api.drain_outbox())
            delivered = self._deliver_one_round()
            rounds_used += 1
            inbox: dict[int, list[Message]] = defaultdict(list)
            for msg in delivered:
                inbox[msg.dst].append(msg)
            for node in sorted(inbox):
                protocol.on_receive(api, node, inbox[node])
            self._enqueue(api.drain_outbox())
        self.retransmissions_seen += int(getattr(protocol, "retransmissions", 0))
        return self.rounds - start_round

    def _enqueue(self, messages: list[Message]) -> None:
        for msg in messages:
            self._queues[(msg.src, msg.dst)].append(msg)

    def _deliver_one_round(self) -> list[Message]:
        """Pop up to ``capacity`` messages from each directed edge; charge 1 round."""
        delivered: list[Message] = []
        congestion = 0
        heatmap = self.heatmap
        staged: list[tuple[int, int, int, int]] | None = [] if heatmap is not None else None
        for key in list(self._queues):
            queue = self._queues[key]
            load = len(queue)
            congestion = max(congestion, load)
            take = min(self.capacity, load)
            if staged is not None and take:
                staged.append((key[0], key[1], take, load))
            for _ in range(take):
                delivered.append(queue.popleft())
            if not queue:
                del self._queues[key]
        if staged:
            cols = np.asarray(staged, dtype=np.int64)
            self._stage_pairs(cols[:, 0], cols[:, 1], cols[:, 2], cols[:, 3])
        self.ledger.charge(1, messages=len(delivered), congestion=congestion)
        return delivered
