"""Distributed primitives: BFS-tree construction, convergecast, broadcast.

These are the O(D)-round building blocks the paper's subroutines lean on —
SAMPLE-DESTINATION is literally "three sweeps over a BFS tree" (Algorithm 3)
and the RST/mixing applications use tree aggregation for cover checks and
bucket counts.

Each primitive exists in two forms that are *proved equivalent by tests*:

* an **event-driven protocol** executed message-by-message on the
  :class:`~repro.congest.network.Network` engine (the ground truth), and
* a **charged fast path** that computes the same result centrally and
  charges the identical round/message cost to the ledger.

The fast paths exist because algorithms such as SINGLE-RANDOM-WALK invoke
`O(ℓ/λ)` tree sweeps whose message patterns are deterministic given the
tree; re-simulating identical floods adds nothing but wall-clock time.
``Network`` totals are the same either way (see
``tests/test_congest_primitives.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.protocol import Protocol, ProtocolAPI
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.util.contracts import charged_fast_path

__all__ = [
    "BfsTree",
    "BfsFloodProtocol",
    "ConvergecastProtocol",
    "BroadcastProtocol",
    "build_bfs_tree",
    "charged_convergecast",
    "charged_broadcast",
    "stage_tree_funnel",
]


@dataclass
class BfsTree:
    """A rooted BFS tree produced by the flood protocol.

    ``parent[root] == root``; ``depth`` is hop distance from the root;
    ``height`` is the eccentricity of the root (max depth).
    """

    root: int
    parent: list[int]
    depth: list[int]
    children: list[list[int]] = field(repr=False)
    build_rounds: int = 0
    build_messages: int = 0

    @property
    def height(self) -> int:
        return max(self.depth)

    @property
    def n(self) -> int:
        return len(self.parent)

    def path_to_root(self, node: int) -> list[int]:
        """Tree path ``node -> ... -> root`` (inclusive both ends)."""
        path = [node]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
            if len(path) > self.n:
                raise ProtocolError("parent pointers contain a cycle")
        return path

    def nodes_by_depth_desc(self) -> list[int]:
        """All nodes ordered deepest-first (convergecast schedule order)."""
        return sorted(range(self.n), key=lambda v: -self.depth[v])


class BfsFloodProtocol(Protocol):
    """Distributed BFS-tree construction by flooding.

    Round 1: the root sends ``explore`` to every neighbor.  A node adopts as
    parent the lowest-ID sender among the explores it receives in the first
    round any arrive, then floods its remaining neighbors.  Completes in
    ``ecc(root)`` rounds — the ``O(D)`` the paper charges for Sweep 1 of
    SAMPLE-DESTINATION.
    """

    name = "bfs-flood"

    def __init__(self, root: int) -> None:
        self.root = root
        self.parent: dict[int, int] = {root: root}
        self.depth: dict[int, int] = {root: 0}

    def on_start(self, api: ProtocolAPI) -> None:
        for u in sorted(set(int(x) for x in api.graph.neighbors(self.root)) - {self.root}):
            api.send(self.root, u, ("explore", 0))

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:
        if node in self.parent:
            return
        explores = [m for m in messages if m.payload[0] == "explore"]
        if not explores:
            return
        best = min(explores, key=lambda m: (m.payload[1], m.src))
        self.parent[node] = best.src
        self.depth[node] = best.payload[1] + 1
        for u in sorted(set(int(x) for x in api.graph.neighbors(node)) - {node, best.src}):
            api.send(node, u, ("explore", self.depth[node]))

    def tree(self, n: int) -> BfsTree:
        if len(self.parent) != n:
            raise ProtocolError(
                f"BFS reached {len(self.parent)}/{n} nodes; graph must be connected"
            )
        parent = [self.parent[v] for v in range(n)]
        depth = [self.depth[v] for v in range(n)]
        children: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            if v != self.root:
                children[parent[v]].append(v)
        return BfsTree(root=self.root, parent=parent, depth=depth, children=children)


def _vectorized_bfs(
    graph: Graph, root: int, *, allow_unreached: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """CSR frontier BFS: ``(depth, parent)`` with lowest-ID parent ties.

    Matches :class:`BfsFloodProtocol` exactly — a node's parent is the
    lowest-ID neighbor one level closer to the root (the flood's first-round
    tie-break).  Raises :class:`ProtocolError` on disconnected graphs with
    the protocol's message, unless ``allow_unreached`` (the crash-recovery
    regime, where crashed nodes are isolated by construction) — unreached
    nodes then keep depth ``-1`` and stay out of the tree.
    """
    n = graph.n
    depth = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, root, dtype=np.int64)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    reached = 1
    level = 0
    while frontier.size:
        starts = graph.indptr[frontier]
        counts = graph.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all outgoing slots of the frontier in one shot.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        slots = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)
        targets = graph.csr_target[slots]
        senders = np.repeat(frontier, counts)
        fresh = depth[targets] == -1
        if not fresh.any():
            break
        cand_t = targets[fresh]
        cand_s = senders[fresh]
        # Lowest-ID sender per discovered node: sort by (node, sender) and
        # keep each group's first entry (reduceat-style min per segment).
        order = np.lexsort((cand_s, cand_t))
        cand_t = cand_t[order]
        cand_s = cand_s[order]
        first = np.ones(len(cand_t), dtype=bool)
        first[1:] = cand_t[1:] != cand_t[:-1]
        frontier = cand_t[first]
        parent[frontier] = cand_s[first]
        level += 1
        depth[frontier] = level
        reached += int(frontier.size)
    if reached != n and not allow_unreached:
        raise ProtocolError(f"BFS reached {reached}/{n} nodes; graph must be connected")
    return depth, parent


def _flood_cost(graph: Graph, root: int, depth: np.ndarray) -> tuple[int, int]:
    """Exact ``(rounds, messages)`` the event-driven flood would charge.

    Every node that joins the tree at depth ``d`` sends one ``explore`` to
    each distinct neighbor other than itself and its parent (the root skips
    only itself); those sends are delivered — and the run's last round
    happens — one round after the deepest sender adopts.  One message per
    directed node pair means queues never exceed one, so congestion is 1
    every delivering round, exactly as the engine observes.
    """
    n = graph.n
    non_loop = graph.csr_source != graph.csr_target
    pair_keys = np.unique(graph.csr_source[non_loop] * n + graph.csr_target[non_loop])
    distinct = np.bincount(pair_keys // n, minlength=n)
    sends = distinct - 1  # every non-root node skips its parent...
    sends[root] = distinct[root]  # ...the root skips only itself
    messages = int(sends.sum())
    rounds = 1 + int(depth[sends > 0].max()) if messages else 0
    return rounds, messages


def _stage_flood(network: Network, tree: BfsTree) -> None:
    """Stage the flood's per-edge explore sends onto the attached heatmap.

    Mirrors :func:`_flood_cost`'s enumeration: every joining node explores
    each distinct non-loop neighbor except its parent (the root skips only
    itself), one message per directed pair.  The pair arrays are cached on
    the tree so repeated cache-hit charges stay cheap.  Any count drift
    versus the recorded ``build_messages`` (protocol-built trees, recovery
    trees with unreached nodes) folds onto the first pair so the staged sum
    always equals the charge; an irreconcilable tree stays unstaged and the
    charge lands in the sink's residual bucket instead.
    """
    if network.heatmap is None or tree.build_messages <= 0:
        return
    graph = network.graph
    if tree.n != graph.n:
        return
    cached = getattr(tree, "_flood_stage", None)
    if cached is None:
        n = graph.n
        non_loop = graph.csr_source != graph.csr_target
        pair_keys = np.unique(
            graph.csr_source[non_loop].astype(np.int64) * n + graph.csr_target[non_loop]
        )
        src = pair_keys // n
        dst = pair_keys % n
        parent = np.asarray(tree.parent, dtype=np.int64)
        keep = (src == tree.root) | (dst != parent[src])
        cached = (src[keep], dst[keep])
        tree._flood_stage = cached  # type: ignore[attr-defined]
    src, dst = cached
    if src.size == 0:
        return
    messages = np.ones(src.size, dtype=np.int64)
    drift = tree.build_messages - src.size
    if drift:
        if messages[0] + drift < 0:
            return
        messages[0] += drift
    network._stage_pairs(src, dst, messages, np.ones(src.size, dtype=np.int64))


def _tree_edge_arrays(tree: BfsTree) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``(non_root_nodes, their_parents)`` arrays for edge staging."""
    cached = getattr(tree, "_tree_edges", None)
    if cached is None:
        nodes = np.arange(tree.n, dtype=np.int64)
        nodes = nodes[nodes != tree.root]
        parents = np.asarray(tree.parent, dtype=np.int64)[nodes]
        cached = (nodes, parents)
        tree._tree_edges = cached  # type: ignore[attr-defined]
    return cached


def stage_tree_funnel(network: Network, tree: BfsTree, *, messages: int, congestion: int) -> None:
    """Attribute a pipelined tree sweep's whole charge to the root funnel edge.

    The synthetic ``charge(height + k, messages=2k, congestion=k)`` charges
    (REPORT convergecast, slot recovery, walk regeneration) model ``k``
    tokens pipelined up — and answers back down — the BFS tree; the busiest
    link is the one into the root, so the cartography books the entire
    charge on the first root-child edge.  A degenerate tree with no
    children leaves the charge unstaged (sink residual).
    """
    if network.heatmap is None or messages <= 0:
        return
    children = tree.children[tree.root]
    if not children:
        return
    network._stage_pairs(
        np.array([children[0]], dtype=np.int64),
        np.array([tree.root], dtype=np.int64),
        np.array([messages], dtype=np.int64),
        np.array([congestion], dtype=np.int64),
    )


@charged_fast_path(
    equivalence_test="tests/test_congest_primitives.py::test_tree_and_ledger_identical"
)
def build_bfs_tree(
    network: Network,
    root: int,
    *,
    cache: dict[int, BfsTree] | None = None,
    use_protocol: bool = False,
    allow_unreached: bool = False,
) -> BfsTree:
    """Build (or recall) the BFS tree rooted at ``root``, charging rounds.

    By default this takes the **charged vectorized fast path**: the tree is
    computed by CSR frontier expansion and the ledger is charged the exact
    rounds/messages/congestion the event-driven
    :class:`BfsFloodProtocol` run would have produced (the flood's message
    pattern is deterministic given the topology, so re-simulating it adds
    wall-clock and nothing else — the same "charged fast path" contract as
    :func:`charged_convergecast`, proved by
    ``tests/test_congest_primitives.py``).  ``use_protocol=True`` forces the
    message-by-message execution instead.

    With a ``cache`` dict, the first call per root computes and records the
    exact cost; later calls charge the same recorded cost without
    recomputing.

    ``allow_unreached`` (vectorized path only) tolerates unreachable
    nodes — the crash-recovery regime where crashed nodes are isolated by
    construction.  Unreached nodes carry depth ``-1`` and join no
    children list; callers must not route to or through them.
    """
    if cache is not None and root in cache:
        tree = cache[root]
        if tree.build_rounds or tree.build_messages:
            _stage_flood(network, tree)
            network.ledger.charge(tree.build_rounds, messages=tree.build_messages, congestion=1)
        return tree
    if use_protocol:
        proto = BfsFloodProtocol(root)
        messages_before = network.messages_sent
        rounds = network.run(proto)
        tree = proto.tree(network.graph.n)
        tree.build_rounds = rounds
        tree.build_messages = network.messages_sent - messages_before
    else:
        graph = network.graph
        depth, parent = _vectorized_bfs(graph, root, allow_unreached=allow_unreached)
        rounds, messages = _flood_cost(graph, root, depth)
        children: list[list[int]] = [[] for _ in range(graph.n)]
        parent_list = parent.tolist()
        depth_list = depth.tolist()
        for v, p in enumerate(parent_list):
            if v != root and depth_list[v] >= 0:
                children[p].append(v)
        tree = BfsTree(
            root=root,
            parent=parent_list,
            depth=depth.tolist(),
            children=children,
            build_rounds=rounds,
            build_messages=messages,
        )
        if rounds:
            _stage_flood(network, tree)
            network.ledger.charge(rounds, messages=messages, congestion=1)
    if cache is not None:
        cache[root] = tree
    return tree


class ConvergecastProtocol(Protocol):
    """Generic bottom-up aggregation over a BFS tree.

    Every node owns a value; interior nodes combine their own value with all
    children's results (via ``combine``) before reporting to their parent.
    Terminates in ``height`` rounds with ``n − 1`` messages.  ``combine``
    must be associative-ish in the usual convergecast sense: it receives the
    node's running value and one child value and returns the new value.
    """

    name = "convergecast"

    def __init__(
        self,
        tree: BfsTree,
        values: list[Any],
        combine: Callable[[Any, Any], Any],
        *,
        words: int = 1,
    ) -> None:
        self.tree = tree
        self.acc = list(values)
        self.combine = combine
        self.words = words
        self.pending = [len(tree.children[v]) for v in range(tree.n)]
        self.result: Any = None

    def _report(self, api: ProtocolAPI, node: int) -> None:
        if node == self.tree.root:
            self.result = self.acc[node]
        else:
            api.send(node, self.tree.parent[node], ("agg", self.acc[node]), words=self.words)

    def on_start(self, api: ProtocolAPI) -> None:
        ready = [v for v in range(self.tree.n) if self.pending[v] == 0]
        for v in ready:
            self._report(api, v)
        if self.tree.n == 1:
            self.result = self.acc[self.tree.root]

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:
        for msg in messages:
            self.acc[node] = self.combine(self.acc[node], msg.payload[1])
            self.pending[node] -= 1
        if self.pending[node] == 0:
            self._report(api, node)

    def is_done(self, api: ProtocolAPI) -> bool:
        return self.pending[self.tree.root] == 0


class BroadcastProtocol(Protocol):
    """Top-down dissemination of one payload over a BFS tree.

    ``height`` rounds, ``n − 1`` messages (each tree edge carries the
    payload once).
    """

    name = "broadcast"

    def __init__(self, tree: BfsTree, payload: Any, *, words: int = 1) -> None:
        self.tree = tree
        self.payload = payload
        self.words = words
        self.received: set[int] = set()

    def on_start(self, api: ProtocolAPI) -> None:
        self.received.add(self.tree.root)
        for child in self.tree.children[self.tree.root]:
            api.send(self.tree.root, child, self.payload, words=self.words)

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:
        self.received.add(node)
        for child in self.tree.children[node]:
            api.send(node, child, self.payload, words=self.words)


def charged_convergecast(
    network: Network,
    tree: BfsTree,
    values: list[Any],
    combine: Callable[[Any, Any], Any],
    *,
    words: int = 1,
    participants: set[int] | None = None,
) -> Any:
    """Fast-path convergecast: same result and cost as the protocol.

    ``participants`` optionally marks the nodes that actually carry
    information (e.g. holders of at least one walk token); nodes outside the
    ancestor closure of the participants stay silent, reducing the message
    charge — the sweep still takes ``height`` rounds because levels proceed
    in lockstep (Algorithm 3's "for i = D down to 0").
    """
    if words > network.max_words:
        raise ProtocolError(f"convergecast payload of {words} words exceeds cap")
    acc = list(values)
    for node in tree.nodes_by_depth_desc():
        if node == tree.root:
            continue
        acc[tree.parent[node]] = combine(acc[tree.parent[node]], acc[node])

    if participants is None:
        n_messages = tree.n - 1
        reporters: set[int] | None = None
    else:
        closure: set[int] = set()
        for node in participants:
            for hop in tree.path_to_root(node):
                if hop in closure:
                    break
                closure.add(hop)
        closure.discard(tree.root)
        n_messages = len(closure)
        reporters = closure
    if network.heatmap is not None and n_messages:
        if reporters is None:
            nodes, parents = _tree_edge_arrays(tree)
        else:
            nodes = np.array(sorted(reporters), dtype=np.int64)
            parents = np.asarray(tree.parent, dtype=np.int64)[nodes]
        ones = np.ones(nodes.size, dtype=np.int64)
        network._stage_pairs(nodes, parents, ones, ones)
    network.ledger.charge(tree.height, messages=n_messages, congestion=1)
    return acc[tree.root]


def charged_broadcast(network: Network, tree: BfsTree, *, words: int = 1) -> None:
    """Fast-path broadcast cost: ``height`` rounds, ``n − 1`` messages."""
    if words > network.max_words:
        raise ProtocolError(f"broadcast payload of {words} words exceeds cap")
    if network.heatmap is not None and tree.n > 1:
        nodes, parents = _tree_edge_arrays(tree)
        ones = np.ones(nodes.size, dtype=np.int64)
        network._stage_pairs(parents, nodes, ones, ones)
    network.ledger.charge(tree.height, messages=tree.n - 1, congestion=1)
