"""Markov-chain ground truth: exact distributions, mixing times, spectra."""

from repro.markov.chain import (
    MIXING_EPSILON,
    WalkSpectrum,
    distribution_at,
    exact_mixing_time,
    stationary_distribution,
    transition_matrix,
    tv_from_stationary,
)
from repro.markov.spectral import (
    SpectralEstimate,
    cheeger_bounds,
    conductance_bounds_from_mixing,
    conductance_exact,
    gap_bounds_from_mixing,
    relaxation_time,
    spectral_gap,
)

__all__ = [
    "MIXING_EPSILON",
    "WalkSpectrum",
    "distribution_at",
    "exact_mixing_time",
    "stationary_distribution",
    "transition_matrix",
    "tv_from_stationary",
    "SpectralEstimate",
    "cheeger_bounds",
    "conductance_bounds_from_mixing",
    "conductance_exact",
    "gap_bounds_from_mixing",
    "relaxation_time",
    "spectral_gap",
]
