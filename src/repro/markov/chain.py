"""Markov-chain analysis of random walks on graphs.

Ground truth for everything the distributed algorithms sample: exact
``ℓ``-step distributions (to chi-square-test the samplers), stationary
distributions, and exact mixing times ``τ^x(ε)`` (to sandwich the
decentralized estimator of Theorem 4.6).

For a (weighted) undirected graph the simple walk's transition matrix is
``P(u,v) = w(u,v)/w(u)``; it is reversible with stationary law
``π(v) = w(v)/2W``.  Reversibility lets us symmetrize
``S = D^{1/2} P D^{-1/2}`` (``D = diag(π)``), eigendecompose once, and then
evaluate ``P^t`` act-on-vector for *any* ``t`` in ``O(n²)`` — which is what
makes exact mixing-time binary searches cheap even when ``τ`` is in the
tens of thousands (cycle/barbell territory).
"""

from __future__ import annotations

import math
from functools import cached_property

import numpy as np

from repro.errors import ConvergenceError, GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import is_bipartite, is_connected

__all__ = [
    "transition_matrix",
    "stationary_distribution",
    "WalkSpectrum",
    "distribution_at",
    "tv_from_stationary",
    "exact_mixing_time",
    "MIXING_EPSILON",
]

#: The paper's mixing-time threshold: τ^x_mix = τ^x(1/2e) (Definition 4.3).
MIXING_EPSILON = 1.0 / (2.0 * math.e)


def transition_matrix(graph: Graph, *, lazy: bool = False) -> np.ndarray:
    """Dense walk matrix ``P``; ``lazy=True`` gives ``(I + P)/2``.

    The lazy version is what the Lemma 2.6 proof machinery uses (Lyons'
    estimate needs a positive self-loop probability); the algorithms
    themselves run the plain simple walk.
    """
    n = graph.n
    p = np.zeros((n, n), dtype=np.float64)
    for slot in range(graph.n_slots):
        u = int(graph.csr_source[slot])
        v = int(graph.csr_target[slot])
        p[u, v] += graph.csr_weight[slot] / graph.weighted_degree(u)
    if lazy:
        p = 0.5 * (np.eye(n) + p)
    return p


def stationary_distribution(graph: Graph) -> np.ndarray:
    """``π(v) = w(v) / 2W`` — degree-proportional for unweighted graphs."""
    w = graph.weighted_degrees
    total = w.sum()
    if total <= 0:
        raise GraphError("graph has no edges; stationary distribution undefined")
    return w / total


class WalkSpectrum:
    """Eigendecomposition of the (reversible) walk, for fast ``P^t`` actions.

    ``distribution(x, t)`` returns the exact law of the walk after ``t``
    steps from ``x`` in ``O(n²)`` regardless of ``t``.  Requires a
    connected graph; for *bipartite* graphs ``P^t`` oscillates and mixing
    quantities are undefined (callers that need mixing must check
    :func:`repro.graphs.properties.is_bipartite` — the constructor only
    warns through ``is_bipartite`` exposure, since plain ``t``-step
    distributions are still perfectly well defined).
    """

    def __init__(self, graph: Graph, *, lazy: bool = False) -> None:
        if not is_connected(graph):
            raise GraphError("walk spectrum requires a connected graph")
        self.graph = graph
        self.lazy = lazy
        self.pi = stationary_distribution(graph)
        p = transition_matrix(graph, lazy=lazy)
        d_half = np.sqrt(self.pi)
        # S = D^{1/2} P D^{-1/2} is symmetric for reversible P.
        s = (d_half[:, None] * p) / d_half[None, :]
        s = 0.5 * (s + s.T)  # scrub asymmetric float noise
        eigvals, eigvecs = np.linalg.eigh(s)
        self.eigvals = eigvals
        self.eigvecs = eigvecs
        self._d_half = d_half

    @cached_property
    def is_bipartite(self) -> bool:
        return is_bipartite(self.graph)

    def distribution(self, start: int, t: int) -> np.ndarray:
        """Exact law of the walk position after ``t`` steps from ``start``."""
        if t < 0:
            raise GraphError("t must be non-negative")
        e_start = np.zeros(self.graph.n)
        e_start[start] = 1.0
        # P^t = D^{-1/2} S^t D^{1/2} with D = diag(√π), so the row
        # (P^t)_{start,·} is D^{1/2} S^t (D^{-1/2} e_start) by symmetry of S.
        y = self.eigvecs.T @ (e_start / self._d_half)
        y = y * np.power(self.eigvals, t)
        dist = (self.eigvecs @ y) * self._d_half
        dist = np.clip(dist, 0.0, None)
        total = dist.sum()
        if not 0.9 < total < 1.1:
            raise ConvergenceError(f"spectral propagation lost mass (sum={total})")
        return dist / total

    def tv_from_stationary(self, start: int, t: int) -> float:
        """``‖π_x(t) − π‖₁ / 2`` — total-variation distance after ``t`` steps.

        Note the paper's Definition 4.3 uses the *ℓ₁ norm* (twice the TV
        distance); :func:`exact_mixing_time` works in the paper's ℓ₁
        convention so that ``ε = 1/2e`` means what it means there.
        """
        return 0.5 * float(np.abs(self.distribution(start, t) - self.pi).sum())

    def l1_from_stationary(self, start: int, t: int) -> float:
        """``‖π_x(t) − π‖₁`` — the paper's Definition 4.2/4.3 convention."""
        return float(np.abs(self.distribution(start, t) - self.pi).sum())


def distribution_at(graph: Graph, start: int, t: int, *, lazy: bool = False) -> np.ndarray:
    """One-shot exact ``t``-step law (builds a spectrum; cache one for sweeps)."""
    return WalkSpectrum(graph, lazy=lazy).distribution(start, t)


def tv_from_stationary(graph: Graph, start: int, t: int) -> float:
    return WalkSpectrum(graph).tv_from_stationary(start, t)


def exact_mixing_time(
    graph: Graph,
    start: int,
    epsilon: float = MIXING_EPSILON,
    *,
    spectrum: WalkSpectrum | None = None,
    max_t: int = 10_000_000,
) -> int:
    """``τ^x(ε) = min{t : ‖π_x(t) − π‖₁ < ε}`` by monotone binary search.

    Well defined only on connected non-bipartite graphs (Section 4.2's
    standing assumption); monotonicity of the ℓ₁ distance in ``t``
    (Lemma 4.4) justifies the binary search.
    """
    if epsilon <= 0:
        raise GraphError("epsilon must be positive")
    spec = spectrum if spectrum is not None else WalkSpectrum(graph)
    if spec.is_bipartite:
        raise GraphError("mixing time undefined on bipartite graphs (Section 4.2)")
    if spec.l1_from_stationary(start, 0) < epsilon:
        return 0

    hi = 1
    while spec.l1_from_stationary(start, hi) >= epsilon:
        hi *= 2
        if hi > max_t:
            raise ConvergenceError(f"walk not mixed to epsilon={epsilon} within {max_t} steps")
    lo = hi // 2  # l1(lo) >= epsilon, l1(hi) < epsilon
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if spec.l1_from_stationary(start, mid) < epsilon:
            hi = mid
        else:
            lo = mid
    return hi
