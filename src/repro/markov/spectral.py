"""Spectral gap, conductance, and the inequalities tying them to mixing.

Section 4.2 closes with: given ``τ_mix``, the spectral gap ``1 − λ₂`` and
conductance ``Φ`` are approximated through

* ``1/(1−λ₂) ≤ τ_mix ≤ log n / (1−λ₂)``  (relaxation-time sandwich), and
* ``Θ(1−λ₂) ≤ Φ ≤ Θ(√(1−λ₂))``           (Cheeger / Jerrum–Sinclair [18]).

This module computes the exact quantities (for ground truth) and the
interval estimates derived from a mixing-time value (what the decentralized
estimator reports).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.markov.chain import WalkSpectrum

__all__ = [
    "spectral_gap",
    "relaxation_time",
    "conductance_exact",
    "cheeger_bounds",
    "SpectralEstimate",
    "gap_bounds_from_mixing",
    "conductance_bounds_from_mixing",
]


def spectral_gap(graph: Graph, *, spectrum: WalkSpectrum | None = None) -> float:
    """``1 − λ₂`` where ``λ₂`` is the second-largest walk eigenvalue."""
    spec = spectrum if spectrum is not None else WalkSpectrum(graph)
    eigvals = np.sort(spec.eigvals)
    if len(eigvals) < 2:
        raise GraphError("spectral gap needs at least two nodes")
    return float(1.0 - eigvals[-2])


def relaxation_time(graph: Graph, *, spectrum: WalkSpectrum | None = None) -> float:
    """``1 / (1 − λ₂)`` — the lower member of the mixing sandwich."""
    gap = spectral_gap(graph, spectrum=spectrum)
    if gap <= 0:
        raise GraphError("non-positive spectral gap (disconnected or degenerate graph)")
    return 1.0 / gap


def conductance_exact(graph: Graph, *, max_nodes: int = 18) -> float:
    """Exact conductance ``Φ = min_S w(∂S) / min(w(S), w(V∖S))`` by subset scan.

    Exponential in ``n`` — gated to small graphs; larger graphs should use
    :func:`cheeger_bounds` for certified intervals instead.
    Volumes are weighted degrees, cuts are summed edge weights, matching
    the walk's notion of conductance.
    """
    if graph.n > max_nodes:
        raise GraphError(f"exact conductance is exponential; n={graph.n} > {max_nodes}")
    w = graph.weighted_degrees
    total = float(w.sum())
    nodes = list(range(graph.n))
    best = math.inf
    for size in range(1, graph.n // 2 + 1):
        for subset in itertools.combinations(nodes, size):
            in_s = np.zeros(graph.n, dtype=bool)
            in_s[list(subset)] = True
            vol_s = float(w[in_s].sum())
            vol_rest = total - vol_s
            if vol_s == 0 or vol_rest == 0:
                continue
            cut = sum(
                wt for (u, v), wt in zip(graph.edges(), graph.edge_weights()) if in_s[u] != in_s[v]
            )
            best = min(best, cut / min(vol_s, vol_rest))
    if not math.isfinite(best):
        raise GraphError("conductance undefined (graph has no balanced cuts)")
    return float(best)


def cheeger_bounds(graph: Graph, *, spectrum: WalkSpectrum | None = None) -> tuple[float, float]:
    """Cheeger sandwich on conductance: ``gap/2 ≤ Φ ≤ √(2·gap)``."""
    gap = spectral_gap(graph, spectrum=spectrum)
    return gap / 2.0, math.sqrt(2.0 * max(gap, 0.0))


@dataclass(frozen=True)
class SpectralEstimate:
    """An interval estimate ``[lower, upper]`` for a spectral quantity."""

    lower: float
    upper: float

    def contains(self, value: float, *, slack: float = 1.0) -> bool:
        """Membership with a multiplicative slack (Θ(·) bounds hide constants)."""
        return self.lower / slack <= value <= self.upper * slack

    def __str__(self) -> str:
        return f"[{self.lower:.4g}, {self.upper:.4g}]"


def gap_bounds_from_mixing(mixing_time: float, n: int) -> SpectralEstimate:
    """Invert ``1/(1−λ₂) ≤ τ_mix ≤ log n/(1−λ₂)`` into gap bounds.

    From ``τ ≥ 1/gap`` we get ``gap ≥ 1/τ``; from ``τ ≤ log n / gap`` we
    get ``gap ≤ log n / τ``.  Hence ``gap ∈ [1/τ, min(1, log n / τ)]``.
    """
    if mixing_time <= 0:
        raise GraphError("mixing time must be positive")
    if n < 2:
        raise GraphError("need n >= 2")
    return SpectralEstimate(lower=1.0 / mixing_time, upper=min(1.0, math.log(n) / mixing_time))


def conductance_bounds_from_mixing(mixing_time: float, n: int) -> SpectralEstimate:
    """Compose the gap interval with ``Θ(gap) ≤ Φ ≤ Θ(√gap)`` ([18])."""
    gap = gap_bounds_from_mixing(mixing_time, n)
    return SpectralEstimate(lower=gap.lower / 2.0, upper=min(1.0, math.sqrt(2.0 * gap.upper)))
