"""Synthetic churn traffic: mixed request load + Poisson edge churn.

The serving workloads of :mod:`repro.serve.workload` drive a static
topology.  This module adds the dynamic-network scenario the journal
version of the paper motivates: an open-loop request stream interleaved
with **Poisson edge churn** — every scheduling tick, a Poisson number of
edge deletions and insertions lands as one batched
:class:`~repro.dynamic.delta.GraphDelta` and the whole session absorbs it
through :meth:`~repro.engine.core.WalkEngine.apply_churn` *between*
scheduler ticks, exactly where background maintenance already runs.

:func:`sample_churn_delta` is the delta generator.  Deletions are sampled
connectivity-preserving by default: the walk machinery (BFS floods,
stitching) requires a connected graph, so a candidate deletion that would
disconnect the post-delta graph is skipped — the generator models churn
in a network that stays operational, which is the regime the serving
stack can meaningfully be measured in.  Insertions draw endpoint pairs
uniformly (parallel edges allowed — multigraph semantics throughout).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamic.controller import ChurnReport
from repro.dynamic.delta import GraphDelta
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.serve.workload import TrafficSpec, sample_request_args

__all__ = ["ChurnSpec", "run_churn_loop", "sample_churn_delta"]


@dataclass(frozen=True)
class ChurnSpec:
    """Churn process of one dynamic workload.

    ``delete_rate`` / ``insert_rate`` are Poisson means per scheduling
    tick; ``round_budget`` bounds each churn event's regeneration sweep
    (``None`` restores affected shards fully, the default);
    ``preserve_connectivity`` keeps the generator from sampling deltas
    that would disconnect the graph.
    """

    delete_rate: float = 1.0
    insert_rate: float = 1.0
    round_budget: int | None = None
    preserve_connectivity: bool = True

    def __post_init__(self) -> None:
        if self.delete_rate < 0 or self.insert_rate < 0:
            raise WalkError("churn rates must be >= 0")
        if self.round_budget is not None and self.round_budget < 1:
            raise WalkError("round_budget must be >= 1 when given")


def _connected_under_removal(scratch: Graph, removed: np.ndarray) -> bool:
    """BFS connectivity of ``scratch`` minus the edges flagged in ``removed``."""
    n = scratch.n
    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    frontier = np.array([0], dtype=np.int64)
    reached = 1
    while frontier.size and reached < n:
        starts = scratch.indptr[frontier]
        counts = scratch.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        slots = np.repeat(starts - offsets, counts) + np.arange(total)
        slots = slots[~removed[scratch.csr_edge[slots]]]
        targets = scratch.csr_target[slots]
        fresh = np.unique(targets[~visited[targets]])
        visited[fresh] = True
        reached += int(fresh.size)
        frontier = fresh
    return reached == n


def sample_churn_delta(
    graph: Graph,
    rng: np.random.Generator,
    *,
    deletes: int,
    inserts: int,
    preserve_connectivity: bool = True,
) -> GraphDelta:
    """Draw one batched churn event for ``graph``'s current edge set.

    Insertions are uniform ``u ≠ v`` endpoint pairs.  Deletions are drawn
    uniformly from the current edges; with ``preserve_connectivity`` a
    candidate whose removal (on top of the already-accepted deletions and
    the insertions) would disconnect the graph is skipped, so the realized
    deletion count can fall short of ``deletes`` on sparse graphs — the
    delta reports what was actually sampled.
    """
    if deletes < 0 or inserts < 0:
        raise WalkError("deletes and inserts must be >= 0")
    n = graph.n
    insert_edges = np.empty((inserts, 2), dtype=np.int64)
    if inserts:
        u = rng.integers(0, n, size=inserts)
        v = rng.integers(0, n - 1, size=inserts)
        v = np.where(v >= u, v + 1, v)  # uniform over ordered pairs with u != v
        insert_edges[:, 0], insert_edges[:, 1] = u, v

    old_edges = graph.edge_array
    delete_rows: list[int] = []
    if deletes and graph.m:
        candidates = rng.permutation(graph.m)
        if preserve_connectivity and n > 1:
            # Connectivity is judged on the post-delta graph, so the scratch
            # topology carries the insertions too.
            scratch = Graph(
                n,
                np.concatenate([old_edges, insert_edges]) if inserts else old_edges,
                name="churn-scratch",
            )
            removed = np.zeros(scratch.m, dtype=bool)
            for e in candidates:
                removed[e] = True
                if _connected_under_removal(scratch, removed):
                    delete_rows.append(int(e))
                    if len(delete_rows) >= deletes:
                        break
                else:
                    removed[e] = False
        else:
            delete_rows = candidates[:deletes].tolist()
    delete_edges = old_edges[delete_rows] if delete_rows else np.empty((0, 2), dtype=np.int64)
    return GraphDelta(insert_edges=insert_edges, delete_edges=delete_edges)


def run_churn_loop(
    scheduler,
    traffic: TrafficSpec,
    churn: ChurnSpec,
    rng: np.random.Generator,
    *,
    rate: float,
    ticks: int,
    drain: bool = True,
) -> tuple[list, list[ChurnReport]]:
    """Open-loop Poisson arrivals with Poisson edge churn between ticks.

    Each tick: submit ``Poisson(rate)`` requests drawn from ``traffic``,
    apply one batched churn event of ``Poisson(delete_rate)`` deletions
    and ``Poisson(insert_rate)`` insertions (skipped when both draws are
    zero), then run one scheduling round.  With ``drain`` the backlog is
    serviced to empty after arrivals and churn stop.  Returns every ticket
    plus the :class:`~repro.dynamic.controller.ChurnReport` of every
    applied event.
    """
    if rate < 0:
        raise WalkError("rate must be >= 0")
    if ticks < 1:
        raise WalkError("ticks must be >= 1")
    engine = scheduler.engine
    tickets = []
    reports: list[ChurnReport] = []
    for _ in range(ticks):
        for _ in range(int(rng.poisson(rate))):
            tickets.append(scheduler.submit(**sample_request_args(traffic, rng)))
        deletes = int(rng.poisson(churn.delete_rate))
        inserts = int(rng.poisson(churn.insert_rate))
        if deletes or inserts:
            delta = sample_churn_delta(
                engine.graph,
                rng,
                deletes=deletes,
                inserts=inserts,
                preserve_connectivity=churn.preserve_connectivity,
            )
            if not delta.is_empty:
                reports.append(engine.apply_churn(delta, round_budget=churn.round_budget))
        scheduler.tick()
    if drain:
        scheduler.drain()
    return tickets, reports
