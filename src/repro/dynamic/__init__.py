"""``repro.dynamic`` — graph churn for live walk-serving sessions.

Everything below :mod:`repro.engine` assumed a frozen topology; this
package makes the whole stack — graph, network, engine, pool, scheduler —
survive batched edge inserts and deletes while continuing to serve exact
``P^ℓ`` walks, the dynamic-network regime the journal version of the
paper (arXiv:1302.4544) motivates.  Typical use::

    from repro import WalkEngine, random_regular_graph
    from repro.dynamic import GraphDelta

    engine = WalkEngine(random_regular_graph(10_000, 4, 0), seed=7)
    engine.prepare(lam=8)
    engine.walk(0, 256)                       # pooled serving as usual
    report = engine.apply_churn(GraphDelta(
        insert_edges=[(3, 907)], delete_edges=[(0, 1)]))
    print(report.tokens_evicted, report.tokens_regenerated)
    engine.walk(0, 256)                       # exact P^l on the NEW graph

Module map: :mod:`~repro.dynamic.delta` (the :class:`GraphDelta` /
:class:`DeltaRemap` data model), :mod:`~repro.dynamic.controller` (the
invalidation cascade behind ``engine.apply_churn``),
:mod:`~repro.dynamic.workload` (mixed request + Poisson-churn traffic).
"""

from repro.dynamic.controller import ChurnController, ChurnReport
from repro.dynamic.delta import DeltaRemap, GraphDelta
from repro.dynamic.workload import ChurnSpec, run_churn_loop, sample_churn_delta

__all__ = [
    "ChurnController",
    "ChurnReport",
    "ChurnSpec",
    "DeltaRemap",
    "GraphDelta",
    "run_churn_loop",
    "sample_churn_delta",
]
