"""``ChurnController`` — the invalidation cascade behind ``apply_churn``.

A :class:`~repro.dynamic.delta.GraphDelta` applied to a live session must
leave *every* layer consistent — this module owns that cascade, in order:

1. **Topology** — :meth:`~repro.graphs.graph.Graph.apply_delta` rebuilds
   the CSR arrays in place and reports the slot remap and mutated nodes;
   :meth:`~repro.congest.network.Network.refresh_topology` re-derives the
   adjacency tables the CONGEST engine routes by.
2. **Caches** — the engine's BFS-tree cache drops wholesale: tree shape,
   heights, and charged flood costs are all topology functions.
3. **Pool invalidation** — one vectorized scan of the
   :class:`~repro.walks.store.WalkStore` path matrices
   (:meth:`~repro.walks.store.WalkStore.find_invalid_rows`) finds every
   pooled token whose recorded walk stepped *from* a node whose sampling
   law changed (or traversed a deleted edge), and evicts exactly those.
   Tokens that never touched a mutated node keep the identical law on the
   new graph, so they keep serving — that selectivity is the whole win
   over discarding the pool.  A pool prepared with ``record_paths=False``
   has nothing to scan, so churn falls back to full eviction there
   (correct, never wrong — just not incremental).
4. **Quotas** — :meth:`~repro.engine.pool.PoolManager.rebuild_quotas`
   re-derives per-source base allocations, shard quotas, and watermarks
   from the *new* degree profile (``⌈η·deg(v)⌉``, Lemma 2.6's shape).
5. **Charged regeneration** — the affected shards (any shard that lost a
   token or contains a mutated node) top back up to quota in one batched
   GET-MORE-WALKS sweep on the new graph, billed to the
   ``"pool-refill/churn"`` sub-phase: on the session ledger, excluded
   from request deltas, summed by the ``pool-refill`` family — the exact
   accounting contract of ``pool-refill/maintain``.  An optional round
   budget defers the least-urgent shards; their deficit stays visible to
   the serving scheduler's admission pricing, which already folds
   per-shard deficits into its modeled refill cost.

Charging model: detection is free — every endpoint of a changed edge
learns of it locally (churn *is* a local event), and hop validity is
node-local knowledge (node ``path[j]`` owns its hop, cf. §2.2's
regeneration premise) — so only the regeneration traffic is charged.
Propagating eviction notices to token holders is not separately billed;
it is bounded above by a replay of the evicted suffixes (strictly less
than the regeneration sweep that follows) and noted as future work.

Exactness is preserved end to end: surviving tokens are untouched samples
of the *new* graph's short-walk law, replacements are freshly sampled on
the new graph, and stitching always draws uniform unused tokens — so
served endpoints follow the new ``P^ℓ`` exactly (chi-square-proved in
``tests/test_dynamic.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.dynamic.delta import GraphDelta
from repro.engine.model import _jsonify
from repro.engine.pool import CHURN_PHASE

__all__ = ["ChurnController", "ChurnReport"]


@dataclass(frozen=True)
class ChurnReport:
    """Outcome of one :meth:`~repro.engine.core.WalkEngine.apply_churn`.

    ``tokens_scanned`` counts the live tokens the vectorized path scan
    inspected; ``tokens_evicted`` of them were invalidated
    (``full_eviction`` marks the pathless-pool fallback where the whole
    pool goes).  ``tokens_regenerated`` replacements were launched by the
    charged sweep (``regen_rounds``, billed to ``"pool-refill/churn"``);
    under a round budget ``deferred_shards`` lists affected shards whose
    regeneration was pushed to later maintenance.  ``rounds`` is the full
    ledger delta of the event — regeneration only, since detection is
    node-local (see the module docstring's charging model).
    """

    edges_inserted: int
    edges_deleted: int
    mutated_nodes: int
    tokens_scanned: int
    tokens_evicted: int
    full_eviction: bool
    shards_affected: tuple[int, ...]
    sources_regenerated: int
    tokens_regenerated: int
    regen_rounds: int
    rounds: int
    deferred_shards: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return _jsonify(dataclasses.asdict(self))


class ChurnController:
    """Drives the churn cascade on one engine session.

    Stateless between events except for cumulative telemetry (surfaced via
    ``engine.stats()``); the engine creates one lazily on the first
    :meth:`~repro.engine.core.WalkEngine.apply_churn` call and keeps it
    for the session.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.events = 0
        self.tokens_evicted = 0
        self.tokens_regenerated = 0

    def apply(self, delta: GraphDelta, *, round_budget: int | None = None) -> ChurnReport:
        # Churn-event context rides the regeneration sweep's spans; the
        # report's telemetry lands on the metrics registry afterwards.
        probe = self.engine.obs
        with probe.annotate(churn_event=self.events + 1):
            report = self._apply_impl(delta, round_budget=round_budget)
        probe.event(
            "churn",
            self.engine.network.ledger,
            edges_deleted=report.edges_deleted,
            edges_inserted=report.edges_inserted,
            event=self.events,
        )
        metrics = probe.metrics
        if metrics is not None:
            if report.tokens_evicted:
                metrics.counter(
                    "repro_tokens_evicted_total", "Pool tokens evicted, by cause."
                ).inc(report.tokens_evicted, cause="churn")
            if report.tokens_regenerated:
                metrics.counter(
                    "repro_tokens_added_total", "Pool tokens created by refills, by kind."
                ).inc(report.tokens_regenerated, kind="churn")
        return report

    def _apply_impl(self, delta: GraphDelta, *, round_budget: int | None = None) -> ChurnReport:
        engine = self.engine
        net = engine.network
        rounds_before = net.rounds
        remap = engine.graph.apply_delta(delta)
        net.refresh_topology()
        heatmap = engine.obs.heatmap
        if heatmap is not None:
            # Forward the slot rename so per-edge accumulators survive the
            # CSR rebuild (deleted slots retire into per-phase buckets).
            heatmap.apply_remap(
                remap,
                n=engine.graph.n,
                edge_src=engine.graph.csr_source,
                edge_dst=engine.graph.csr_target,
            )
        engine._tree_cache.clear()
        self.events += 1

        pool = engine.pool
        manager = engine.pool_manager
        evicted = 0
        scanned = 0
        full_eviction = False
        affected: set[int] = set()
        regen = None
        if pool is not None and manager is not None:
            store = pool.store
            scanned = store.total_unused()
            if pool.record_paths:
                mutated = np.zeros(engine.graph.n, dtype=bool)
                mutated[remap.mutated_nodes] = True
                rows = store.find_invalid_rows(mutated, remap.deleted_edge_keys, engine.graph.n)
            else:
                # No recorded hops to scan: evict everything (correct but
                # not incremental; prepare with record_paths=True to get
                # selective invalidation).
                rows = store.live_rows()
                full_eviction = True
            sources = store.evict_rows(rows)
            evicted = int(sources.size)
            self.tokens_evicted += evicted
            manager.rebuild_quotas()
            # Affected shards: lost a token to eviction, or contain a
            # mutated node (whose base allocation just changed).
            if evicted:
                affected.update(
                    int(s) for s in np.unique(sources % manager.num_shards)
                )
            if remap.num_mutated:
                affected.update(
                    int(s) for s in np.unique(remap.mutated_nodes % manager.num_shards)
                )
            regen = manager.restore_shards(
                net, engine.rng, sorted(affected), round_budget=round_budget, phase=CHURN_PHASE
            )
            self.tokens_regenerated += regen.tokens_added

        return ChurnReport(
            edges_inserted=remap.edges_inserted,
            edges_deleted=remap.edges_deleted,
            mutated_nodes=remap.num_mutated,
            tokens_scanned=scanned,
            tokens_evicted=evicted,
            full_eviction=full_eviction,
            shards_affected=tuple(sorted(affected)),
            sources_regenerated=regen.sources_refilled if regen is not None else 0,
            tokens_regenerated=regen.tokens_added if regen is not None else 0,
            regen_rounds=regen.rounds if regen is not None else 0,
            rounds=net.rounds - rounds_before,
            deferred_shards=regen.deferred_shards if regen is not None else (),
        )
