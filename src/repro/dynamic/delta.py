"""The data model of graph churn: batched edge deltas and their remaps.

A :class:`GraphDelta` is one *topology event*: a batch of undirected edge
inserts and deletes applied atomically between rounds.  The journal version
of the paper (arXiv:1302.4544) motivates distributed walk sampling
precisely for dynamic networks — topology maintenance and token management
under churn — and batching is how real systems ingest churn: membership
changes accumulate and are applied at an epoch boundary, not one message
at a time.

:meth:`~repro.graphs.graph.Graph.apply_delta` consumes a delta and returns
a :class:`DeltaRemap` describing what moved:

* ``slot_remap`` — old directed CSR slot → new slot (``-1`` for slots of
  deleted edges).  Slot IDs are the library's canonical directed-edge
  identity (the congestion ledger's unit), so anything holding slots
  across a churn event re-keys through this.
* ``mutated_nodes`` — every endpoint of an inserted or deleted edge.
  These are exactly the nodes whose one-step transition law changed; the
  pool invalidation scan evicts any token whose recorded walk *stepped
  from* one of them (a step from a non-mutated node has the identical law
  on the old and new graphs, so the token stays exact).
* ``deleted_edge_keys`` — orientation-free ``min·n + max`` keys of the
  deleted undirected edges, pre-sorted for the store's vectorized
  hop-traversal scan.

This module is deliberately import-light (numpy + errors only) so the
graph substrate can consume deltas without a dependency cycle on the
engine-side churn machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError

__all__ = ["DeltaRemap", "GraphDelta"]


def _as_edge_array(edges, what: str) -> np.ndarray:
    if isinstance(edges, np.ndarray):
        arr = np.array(edges, dtype=np.int64)  # defensive copy
        if arr.size == 0:
            arr = arr.reshape(0, 2)
    else:
        seq = list(edges)
        arr = (
            np.array(seq, dtype=np.int64) if seq else np.empty((0, 2), dtype=np.int64)
        )
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"{what} edges must be (u, v) pairs, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class GraphDelta:
    """One batched churn event: edge inserts and deletes applied atomically.

    ``insert_edges`` / ``delete_edges`` are ``(k, 2)`` endpoint-pair arrays
    (orientation irrelevant; list a pair twice to insert/delete two
    parallel edges).  ``insert_weights`` optionally parallels
    ``insert_edges`` (default 1.0 each — the unweighted law).  Deleting an
    edge not present at application time is an error, surfaced by
    :meth:`~repro.graphs.graph.Graph.apply_delta`.
    """

    insert_edges: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    delete_edges: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    insert_weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "insert_edges", _as_edge_array(self.insert_edges, "insert"))
        object.__setattr__(self, "delete_edges", _as_edge_array(self.delete_edges, "delete"))
        if self.insert_weights is not None:
            w = np.asarray(self.insert_weights, dtype=np.float64)
            if w.shape != (len(self.insert_edges),):
                raise GraphError("insert_weights must parallel insert_edges")
            if np.any(w <= 0):
                raise GraphError("insert_weights must be strictly positive")
            object.__setattr__(self, "insert_weights", w)

    @property
    def num_changes(self) -> int:
        """Total edges touched — the churn magnitude benches sweep over."""
        return len(self.insert_edges) + len(self.delete_edges)

    @property
    def is_empty(self) -> bool:
        return self.num_changes == 0

    def __repr__(self) -> str:
        return (
            f"GraphDelta(insert={len(self.insert_edges)}, delete={len(self.delete_edges)})"
        )


@dataclass(frozen=True)
class DeltaRemap:
    """What one applied :class:`GraphDelta` did to derived graph state.

    ``slot_remap[j]`` is the new directed slot of old slot ``j`` (``-1``
    when the slot's edge was deleted); ``mutated_nodes`` the sorted node
    IDs whose incident edge set (and hence walk-sampling law) changed;
    ``deleted_edge_keys`` the sorted ``min·n + max`` keys of the removed
    undirected edges, ready for vectorized searchsorted probes.
    """

    slot_remap: np.ndarray
    mutated_nodes: np.ndarray
    deleted_edge_keys: np.ndarray
    edges_deleted: int
    edges_inserted: int
    old_n_slots: int
    new_n_slots: int

    @property
    def num_mutated(self) -> int:
        return len(self.mutated_nodes)
