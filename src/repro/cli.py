"""Command-line interface: run the paper's algorithms from a shell.

Examples
--------
::

    python -m repro walk --graph torus:8x8 --length 4096 --seed 7
    python -m repro walk --graph hypercube:6 --length 8000 --algorithm all
    python -m repro walk --graph torus:8x8 --length 4096 --json
    python -m repro walks --graph regular:10000:4 --k 64 --length 512
    python -m repro serve --graph regular:2000:4 --rate 3 --ticks 12 --json
    python -m repro rst --graph grid:6x6 --seed 3
    python -m repro mixing --graph barbell:8:1 --seed 11
    python -m repro lowerbound --n 512

Every command routes through the :class:`~repro.engine.core.WalkEngine`
session façade; ``--json`` (walk/rst/mixing) emits the result dataclass as
machine-readable JSON for downstream tooling.

Graph specs are ``family:arg1:arg2...``:

========================  =========================================
spec                      graph
========================  =========================================
``path:N``                path on N nodes
``cycle:N``               cycle on N nodes
``complete:N``            K_N
``star:N``                star on N nodes
``grid:RxC``              R×C grid
``torus:RxC``             R×C torus
``hypercube:D``           D-dimensional hypercube
``tree:H``                complete binary tree of height H
``barbell:K:B``           two K-cliques, bridge of B edges
``lollipop:K:T``          K-clique with a T-edge tail
``gnp:N:P[:SEED]``        connected Erdős–Rényi G(N, P)
``regular:N:D[:SEED]``    random D-regular graph
``rgg:N:R[:SEED]``        random geometric graph, radius R
``file:PATH``             edge-list file (``u v [w]`` per line)
========================  =========================================
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Sequence

from repro.congest.phases import POOL_REFILL_CHURN
from repro.errors import ReproError
from repro.graphs import (
    Graph,
    barbell_graph,
    binary_tree_graph,
    complete_graph,
    cycle_graph,
    edge_list_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    pseudo_diameter,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)
from repro.util.tables import render_table

__all__ = ["parse_graph_spec", "main"]


def _dims(arg: str) -> tuple[int, int]:
    parts = arg.lower().split("x")
    if len(parts) != 2:
        raise ValueError(f"expected RxC, got {arg!r}")
    return int(parts[0]), int(parts[1])


def parse_graph_spec(spec: str) -> Graph:
    """Build a graph from a ``family:args`` spec string (see module docs)."""
    parts = spec.split(":")
    family, args = parts[0].lower(), parts[1:]
    if family == "file":
        # The path is everything after the first colon (it may itself
        # contain colons), and case matters on real filesystems.
        path = spec.split(":", 1)[1] if ":" in spec else ""
        if not path:
            raise ValueError(f"bad graph spec {spec!r}: file needs a path, e.g. file:graph.txt")
        try:
            return edge_list_graph(path)
        except OSError as exc:
            raise ValueError(f"bad graph spec {spec!r}: {exc}") from exc
    try:
        if family == "path":
            return path_graph(int(args[0]))
        if family == "cycle":
            return cycle_graph(int(args[0]))
        if family == "complete":
            return complete_graph(int(args[0]))
        if family == "star":
            return star_graph(int(args[0]))
        if family == "grid":
            return grid_graph(*_dims(args[0]))
        if family == "torus":
            return torus_graph(*_dims(args[0]))
        if family == "hypercube":
            return hypercube_graph(int(args[0]))
        if family == "tree":
            return binary_tree_graph(int(args[0]))
        if family == "barbell":
            return barbell_graph(int(args[0]), int(args[1]))
        if family == "lollipop":
            return lollipop_graph(int(args[0]), int(args[1]))
        if family == "gnp":
            seed = int(args[2]) if len(args) > 2 else 0
            return erdos_renyi_graph(int(args[0]), float(args[1]), seed)
        if family == "regular":
            seed = int(args[2]) if len(args) > 2 else 0
            return random_regular_graph(int(args[0]), int(args[1]), seed)
        if family == "rgg":
            seed = int(args[2]) if len(args) > 2 else 0
            return random_geometric_graph(int(args[0]), float(args[1]), seed)
    except (IndexError, ValueError) as exc:
        raise ValueError(f"bad graph spec {spec!r}: {exc}") from exc
    raise ValueError(f"unknown graph family {parts[0]!r}")


def _attach_obs(engine, args: argparse.Namespace):
    """Attach the obs sinks requested by ``--trace``/``--metrics-out``/
    ``--heatmap-out``/``--slo``/``--dashboard`` (the last three only exist
    on commands that declare them)."""
    heatmap_out = getattr(args, "heatmap_out", None)
    slo_specs = getattr(args, "slo", None) or []
    want_slo = bool(slo_specs) or getattr(args, "dashboard", False)
    if (
        args.trace is None
        and args.metrics_out is None
        and heatmap_out is None
        and not want_slo
    ):
        return None, None, None, None
    from repro.obs import HeatmapSink, MetricsRegistry, SloMonitor, SloSpec, Tracer

    tracer = Tracer() if args.trace is not None else None
    metrics = MetricsRegistry() if args.metrics_out is not None else None
    heatmap = HeatmapSink() if heatmap_out is not None else None
    slo = (
        SloMonitor(specs=[SloSpec.parse(spec) for spec in slo_specs])
        if want_slo
        else None
    )
    engine.attach_observability(tracer=tracer, metrics=metrics, heatmap=heatmap, slo=slo)
    return tracer, metrics, heatmap, slo


def _write_obs(args: argparse.Namespace, tracer, metrics, heatmap=None) -> None:
    # Sink paths go to stderr so --json stdout stays machine-parseable.
    if tracer is not None:
        # The heatmap's Perfetto counter track rides along in one file.
        path = tracer.write(
            args.trace,
            extra_events=heatmap.counter_events() if heatmap is not None else (),
        )
        print(
            f"trace: {path} ({len(tracer.spans)} spans, {tracer.dropped} dropped)",
            file=sys.stderr,
        )
    if metrics is not None:
        path = metrics.write(args.metrics_out)
        print(f"metrics: {path} ({len(metrics)} series)", file=sys.stderr)
    if heatmap is not None and getattr(args, "heatmap_out", None):
        path = heatmap.write(args.heatmap_out)
        print(
            f"heatmap: {path} ({heatmap.located_messages()} located, "
            f"{heatmap.residual_messages()} residual messages)",
            file=sys.stderr,
        )


def _dashboard_frame(scheduler, slo, alerts, *, color: bool) -> str:
    """Build one per-tick dashboard frame from live scheduler + SLO state."""
    from repro.obs import format_dashboard
    from repro.obs.slo import ALL_TENANTS

    rules = [
        {"tenant": rule.spec.tenant or ALL_TENANTS, "burn": rule.last_burn}
        for rule in slo._rules  # noqa: SLF001 - dashboard reads live rule state
    ]
    rows = []
    for name in scheduler.tenants.order:
        tenant = scheduler.tenants.get(name)
        burn = max(
            (r["burn"] for r in rules if r["tenant"] in (name, ALL_TENANTS)),
            default=0.0,
        )
        rows.append(
            {
                "tenant": name,
                "p50": slo.percentile(name, 0.50),
                "p95": slo.percentile(name, 0.95),
                "attributed": tenant.rounds_attributed,
                "quota_debt": max(0, -int(tenant.balance)),
                "status": slo.status(name),
                "burn": burn,
            }
        )
    return format_dashboard(
        tick=slo.last_tick,
        round_now=slo.last_round,
        queue_depth=slo.last_queue_depth,
        rows=rows,
        alerts=alerts,
        color=color,
    )


def _cmd_walk(args: argparse.Namespace) -> int:
    from repro.engine import WalkEngine

    graph = parse_graph_spec(args.graph)
    # label, engine algorithm name, report_to_source (each legacy
    # free-function default, so round bills match the pre-engine CLI).
    algorithms = {
        "single": ("SINGLE-RANDOM-WALK", "paper", True),
        "podc09": ("PODC'09 baseline", "podc09", True),
        "naive": ("naive token walk", "naive", False),
        "metropolis": ("Metropolis-Hastings walk", "metropolis", False),
    }
    chosen = ["single", "podc09", "naive"] if args.algorithm == "all" else [args.algorithm]
    results = []
    for key in chosen:
        label, algorithm, report = algorithms[key]
        # A fresh one-shot engine per algorithm keeps the comparison
        # apples-to-apples: identical seed, independent ledgers.
        engine = WalkEngine(graph, seed=args.seed)
        res = engine.walk(
            args.source,
            args.length,
            algorithm=algorithm,
            pooled=False,
            record_paths=False,
            report_to_source=report,
        )
        results.append((label, res))
    if args.json:
        print(json.dumps([{"algorithm": label, **res.to_dict()} for label, res in results], indent=2))
        return 0
    print(
        render_table(
            ["algorithm", "mode", "destination", "rounds"],
            [(label, res.mode, res.destination, res.rounds) for label, res in results],
            title=f"{args.length}-step walk from node {args.source} on {graph.name} "
            f"(n={graph.n}, m={graph.m}, D≈{pseudo_diameter(graph)})",
        )
    )
    return 0


def _cmd_walks(args: argparse.Namespace) -> int:
    from repro.engine import WalkEngine

    graph = parse_graph_spec(args.graph)
    sources = [(args.source + i * args.stride) % graph.n for i in range(args.k)]
    engine = WalkEngine(graph, seed=args.seed, record_paths=False)
    tracer, metrics, heatmap, _slo = _attach_obs(engine, args)
    res = engine.walks(sources, args.length, batch=not args.serial)
    stats = engine.stats()
    _write_obs(args, tracer, metrics, heatmap)
    if args.json:
        print(json.dumps({**res.to_dict(), "stats": stats.to_dict()}, indent=2))
        return 0
    print(
        render_table(
            ["quantity", "value"],
            [
                ("mode", res.mode),
                ("k", res.k),
                ("length", res.length),
                ("λ", res.lam),
                ("rounds", res.rounds),
                ("refills (reactive)", res.get_more_walks_calls),
                ("pool unused", stats.pool_unused),
                ("shards", stats.num_shards),
                ("shard unused min/max", f"{stats.shard_unused_min}/{stats.shard_unused_max}"),
                ("shards below watermark", stats.shards_below_watermark),
                ("maintenance sweeps", stats.maintenance_sweeps),
            ],
            title=f"{args.k} pooled {args.length}-step walks on {graph.name} "
            f"(n={graph.n}, m={graph.m})",
        )
    )
    print("\nDestinations:", " ".join(str(d) for d in res.destinations))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine import WalkEngine
    from repro.serve import TrafficSpec, run_closed_loop, run_open_loop
    from repro.util.rng import make_rng

    graph = parse_graph_spec(args.graph)
    engine = WalkEngine(graph, seed=args.seed, record_paths=False, auto_maintain=False)
    tracer, metrics, heatmap, slo = _attach_obs(engine, args)
    registry = None
    if args.tenants:
        from repro.serve import TenantRegistry

        registry = TenantRegistry.parse(args.tenants)
    scheduler = engine.scheduler(
        tenants=registry,
        max_batch_requests=args.batch,
        max_batch_walks=args.batch_walks,
        pipelined_report=args.pipelined_report,
        max_queue_depth=args.queue_depth,
        maintain_round_budget=args.maintain_budget,
        default_deadline=args.deadline,
    )
    if args.dashboard:
        # Live dashboard: wrap scheduler.tick so each tick renders one
        # frame (to stderr — --json stdout stays machine-parseable).
        inner_tick = scheduler.tick
        seen_alerts = {"n": 0}
        use_color = sys.stderr.isatty()

        def _tick_and_render(*tick_args, **tick_kwargs):
            report = inner_tick(*tick_args, **tick_kwargs)
            new_alerts = slo.alerts[seen_alerts["n"] :]
            seen_alerts["n"] = len(slo.alerts)
            print(
                _dashboard_frame(scheduler, slo, new_alerts, color=use_color),
                file=sys.stderr,
            )
            return report

        scheduler.tick = _tick_and_render
    spec = TrafficSpec(
        n=graph.n,
        lengths=tuple(args.length),
        ks=tuple(args.k),
        hot_fraction=args.hot_fraction,
    )
    rng = make_rng(args.seed + 1)
    churn_reports = []
    churning = args.churn_delete_rate > 0 or args.churn_insert_rate > 0
    faulty = args.crash_rate > 0
    if churning and args.loop != "open":
        raise ValueError("--churn-*-rate needs --loop open (churn interleaves with ticks)")
    if faulty and args.loop != "open":
        raise ValueError("--crash-rate needs --loop open (faults interleave with ticks)")
    if faulty and churning:
        raise ValueError("--crash-rate and --churn-*-rate are mutually exclusive")
    if registry is not None and (faulty or churning or args.loop != "open"):
        raise ValueError(
            "--tenants drives one tagged open-loop stream per tenant; combine it "
            "with the plain --loop open (see examples/multi_tenant.py for a "
            "multi-tenant churn+crash episode)"
        )
    if registry is not None:
        from repro.serve import run_tenant_loop

        specs = [dataclasses.replace(spec, tenant=name) for name in registry.order]
        run_tenant_loop(scheduler, specs, rng, rate=args.rate, ticks=args.ticks)
    elif faulty:
        from repro.serve import run_fault_loop

        run_fault_loop(
            scheduler,
            spec,
            rng,
            crash_rate=args.crash_rate,
            recover_after=args.recover_after,
            ticks=args.ticks,
            rate=args.rate,
            fault_seed=args.fault_seed if args.fault_seed is not None else args.seed + 2,
        )
    elif churning:
        from repro.dynamic import ChurnSpec, run_churn_loop

        churn = ChurnSpec(
            delete_rate=args.churn_delete_rate,
            insert_rate=args.churn_insert_rate,
            round_budget=args.churn_budget,
        )
        _tickets, churn_reports = run_churn_loop(
            scheduler, spec, churn, rng, rate=args.rate, ticks=args.ticks
        )
    elif args.loop == "open":
        run_open_loop(scheduler, spec, rng, rate=args.rate, ticks=args.ticks)
    else:
        run_closed_loop(
            scheduler, spec, rng, concurrency=args.concurrency, total=args.requests
        )
    stats = scheduler.stats()
    _write_obs(args, tracer, metrics, heatmap)
    if args.json:
        payload = {"scheduler": stats.to_dict(), "engine": engine.stats().to_dict()}
        if churn_reports:
            payload["churn"] = [r.to_dict() for r in churn_reports]
        if slo is not None:
            payload["slo"] = slo.summary()
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        ("loop", args.loop),
        ("submitted", stats.submitted),
        ("admitted", stats.admitted),
        ("rejected", f"{stats.rejected} {stats.rejects_by_reason or ''}".strip()),
        ("completed", stats.completed),
        ("deadline misses", stats.deadline_misses),
        ("walks served", stats.walks_served),
        ("scheduling rounds (ticks)", stats.ticks),
        ("cohorts", stats.cohorts),
        ("p50/p99 rounds per request", f"{stats.p50_rounds_per_request:.0f}/{stats.p99_rounds_per_request:.0f}"),
        ("p50/p99 latency (rounds)", f"{stats.p50_latency_rounds:.0f}/{stats.p99_latency_rounds:.0f}"),
        ("serve-family rounds", stats.serve_rounds),
        ("maintain rounds", stats.maintain_rounds),
        ("session rounds total", engine.network.rounds),
    ]
    if churn_reports:
        est = engine.stats()
        rows.extend(
            [
                ("churn events", est.churn_events),
                ("tokens evicted (churn)", est.churn_tokens_evicted),
                ("tokens regenerated (churn)", est.churn_tokens_regenerated),
                ("churn refill rounds", est.phase_rounds.get(POOL_REFILL_CHURN, 0)),
            ]
        )
    if faulty:
        rows.extend(
            [
                ("crashes / recoveries", f"{stats.crashes_seen}/{stats.recoveries_seen}"),
                ("walks recovered / restarted", f"{stats.walks_recovered}/{stats.walks_restarted}"),
                ("recovery rounds", stats.recovery_rounds),
                ("ticket retries (never dropped)", stats.ticket_retries),
                ("backoff waits", stats.backoff_waits),
            ]
        )
    if registry is not None:
        rows.append(("cohort splits / throttled ticks", f"{stats.cohort_splits}/{stats.throttled_ticks}"))
        total_attr = sum(t["rounds_attributed"] for t in stats.tenants.values()) or 1
        for name, t in stats.tenants.items():
            share = t["rounds_attributed"] / total_attr
            rows.append(
                (
                    f"tenant {name} (w={t['weight']:g})",
                    f"done {t['completed']}/{t['admitted']} walks {t['walks_served']} "
                    f"attr {t['rounds_attributed']} ({share:.1%}) "
                    f"miss {t['deadline_misses']} throttle {t['throttled_ticks']}",
                )
            )
    print(
        render_table(
            ["quantity", "value"],
            rows,
            title=f"scheduled serving on {graph.name} (n={graph.n}, m={graph.m})",
        )
    )
    return 0


def _cmd_rst(args: argparse.Namespace) -> int:
    from repro.engine import WalkEngine

    graph = parse_graph_spec(args.graph)
    res = WalkEngine(graph, seed=args.seed).spanning_tree(root=args.source)
    if args.json:
        print(json.dumps(res.to_dict(), indent=2))
        return 0
    print(
        render_table(
            ["phase ℓ", "walks", "covered", "rounds"],
            [(p.length, p.walks, p.covered, p.rounds) for p in res.phases],
            title=f"Random spanning tree of {graph.name}: {res.rounds} rounds, "
            f"cover time {res.cover_time}",
        )
    )
    print("\nTree edges:", " ".join(f"{u}-{v}" for u, v in res.edges))
    return 0


def _cmd_mixing(args: argparse.Namespace) -> int:
    from repro.engine import WalkEngine
    from repro.markov import exact_mixing_time

    graph = parse_graph_spec(args.graph)
    est = WalkEngine(graph, seed=args.seed).mixing_time(args.source, samples=args.samples)
    if args.json:
        print(json.dumps(est.to_dict(), indent=2))
        return 0
    exact = exact_mixing_time(graph, args.source) if graph.n <= 512 else None
    rows = [
        ("estimated τ̃", est.estimate),
        ("exact τ_mix", exact if exact is not None else "(graph too large)"),
        ("rounds", est.rounds),
        ("samples per test", est.samples_per_test),
        ("spectral gap interval", str(est.spectral_gap_bounds(graph.n))),
        ("conductance interval", str(est.conductance_bounds(graph.n))),
    ]
    print(render_table(["quantity", "value"], rows, title=f"Mixing time of {graph.name} from node {args.source}"))
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import format_report, load_metrics, load_spans, summarize

    spans = load_spans(args.path)
    metrics = load_metrics(args.metrics) if args.metrics else None
    heatmap = json.loads(Path(args.heatmap).read_text()) if args.heatmap else None
    print(format_report(summarize(spans, top=args.top), metrics=metrics, heatmap=heatmap))
    return 0


def _cmd_lowerbound(args: argparse.Namespace) -> int:
    from repro.graphs import build_lower_bound_graph, round_bound
    from repro.lowerbound import IntervalMergingVerifier, PathVerificationInstance

    inst = build_lower_bound_graph(args.n)
    pv = PathVerificationInstance.from_lower_bound(inst)
    result = IntervalMergingVerifier(pv).run()
    rows = [
        ("path length ℓ", pv.length),
        ("graph size", inst.graph.n),
        ("diameter bound", pseudo_diameter(inst.graph)),
        ("measured rounds", result.rounds),
        ("Ω(√(ℓ/log ℓ))", f"{round_bound(pv.length):.1f}"),
        ("verified", result.verified),
    ]
    print(render_table(["quantity", "value"], rows, title=f"PATH-VERIFICATION on G_n (n={args.n})"))
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a round-time trace here: .jsonl → span lines, anything "
        "else → Chrome trace JSON (Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write metrics here after the run: .json → registry snapshot, "
        "anything else → Prometheus text exposition",
    )
    parser.add_argument(
        "--heatmap-out",
        default=None,
        metavar="PATH",
        help="write the per-edge congestion cartography (JSON summary) here; "
        "with --trace the heatmap's Perfetto counter track is merged into "
        "the Chrome trace",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed random walks (PODC 2010) — run the algorithms from the shell.",
    )
    from repro import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the package version and exit (install sanity check)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    walk = sub.add_parser("walk", help="sample an ℓ-step walk")
    walk.add_argument("--graph", required=True, help="graph spec, e.g. torus:8x8")
    walk.add_argument("--length", type=int, required=True)
    walk.add_argument("--source", type=int, default=0)
    walk.add_argument("--seed", type=int, default=0)
    walk.add_argument(
        "--algorithm",
        choices=["single", "podc09", "naive", "metropolis", "all"],
        default="single",
    )
    walk.add_argument(
        "--json",
        action="store_true",
        help="emit the result dataclass(es) as machine-readable JSON",
    )
    walk.set_defaults(fn=_cmd_walk)

    walks = sub.add_parser(
        "walks", help="serve a pooled k-walk batch from one engine session"
    )
    walks.add_argument("--graph", required=True, help="graph spec, e.g. regular:10000:4")
    walks.add_argument("--length", type=int, required=True)
    walks.add_argument("--k", type=int, default=16, help="number of walks in the batch")
    walks.add_argument("--source", type=int, default=0, help="first source node")
    walks.add_argument(
        "--stride", type=int, default=37, help="source spacing: source + i*stride mod n"
    )
    walks.add_argument("--seed", type=int, default=0)
    walks.add_argument(
        "--serial",
        action="store_true",
        help="use the serial per-source stitching loop instead of batch sweeps",
    )
    walks.add_argument(
        "--json",
        action="store_true",
        help="emit the result plus engine stats (shards, watermarks) as JSON",
    )
    _add_obs_flags(walks)
    walks.set_defaults(fn=_cmd_walks)

    serve = sub.add_parser(
        "serve", help="run a synthetic request stream through the WalkScheduler"
    )
    serve.add_argument("--graph", required=True, help="graph spec, e.g. regular:2000:4")
    serve.add_argument(
        "--loop", choices=["open", "closed"], default="open", help="traffic discipline"
    )
    serve.add_argument(
        "--length",
        type=int,
        nargs="+",
        default=[256],
        help="walk-length menu (uniform draw per request)",
    )
    serve.add_argument(
        "--k", type=int, nargs="+", default=[4], help="batch-width menu per request"
    )
    serve.add_argument("--rate", type=float, default=2.0, help="open loop: arrivals per tick")
    serve.add_argument("--ticks", type=int, default=16, help="open loop: arrival ticks")
    serve.add_argument(
        "--concurrency", type=int, default=8, help="closed loop: outstanding requests"
    )
    serve.add_argument(
        "--requests", type=int, default=32, help="closed loop: total requests"
    )
    serve.add_argument(
        "--hot-fraction",
        type=float,
        default=0.0,
        help="fraction of requests pinned to the hot source (node 0)",
    )
    serve.add_argument(
        "--churn-delete-rate",
        type=float,
        default=0.0,
        help="open loop: Poisson mean edge deletions per tick (repro.dynamic)",
    )
    serve.add_argument(
        "--churn-insert-rate",
        type=float,
        default=0.0,
        help="open loop: Poisson mean edge insertions per tick",
    )
    serve.add_argument(
        "--churn-budget",
        type=int,
        default=None,
        help="round budget per churn regeneration sweep (default: restore fully)",
    )
    serve.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="open loop: expected crash events per node over the run "
        "(seeded crash/recover schedule; requests are retried, never dropped)",
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the crash/recover fault schedule (default: derived from --seed)",
    )
    serve.add_argument(
        "--recover-after",
        type=int,
        default=256,
        help="rounds a crashed node stays down before its scheduled recovery",
    )
    serve.add_argument("--deadline", type=int, default=None, help="round budget per request")
    serve.add_argument(
        "--maintain-budget",
        type=int,
        default=None,
        help="per-tick round budget for the deadline-driven maintain sweep",
    )
    serve.add_argument("--batch", type=int, default=8, help="max requests per cohort")
    serve.add_argument(
        "--batch-walks",
        type=int,
        default=None,
        help="pack cohorts by total walk count (Σk budget, splitting tickets) "
        "instead of request count",
    )
    serve.add_argument(
        "--pipelined-report",
        action="store_true",
        help="share ONE height+Σk−1 report convergecast per cohort instead of "
        "one height+k wave per request",
    )
    serve.add_argument(
        "--tenants",
        default=None,
        help="comma-separated name:weight:quota triples (quota 0 = unmetered), "
        "e.g. free:1:0,pro:4:0,batch:2:2000; drives one open-loop stream per "
        "tenant and adds per-tenant telemetry rows",
    )
    serve.add_argument("--queue-depth", type=int, default=256, help="admission queue bound")
    serve.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="declarative burn-rate rule (repeatable), e.g. "
        "name=lat-pro,metric=latency,target=2000,objective=0.05,window=8,"
        "burn=2,tenant=pro; metrics: latency, deadline_miss, reject, throttle",
    )
    serve.add_argument(
        "--dashboard",
        action="store_true",
        help="render a live per-tick ANSI dashboard to stderr "
        "(tenants × p50/p95 latency, attributed rounds, quota debt, SLO status)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit scheduler + engine telemetry as machine-readable JSON",
    )
    _add_obs_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    report = sub.add_parser(
        "trace-report", help="summarize a trace written by --trace"
    )
    report.add_argument("path", help="Chrome-trace JSON or .jsonl span file")
    report.add_argument("--top", type=int, default=10, help="phases to list")
    report.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="metrics snapshot JSON (--metrics-out foo.json) to fold in: "
        "adds the SLO/alert summary section",
    )
    report.add_argument(
        "--heatmap",
        default=None,
        metavar="PATH",
        help="heatmap export (--heatmap-out) to fold in: adds the "
        "congestion-cartography section",
    )
    report.set_defaults(fn=_cmd_trace_report)

    rst = sub.add_parser("rst", help="sample a uniform random spanning tree")
    rst.add_argument("--graph", required=True)
    rst.add_argument("--source", type=int, default=0)
    rst.add_argument("--seed", type=int, default=0)
    rst.add_argument("--json", action="store_true", help="emit the result as JSON")
    rst.set_defaults(fn=_cmd_rst)

    mixing = sub.add_parser("mixing", help="estimate the mixing time decentrally")
    mixing.add_argument("--graph", required=True)
    mixing.add_argument("--source", type=int, default=0)
    mixing.add_argument("--seed", type=int, default=0)
    mixing.add_argument("--samples", type=int, default=None)
    mixing.add_argument("--json", action="store_true", help="emit the result as JSON")
    mixing.set_defaults(fn=_cmd_mixing)

    lb = sub.add_parser("lowerbound", help="run PATH-VERIFICATION on G_n")
    lb.add_argument("--n", type=int, default=256)
    lb.set_defaults(fn=_cmd_lowerbound)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
