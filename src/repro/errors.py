"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad edges, disconnectedness, ...)."""


class ProtocolError(ReproError):
    """Raised when a CONGEST protocol violates the model or its own contract.

    Examples: sending a message wider than the per-round bandwidth allows,
    addressing a non-neighbor, or a protocol failing to terminate within the
    engine's round budget.
    """


class WalkError(ReproError):
    """Raised for invalid random-walk requests (non-positive length, ...)."""


class ConvergenceError(ReproError):
    """Raised when an iterative estimator fails to converge within budget."""
