"""Section 3.2: reducing PATH-VERIFICATION to the random-walk problem.

The construction weights path edge ``(v_i, v_{i+1})`` of ``G_n`` with
``(2n)^{2i}``, so a walk standing on ``P`` continues forward with
probability ``≥ 1 − 1/(2n)²`` per step and hence follows the *entire* path
w.h.p.  Any distributed walk algorithm must in effect verify the realized
ℓ-length path (every node must learn its correct positions), so the
verification lower bound transfers: Ω(√(ℓ/log ℓ)) rounds (Theorem 3.7).

The raw weights overflow any machine representation almost immediately
(``(2n)^{2i}`` at ``i ≈ 50`` already exceeds float64 for n=1000), but a
walk only ever needs *local weight ratios*, which have a closed form
(:meth:`~repro.graphs.lower_bound.LowerBoundInstance.forward_probability`).
:func:`weighted_walk` samples from those exact per-node laws — this is the
DESIGN.md substitution for the paper's unbounded multigraph: transition
probabilities are preserved exactly, only the representation changes.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import GraphError
from repro.graphs.lower_bound import LowerBoundInstance, build_lower_bound_graph, round_bound
from repro.lowerbound.path_verification import (
    IntervalMergingVerifier,
    PathVerificationInstance,
)
from repro.util.rng import make_rng

__all__ = ["ReductionTrial", "ReductionReport", "weighted_walk", "simulate_reduction"]


def weighted_walk(instance: LowerBoundInstance, length: int, rng) -> list[int]:
    """Sample a ``length``-step walk on ``G'_n`` starting at ``v_1``.

    At path node ``v_i`` the transition law over (forward, backward, tree)
    is computed from exact weight ratios; everywhere off the path all
    incident edges have weight 1, so steps are uniform.
    """
    if length < 1:
        raise GraphError("length must be >= 1")
    rng = make_rng(rng)
    graph = instance.graph
    w = 2.0 * instance.n_prime
    walk = [instance.path_node(1)]
    for _ in range(length):
        node = walk[-1]
        if instance.is_path_node(node):
            i = instance.path_index(node)
            # Relative weights, normalized by the dominant forward weight
            # (or backward weight at the path's end).
            forward = 1.0 if i < instance.n_prime else 0.0
            backward = w**-2.0 if 1 < i <= instance.n_prime else 0.0
            if i == instance.n_prime:
                backward = 1.0  # at the last vertex the backward edge dominates
                tree = w ** (-2.0 * (i - 1))
            else:
                tree = w ** (-2.0 * i)
            total = forward + backward + tree
            u = rng.random() * total
            if u < forward:
                walk.append(instance.path_node(i + 1))
            elif u < forward + backward:
                walk.append(instance.path_node(i - 1))
            else:
                walk.append(instance.leaf_of_path_node(node))
        else:
            walk.append(graph.random_neighbor(node, rng))
    return walk


@dataclass(frozen=True)
class ReductionTrial:
    """One sampled walk on ``G'_n``."""

    followed_path: bool
    first_deviation: int | None


@dataclass(frozen=True)
class ReductionReport:
    """Aggregate of :func:`simulate_reduction`.

    ``follow_fraction`` should be ``≥ 1 − 1/n`` (the paper's w.h.p. bound);
    ``verification_rounds`` is the measured cost of verifying the realized
    path with the interval-merging algorithm, to be compared against
    ``lower_bound_curve = √(ℓ/log ℓ)``.
    """

    n: int
    length: int
    trials: int
    follow_fraction: float
    verification_rounds: int
    lower_bound_curve: float
    diameter_bound: int


def simulate_reduction(
    n: int,
    *,
    length: int | None = None,
    trials: int = 20,
    seed=None,
    verify: bool = True,
) -> ReductionReport:
    """Run the Theorem 3.7 experiment end to end.

    Builds ``G'_n``, samples ``trials`` weighted walks of the given length
    (default: the full path), records how often the walk is exactly the
    path prefix, and measures the rounds the interval-merging verifier
    needs on that path.
    """
    if trials < 1:
        raise GraphError("need at least one trial")
    rng = make_rng(seed)
    instance = build_lower_bound_graph(n)
    length = instance.n_prime - 1 if length is None else length
    if not 1 <= length <= instance.n_prime - 1:
        raise GraphError(f"length must be in [1, {instance.n_prime - 1}]")
    expected = [instance.path_node(i) for i in range(1, length + 2)]

    followed = 0
    for _ in range(trials):
        walk = weighted_walk(instance, length, rng)
        trial_follow = walk == expected
        followed += int(trial_follow)

    rounds = 0
    if verify:
        pv = PathVerificationInstance(
            graph=instance.graph, sequence=tuple(expected)
        )
        result = IntervalMergingVerifier(pv).run()
        if not result.verified:
            raise GraphError("verifier failed on a genuine path (bug)")
        rounds = result.rounds

    from repro.graphs.properties import pseudo_diameter

    return ReductionReport(
        n=n,
        length=length,
        trials=trials,
        follow_fraction=followed / trials,
        verification_rounds=rounds,
        lower_bound_curve=round_bound(length + 1),
        diameter_bound=pseudo_diameter(instance.graph),
    )
