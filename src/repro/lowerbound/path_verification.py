"""The PATH-VERIFICATION problem and its natural interval-merging algorithm.

Definition 3.1: nodes ``v_1 … v_ℓ`` each know their order number; some node
must end up verifying that consecutive pairs are graph edges — i.e. hold a
verified segment ``[1, ℓ]``.

The verification *class* of Section 3.1: nodes hold verified segments and
can only grow them by combining with segments received from neighbors
(tokens are ``O(log n)``-bit interval endpoints; selective forwarding only,
no compression).  Figure 1 shows the two combination moves, which we
implement exactly:

* **junction witness** (Fig. 1b): the holder of position ``i+1`` receives a
  segment ending at ``i`` *directly from the neighbor that holds position
  i* — the physical receipt proves the edge ``(v_i, v_{i+1})`` exists, so
  ``[a, i] ⊕ [i+1, b] → [a, b]`` is sound there.  Messages carry
  "sender-holds-endpoint" bits to make this checkable.
* **overlap merge** (Fig. 1c): two verified segments sharing at least one
  position merge anywhere, junctions included by induction.

:class:`IntervalMergingVerifier` is the natural greedy algorithm in this
class: every round, every node sends each neighbor the most useful verified
segment it has not yet sent there (one segment per edge per round — the
CONGEST budget).  Theorem 3.2 says *no* algorithm in the class beats
``Ω(√(ℓ/log ℓ))`` rounds on ``G_n``; the E6 bench measures this algorithm
against that curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError, ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.lower_bound import LowerBoundInstance
from repro.util.intervals import Interval, IntervalSet

__all__ = [
    "PathVerificationInstance",
    "VerificationResult",
    "IntervalMergingVerifier",
    "verify_path_centralized",
]


@dataclass(frozen=True)
class PathVerificationInstance:
    """A claimed path: ``sequence[i]`` is the node holding position ``i+1``."""

    graph: Graph
    sequence: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.sequence)

    @classmethod
    def from_lower_bound(
        cls, instance: LowerBoundInstance, length: int | None = None
    ) -> "PathVerificationInstance":
        """The canonical hard instance: the first ``length`` vertices of ``P``."""
        n = instance.n_prime if length is None else length
        if not 1 <= n <= instance.n_prime:
            raise GraphError(f"length must be in [1, {instance.n_prime}]")
        return cls(graph=instance.graph, sequence=tuple(range(n)))

    def positions_of(self, node: int) -> list[int]:
        """1-indexed positions held by ``node`` (usually zero or one)."""
        return [i + 1 for i, holder in enumerate(self.sequence) if holder == node]


def verify_path_centralized(graph: Graph, sequence: tuple[int, ...] | list[int]) -> bool:
    """Ground truth: do consecutive sequence entries form graph edges?"""
    return all(graph.has_edge(int(a), int(b)) for a, b in zip(sequence, sequence[1:]))


@dataclass
class VerificationResult:
    """Outcome of a distributed verification run."""

    verified: bool
    rounds: int
    verifier_node: int | None
    messages: int
    coverage_history: list[int] = field(repr=False, default_factory=list)


class _NodeState:
    """Per-node verifier state: verified segments + witnessed junctions.

    A junction ``j`` is witnessed at this node when it can soundly glue
    ``[·, j]`` to ``[j+1, ·]`` (it holds one side of the junction and heard
    the abutting segment from the very neighbor holding the other side).
    """

    __slots__ = ("positions", "verified", "junctions", "sent")

    def __init__(self, positions: list[int]) -> None:
        self.positions = set(positions)
        self.verified = IntervalSet((p, p) for p in positions)
        self.junctions: set[int] = set()
        # Intervals already sent per neighbor, to avoid re-sending.
        self.sent: dict[int, set[Interval]] = {}

    def absorb(self, interval: Interval) -> bool:
        """Add a verified interval, then re-close under witnessed junctions."""
        changed = self.verified.add(interval)
        if not changed:
            return False
        self._close_junctions()
        return True

    def _close_junctions(self) -> None:
        # Glue touching segments whose junction this node has witnessed.
        merged = True
        while merged:
            merged = False
            items = self.verified.as_list()
            for (alo, ahi), (blo, bhi) in zip(items, items[1:]):
                if ahi + 1 == blo and ahi in self.junctions:
                    self.verified.add((alo, bhi))
                    merged = True
                    break

    def witness(self, junction: int) -> None:
        self.junctions.add(junction)
        self._close_junctions()

    def best_unsent(self, neighbor: int) -> Interval | None:
        sent = self.sent.setdefault(neighbor, set())
        best: Interval | None = None
        best_len = 0
        for iv in self.verified:
            if iv in sent:
                continue
            width = iv[1] - iv[0] + 1
            if width > best_len:
                best, best_len = iv, width
        return best


class IntervalMergingVerifier:
    """Greedy interval-merging verification on a claimed path.

    Each round, each node sends to each neighbor its widest not-yet-sent
    verified segment (2 endpoint words + 2 holder bits = one
    ``O(log n)``-bit message per edge per round).  Runs until some node
    verifies ``[1, ℓ]`` or ``max_rounds`` elapse.

    The simulation is synchronous-lockstep rather than engine-driven purely
    for speed — semantics are identical to a
    :class:`~repro.congest.protocol.Protocol` with per-edge capacity 1
    since the algorithm never wants to send two messages on one edge in a
    round (tests cross-check rounds against an engine run on small
    instances).
    """

    def __init__(self, instance: PathVerificationInstance) -> None:
        self.instance = instance
        if not verify_path_centralized(instance.graph, instance.sequence):
            raise GraphError("instance sequence is not a path; the verifier would never finish")
        graph = instance.graph
        holder_of: dict[int, int] = {}
        positions: list[list[int]] = [[] for _ in range(graph.n)]
        for idx, node in enumerate(instance.sequence):
            positions[node].append(idx + 1)
            holder_of[idx + 1] = node
        self._holder_of = holder_of
        self.states = [_NodeState(positions[v]) for v in range(graph.n)]
        self._neighbors = [sorted(graph.neighbor_set(v) - {v}) for v in range(graph.n)]

    def run(self, *, max_rounds: int = 1_000_000) -> VerificationResult:
        target: Interval = (1, self.instance.length)
        states = self.states
        messages = 0
        coverage_history: list[int] = []

        winner = self._find_verifier(target)
        rounds = 0
        while winner is None:
            if rounds >= max_rounds:
                raise ProtocolError(f"verification exceeded {max_rounds} rounds")
            rounds += 1
            # Collect this round's sends (lockstep: all based on pre-round state).
            deliveries: list[tuple[int, int, Interval, bool, bool]] = []
            for v, state in enumerate(states):
                for u in self._neighbors[v]:
                    interval = state.best_unsent(u)
                    if interval is None:
                        continue
                    state.sent[u].add(interval)
                    holds_lo = interval[0] in state.positions
                    holds_hi = interval[1] in state.positions
                    deliveries.append((v, u, interval, holds_lo, holds_hi))
            if not deliveries:
                # Nothing left to say anywhere: verification is stuck.
                return VerificationResult(
                    verified=False,
                    rounds=rounds,
                    verifier_node=None,
                    messages=messages,
                    coverage_history=coverage_history,
                )
            messages += len(deliveries)
            for sender, receiver, interval, holds_lo, holds_hi in deliveries:
                state = states[receiver]
                lo, hi = interval
                # Junction witnessing (Fig. 1b): receipt directly from the
                # boundary holder proves the corresponding path edge.
                if holds_hi and (hi + 1) in state.positions:
                    state.witness(hi)
                if holds_lo and (lo - 1) in state.positions:
                    state.witness(lo - 1)
                state.absorb(interval)
            coverage_history.append(self._max_coverage())
            winner = self._find_verifier(target)

        return VerificationResult(
            verified=True,
            rounds=rounds,
            verifier_node=winner,
            messages=messages,
            coverage_history=coverage_history,
        )

    def _find_verifier(self, target: Interval) -> int | None:
        for v, state in enumerate(self.states):
            if state.verified.covers(target):
                return v
        return None

    def _max_coverage(self) -> int:
        best = 0
        for state in self.states:
            largest = state.verified.largest()
            if largest is not None:
                best = max(best, largest[1] - largest[0] + 1)
        return best
