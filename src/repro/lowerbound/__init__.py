"""Section 3: the PATH-VERIFICATION lower bound and its walk reduction."""

from repro.lowerbound.path_verification import (
    IntervalMergingVerifier,
    PathVerificationInstance,
    VerificationResult,
    verify_path_centralized,
)
from repro.lowerbound.reduction import (
    ReductionReport,
    ReductionTrial,
    simulate_reduction,
    weighted_walk,
)

__all__ = [
    "IntervalMergingVerifier",
    "PathVerificationInstance",
    "VerificationResult",
    "verify_path_centralized",
    "ReductionReport",
    "ReductionTrial",
    "simulate_reduction",
    "weighted_walk",
]
