"""repro — reproduction of "Efficient Distributed Random Walks with Applications".

Das Sarma, Nanongkai, Pandurangan, Tetali — PODC 2010 (arXiv:0911.3195).

The recommended entry point is the session façade::

    from repro import WalkEngine, torus_graph

    engine = WalkEngine(torus_graph(16, 16), seed=7)
    engine.prepare(length_hint=4096)      # optional: warm the Phase-1 pool
    result = engine.walk(0, 4096)         # pooled; later queries skip Phase 1
    tree = engine.spanning_tree(root=0)
    print(engine.stats())

The legacy free functions (``single_random_walk`` & co.) remain available
as thin wrappers over a one-shot engine.  Package tour (see README):

* :mod:`repro.engine`    — the ``WalkEngine`` session API and the unified
  request/result model
* :mod:`repro.serve`     — the round-driven request scheduler (admission
  control, deadlines, merged cohort serving) and synthetic workloads
* :mod:`repro.dynamic`   — graph churn: batched edge deltas, incremental
  pool invalidation, charged regeneration, churn workloads
* :mod:`repro.obs`       — passive round-time observability: span tracing
  (Chrome trace / JSONL), metrics (Prometheus text), overhead-free probes
* :mod:`repro.graphs`    — graph substrate and generators
* :mod:`repro.congest`   — the CONGEST-model simulator
* :mod:`repro.markov`    — exact Markov-chain ground truth
* :mod:`repro.walks`     — the paper's walk algorithms and baselines
* :mod:`repro.lowerbound` — Section-3 path verification and reduction
* :mod:`repro.apps`      — random spanning trees and mixing-time estimation
"""

from repro.apps import (
    estimate_mixing_time,
    power_iteration_mixing_time,
    random_spanning_tree,
)
from repro.congest import Network
from repro.dynamic import ChurnReport, ChurnSpec, GraphDelta
from repro.engine import (
    ALGORITHMS,
    EngineStats,
    ResultBase,
    WalkEngine,
    WalkRequest,
)
from repro.errors import (
    ConvergenceError,
    GraphError,
    ProtocolError,
    ReproError,
    WalkError,
)
from repro.graphs import (
    Graph,
    barbell_graph,
    binary_tree_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)
from repro.walks import (
    ManyWalksResult,
    WalkResult,
    many_random_walks,
    naive_metropolis_walk,
    naive_random_walk,
    podc09_random_walk,
    single_random_walk,
)

__version__ = "1.2.0"

__all__ = [
    # session API + request/result model
    "WalkEngine",
    "WalkRequest",
    "ResultBase",
    "EngineStats",
    "ALGORITHMS",
    # substrate
    "Network",
    "Graph",
    # dynamic graphs (churn)
    "GraphDelta",
    "ChurnReport",
    "ChurnSpec",
    # graph generators
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree_graph",
    "barbell_graph",
    "lollipop_graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "random_geometric_graph",
    # one-shot walk entry points
    "single_random_walk",
    "many_random_walks",
    "naive_random_walk",
    "podc09_random_walk",
    "naive_metropolis_walk",
    "WalkResult",
    "ManyWalksResult",
    # applications
    "random_spanning_tree",
    "estimate_mixing_time",
    "power_iteration_mixing_time",
    # errors
    "ReproError",
    "GraphError",
    "ProtocolError",
    "WalkError",
    "ConvergenceError",
    "__version__",
]
