"""repro — reproduction of "Efficient Distributed Random Walks with Applications".

Das Sarma, Nanongkai, Pandurangan, Tetali — PODC 2010 (arXiv:0911.3195).

Public surface (see README for the tour):

* :mod:`repro.graphs`   — graph substrate and generators
* :mod:`repro.congest`  — the CONGEST-model simulator
* :mod:`repro.markov`   — exact Markov-chain ground truth
* :mod:`repro.walks`    — the paper's walk algorithms and baselines
* :mod:`repro.lowerbound` — Section-3 path verification and reduction
* :mod:`repro.apps`     — random spanning trees and mixing-time estimation
"""

from repro.errors import (
    ConvergenceError,
    GraphError,
    ProtocolError,
    ReproError,
    WalkError,
)

__version__ = "1.1.0"

__all__ = [
    "ReproError",
    "GraphError",
    "ProtocolError",
    "WalkError",
    "ConvergenceError",
    "__version__",
]
