"""Distributed short-walk storage.

After Phase 1 (and after any GET-MORE-WALKS call), the network holds a pool
of *short walk tokens*: walk ``i`` started at ``source``, took ``length``
steps, and its token now sits at ``destination``, which knows the source ID
and the length (Algorithm 2: "each destination knows the source ID as well
as the length of the corresponding walk").  Crucially the *source does not
know the destinations* — that is what SAMPLE-DESTINATION exists to discover.

:class:`WalkStore` is the global bookkeeping view of that distributed state.
Everything in it corresponds to node-local knowledge:

* ``tokens_at(holder, source)`` — tokens physically stored at ``holder``;
* ``path`` on a record — the hop sequence; node ``path[j]`` locally knows
  its successor ``path[j+1]`` (this is what walk *regeneration* re-announces
  through the network, cf. "Regenerating the entire random walk", §2.2).

The store never touches the round ledger; moving its information around is
the algorithms' job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WalkError

__all__ = ["TokenRecord", "WalkStore"]


@dataclass(frozen=True)
class TokenRecord:
    """One prepared short walk.

    ``path`` (when recorded) holds the ``length + 1`` node IDs from source
    to destination inclusive; it may be ``None`` when the caller disabled
    path recording to save memory on large sweeps.
    """

    token_id: int
    source: int
    length: int
    destination: int
    path: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise WalkError(f"token length must be >= 0, got {self.length}")
        if self.path is not None and len(self.path) != self.length + 1:
            raise WalkError(
                f"path has {len(self.path)} nodes but length={self.length} requires {self.length + 1}"
            )


class WalkStore:
    """All unused short-walk tokens, indexed by (holder, source)."""

    def __init__(self) -> None:
        self._by_holder_source: dict[tuple[int, int], list[TokenRecord]] = {}
        self._count_by_source: dict[int, int] = {}
        self._next_token_id = 0
        self.tokens_created = 0
        self.tokens_consumed = 0

    # ------------------------------------------------------------------
    # Creation / removal
    # ------------------------------------------------------------------
    def new_token_id(self) -> int:
        tid = self._next_token_id
        self._next_token_id += 1
        return tid

    def add(self, record: TokenRecord) -> None:
        key = (record.destination, record.source)
        self._by_holder_source.setdefault(key, []).append(record)
        self._count_by_source[record.source] = self._count_by_source.get(record.source, 0) + 1
        self.tokens_created += 1

    def remove(self, record: TokenRecord) -> None:
        """Delete a consumed token (Sweep 3 of SAMPLE-DESTINATION)."""
        key = (record.destination, record.source)
        bucket = self._by_holder_source.get(key, [])
        for i, existing in enumerate(bucket):
            if existing.token_id == record.token_id:
                bucket.pop(i)
                if not bucket:
                    del self._by_holder_source[key]
                self._count_by_source[record.source] -= 1
                self.tokens_consumed += 1
                return
        raise WalkError(f"token {record.token_id} not stored at node {record.destination}")

    # ------------------------------------------------------------------
    # Queries (all reflect node-local or aggregate knowledge)
    # ------------------------------------------------------------------
    def tokens_at(self, holder: int, source: int) -> list[TokenRecord]:
        """Unused tokens of ``source`` currently stored at ``holder``."""
        return list(self._by_holder_source.get((holder, source), []))

    def count_for_source(self, source: int) -> int:
        """Total unused tokens of ``source`` anywhere in the network."""
        return self._count_by_source.get(source, 0)

    def holders_for_source(self, source: int) -> dict[int, int]:
        """Map holder-node -> number of unused tokens of ``source`` there."""
        return {
            holder: len(bucket)
            for (holder, src), bucket in self._by_holder_source.items()
            if src == source and bucket
        }

    def iter_all(self) -> Iterator[TokenRecord]:
        for bucket in self._by_holder_source.values():
            yield from bucket

    def total_unused(self) -> int:
        return sum(len(b) for b in self._by_holder_source.values())

    def __len__(self) -> int:
        return self.total_unused()

    def __repr__(self) -> str:
        return (
            f"WalkStore(unused={self.total_unused()}, created={self.tokens_created}, "
            f"consumed={self.tokens_consumed})"
        )
