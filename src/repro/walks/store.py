"""Distributed short-walk storage (columnar).

After Phase 1 (and after any GET-MORE-WALKS call), the network holds a pool
of *short walk tokens*: walk ``i`` started at ``source``, took ``length``
steps, and its token now sits at ``destination``, which knows the source ID
and the length (Algorithm 2: "each destination knows the source ID as well
as the length of the corresponding walk").  Crucially the *source does not
know the destinations* — that is what SAMPLE-DESTINATION exists to discover.

:class:`WalkStore` is the global bookkeeping view of that distributed state.
Everything in it corresponds to node-local knowledge:

* ``tokens_at(holder, source)`` — tokens physically stored at ``holder``;
* ``path`` on a record — the hop sequence; node ``path[j]`` locally knows
  its successor ``path[j+1]`` (this is what walk *regeneration* re-announces
  through the network, cf. "Regenerating the entire random walk", §2.2).

Layout
------
The store is **columnar** (struct-of-arrays): token ``source`` / ``length``
/ ``destination`` / ``token_id`` live in parallel int64 arrays that grow by
amortized doubling, and recorded hop sequences live in shared
``(rows, max_len + 1)`` path matrices handed over *wholesale* by
:func:`~repro.walks.short_walks.perform_short_walks` /
:func:`~repro.walks.get_more_walks.get_more_walks` via :meth:`add_batch`
(each token keeps only a ``(batch, row)`` reference).  A run materializes
Θ(η·m) tokens but the stitching phase pops only ``O(ℓ/λ)`` of them, so
:class:`TokenRecord` objects are built lazily at the API edge
(:meth:`tokens_at` / :meth:`token_at` / :meth:`iter_all`) — never during
Phase 1, which is the paper's hot path.

Lookups by source go through a lazily built per-source holder index
(``source -> holder -> [row, ...]``), making :meth:`holders_for_source` and
:meth:`tokens_at` O(#tokens of that source) instead of a scan over every
``(holder, source)`` bucket in the network.  Bucket and holder iteration
order deliberately reproduces the legacy per-object store: tokens in
creation order within a bucket, holders in order of their first token — so
RNG-driven consumers (SAMPLE-DESTINATION's reservoir merge) draw the exact
same stream as before the columnar rewrite.

The store never touches the round ledger; moving its information around is
the algorithms' job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WalkError

__all__ = ["TokenRecord", "WalkStore"]

_INITIAL_CAPACITY = 64


@dataclass(frozen=True, eq=False)
class TokenRecord:
    """One prepared short walk, materialized from the columnar store.

    ``path`` (when recorded) holds the ``length + 1`` node IDs from source
    to destination inclusive; it may be ``None`` when the caller disabled
    path recording to save memory on large sweeps.  Records are snapshots:
    the store hands out fresh instances on demand and identifies tokens by
    ``token_id``, not object identity.
    """

    token_id: int
    source: int
    length: int
    destination: int
    path: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise WalkError(f"token length must be >= 0, got {self.length}")
        if self.path is not None and len(self.path) != self.length + 1:
            raise WalkError(
                f"path has {len(self.path)} nodes but length={self.length} requires {self.length + 1}"
            )

    def __eq__(self, other: object) -> bool:
        # Records materialize fresh on every query, so equality must compare
        # path *contents* — the dataclass-generated __eq__ would choke on
        # elementwise ndarray comparison.
        if not isinstance(other, TokenRecord):
            return NotImplemented
        if (self.token_id, self.source, self.length, self.destination) != (
            other.token_id,
            other.source,
            other.length,
            other.destination,
        ):
            return False
        if self.path is None or other.path is None:
            return self.path is None and other.path is None
        return bool(np.array_equal(self.path, other.path))


class WalkStore:
    """All unused short-walk tokens, stored columnar, indexed by source."""

    def __init__(self) -> None:
        cap = _INITIAL_CAPACITY
        self._ids = np.empty(cap, dtype=np.int64)
        self._src = np.empty(cap, dtype=np.int64)
        self._len = np.empty(cap, dtype=np.int64)
        self._dst = np.empty(cap, dtype=np.int64)
        self._path_batch = np.empty(cap, dtype=np.int64)  # -1 = no path
        self._path_row = np.empty(cap, dtype=np.int64)
        self._alive = np.empty(cap, dtype=bool)
        self._size = 0
        # Shared path matrices; an entry is dropped (set to None) once every
        # token referencing it has been consumed, so hop memory tracks live
        # tokens rather than growing for the store's lifetime.
        self._path_batches: list[np.ndarray | None] = []
        self._batch_live: list[int] = []
        # source -> holder -> [row, ...]; built lazily per source, then
        # maintained incrementally.  Holder keys keep first-token order.
        self._index: dict[int, dict[int, list[int]]] = {}
        self._count_by_source: dict[int, int] = {}
        self._next_token_id = 0
        self.tokens_created = 0
        self.tokens_consumed = 0
        # Tokens invalidated by graph churn rather than consumed by
        # stitching — separate so serving telemetry stays honest about
        # which tokens did useful work.
        self.tokens_evicted = 0

    # ------------------------------------------------------------------
    # Creation / removal
    # ------------------------------------------------------------------
    def new_token_id(self) -> int:
        tid = self._next_token_id
        self._next_token_id += 1
        return tid

    def _grow_to(self, needed: int) -> None:
        cap = len(self._ids)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name in ("_ids", "_src", "_len", "_dst", "_path_batch", "_path_row", "_alive"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    def add_batch(
        self,
        sources: np.ndarray,
        lengths: np.ndarray,
        destinations: np.ndarray,
        paths: np.ndarray | None = None,
    ) -> np.ndarray:
        """Absorb a whole Phase-1 (or GET-MORE-WALKS) output in one call.

        ``sources`` / ``lengths`` / ``destinations`` are parallel int64
        arrays, one entry per token.  ``paths``, when given, is the shared
        ``(total, width)`` hop matrix produced by the vectorized walk loop;
        row ``i`` holds token ``i``'s ``lengths[i] + 1`` hops (columns past
        that are scratch).  Ownership of the matrix transfers to the store —
        no per-row copies are made until a record is materialized.

        Token IDs are assigned sequentially (equivalent to one
        :meth:`new_token_id` per token, in order) and returned.
        """
        src = np.ascontiguousarray(sources, dtype=np.int64)
        lng = np.ascontiguousarray(lengths, dtype=np.int64)
        dst = np.ascontiguousarray(destinations, dtype=np.int64)
        if src.ndim != 1 or src.shape != lng.shape or src.shape != dst.shape:
            raise WalkError("add_batch columns must be 1-D arrays of equal length")
        total = int(src.size)
        if total == 0:
            return np.empty(0, dtype=np.int64)
        if np.any(lng < 0):
            raise WalkError("token lengths must be >= 0")
        if paths is not None:
            if paths.ndim != 2 or paths.shape[0] != total:
                raise WalkError(f"paths must be (total, width), got {paths.shape}")
            if paths.shape[1] < int(lng.max()) + 1:
                raise WalkError(
                    f"paths width {paths.shape[1]} too small for max length {int(lng.max())}"
                )

        base = self._size
        self._grow_to(base + total)
        rows = slice(base, base + total)
        ids = np.arange(self._next_token_id, self._next_token_id + total, dtype=np.int64)
        self._ids[rows] = ids
        self._src[rows] = src
        self._len[rows] = lng
        self._dst[rows] = dst
        self._alive[rows] = True
        if paths is not None:
            self._path_batch[rows] = len(self._path_batches)
            self._path_row[rows] = np.arange(total, dtype=np.int64)
            self._path_batches.append(paths)
            self._batch_live.append(total)
        else:
            self._path_batch[rows] = -1
            self._path_row[rows] = -1
        self._size = base + total
        self._next_token_id += total
        self.tokens_created += total

        uniq, counts = np.unique(src, return_counts=True)
        get = self._count_by_source.get
        for s, c in zip(uniq.tolist(), counts.tolist()):
            self._count_by_source[s] = get(s, 0) + c
            if s in self._index:
                # Source already indexed: splice the new rows in add order.
                buckets = self._index[s]
                for off in np.nonzero(src == s)[0].tolist():
                    buckets.setdefault(int(dst[off]), []).append(base + off)
        return ids

    def add(self, record: TokenRecord) -> None:
        """Add one token (API edge; bulk producers use :meth:`add_batch`)."""
        base = self._size
        self._grow_to(base + 1)
        self._ids[base] = record.token_id
        self._src[base] = record.source
        self._len[base] = record.length
        self._dst[base] = record.destination
        self._alive[base] = True
        if record.path is not None:
            self._path_batch[base] = len(self._path_batches)
            self._path_row[base] = 0
            self._path_batches.append(
                np.array(record.path, dtype=np.int64).reshape(1, -1)
            )
            self._batch_live.append(1)
        else:
            self._path_batch[base] = -1
            self._path_row[base] = -1
        self._size = base + 1
        self._count_by_source[record.source] = self._count_by_source.get(record.source, 0) + 1
        if record.source in self._index:
            self._index[record.source].setdefault(record.destination, []).append(base)
        self.tokens_created += 1

    def remove(self, record: TokenRecord) -> None:
        """Delete a consumed token (Sweep 3 of SAMPLE-DESTINATION)."""
        buckets = self._ensure_index(record.source)
        bucket = buckets.get(record.destination)
        if bucket is not None:
            for i, row in enumerate(bucket):
                if int(self._ids[row]) == record.token_id:
                    bucket.pop(i)
                    if not bucket:
                        del buckets[record.destination]
                    self._alive[row] = False
                    self._count_by_source[record.source] -= 1
                    self.tokens_consumed += 1
                    batch = int(self._path_batch[row])
                    if batch >= 0:
                        self._batch_live[batch] -= 1
                        if self._batch_live[batch] == 0:
                            self._path_batches[batch] = None  # free the matrix
                    return
        raise WalkError(f"token {record.token_id} not stored at node {record.destination}")

    # ------------------------------------------------------------------
    # Index maintenance / materialization
    # ------------------------------------------------------------------
    def _ensure_index(self, source: int) -> dict[int, list[int]]:
        buckets = self._index.get(source)
        if buckets is None:
            live = np.nonzero(
                (self._src[: self._size] == source) & self._alive[: self._size]
            )[0]
            buckets = {}
            for row, holder in zip(live.tolist(), self._dst[live].tolist()):
                buckets.setdefault(holder, []).append(row)
            self._index[source] = buckets
        return buckets

    def _materialize(self, row: int) -> TokenRecord:
        batch = int(self._path_batch[row])
        length = int(self._len[row])
        path = None
        if batch >= 0:
            path = self._path_batches[batch][int(self._path_row[row]), : length + 1].copy()
        return TokenRecord(
            token_id=int(self._ids[row]),
            source=int(self._src[row]),
            length=length,
            destination=int(self._dst[row]),
            path=path,
        )

    # ------------------------------------------------------------------
    # Queries (all reflect node-local or aggregate knowledge)
    # ------------------------------------------------------------------
    def tokens_at(self, holder: int, source: int) -> list[TokenRecord]:
        """Unused tokens of ``source`` currently stored at ``holder``."""
        bucket = self._ensure_index(source).get(holder, [])
        return [self._materialize(row) for row in bucket]

    def token_at(self, holder: int, source: int, index: int) -> TokenRecord:
        """The ``index``-th unused token of ``source`` held at ``holder``.

        O(1) single-record materialization — SAMPLE-DESTINATION's leaf
        nomination uses this so drawing one nominee never materializes the
        whole bucket.
        """
        bucket = self._ensure_index(source).get(holder)
        if bucket is None or not 0 <= index < len(bucket):
            raise WalkError(f"node {holder} has no token #{index} of source {source}")
        return self._materialize(bucket[index])

    def count_for_source(self, source: int) -> int:
        """Total unused tokens of ``source`` anywhere in the network."""
        return self._count_by_source.get(source, 0)

    def source_count_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel ``(sources, unused_counts)`` arrays over every source.

        The aggregate occupancy view shard managers bin into per-shard
        totals (``np.bincount(sources % num_shards, weights=counts)``);
        sources whose pool has fully drained report count 0 rather than
        disappearing, so deficit computations see them.
        """
        k = len(self._count_by_source)
        sources = np.fromiter(self._count_by_source.keys(), dtype=np.int64, count=k)
        counts = np.fromiter(self._count_by_source.values(), dtype=np.int64, count=k)
        return sources, counts

    def sample_uniform_token(self, source: int, rng: np.random.Generator) -> TokenRecord | None:
        """Pop one token of ``source``, uniform over all its unused tokens.

        The *law* of SAMPLE-DESTINATION's weighted convergecast merge
        (Lemma A.2: the root's survivor is uniform over all stored tokens of
        the source) computed centrally: draw a uniform index over the
        source's total count, locate it through the ordered holder buckets,
        materialize and retire it.  Batch stitching uses this to draw
        without replacement while charging the pipelined sweep cost itself;
        returns ``None`` when the source has no unused tokens.
        """
        buckets = self._ensure_index(source)
        total = self._count_by_source.get(source, 0)
        if total <= 0:
            return None
        pick = int(rng.integers(0, total))
        for holder, bucket in buckets.items():
            if pick < len(bucket):
                record = self._materialize(bucket[pick])
                self.remove(record)
                return record
            pick -= len(bucket)
        raise WalkError(f"holder index out of sync for source {source}")  # pragma: no cover

    def holders_for_source(self, source: int) -> dict[int, int]:
        """Map holder-node -> number of unused tokens of ``source`` there.

        Holder order is the order each holder first received a token of
        ``source`` (re-insertion after a bucket empties moves the holder to
        the end) — the same order the legacy bucket store produced, which
        keeps RNG-consuming sweeps reproducible across store layouts.
        """
        return {holder: len(bucket) for holder, bucket in self._ensure_index(source).items()}

    def iter_all(self) -> Iterator[TokenRecord]:
        """All unused tokens, in creation order."""
        for row in np.nonzero(self._alive[: self._size])[0].tolist():
            yield self._materialize(row)

    # ------------------------------------------------------------------
    # Churn invalidation (see repro.dynamic)
    # ------------------------------------------------------------------
    def live_rows(self) -> np.ndarray:
        """Row indices of every unused token, ascending (= creation order)."""
        return np.nonzero(self._alive[: self._size])[0]

    def find_invalid_rows(
        self, mutated: np.ndarray, deleted_edge_keys: np.ndarray, n: int
    ) -> np.ndarray:
        """Rows of live tokens whose recorded walk no longer has the right law.

        ``mutated`` is a length-``n`` boolean mask of nodes whose one-step
        transition law changed (endpoints of inserted/deleted edges);
        ``deleted_edge_keys`` the sorted ``min·n + max`` keys of deleted
        undirected edges.  A token is invalid when any of its recorded
        steps was sampled *from* a mutated node, or any recorded hop
        traverses a deleted edge (the latter is implied by the former —
        both endpoints of a deleted edge are mutated — but is checked
        explicitly so a caller passing only edge deletions still evicts
        correctly).  Final positions are exempt: a token *resting* at a
        mutated node sampled nothing there.

        The scan is one vectorized pass per shared path matrix — no
        per-token Python work, matching the store's columnar contract.
        Tokens stored without paths cannot be scanned; callers hold the
        pool-level policy for those (see
        :meth:`~repro.engine.core.WalkEngine.apply_churn`).
        """
        size = self._size
        if size == 0:
            return np.empty(0, dtype=np.int64)
        alive = self._alive[:size]
        batch_of = self._path_batch[:size]
        hits: list[np.ndarray] = []
        for b, matrix in enumerate(self._path_batches):
            if matrix is None:
                continue
            rows = np.nonzero(alive & (batch_of == b))[0]
            if not rows.size:
                continue
            paths = matrix[self._path_row[rows]]
            lengths = self._len[rows]
            # Column j holds a node iff j <= length; later columns are
            # scratch — and in refill batches (np.empty matrices whose
            # reservoir loop broke early) genuinely uninitialized memory,
            # so they must be neutralized BEFORE any fancy indexing, not
            # just masked out of the vote.
            cols = np.arange(paths.shape[1], dtype=np.int64)[None, :]
            paths = np.where(cols <= lengths[:, None], paths, 0)
            # Column j is a step-from position iff j < length.
            steps = cols < lengths[:, None]
            bad = (mutated[paths] & steps).any(axis=1)
            if deleted_edge_keys.size and paths.shape[1] > 1:
                u, v = paths[:, :-1], paths[:, 1:]
                keys = np.minimum(u, v) * n + np.maximum(u, v)
                idx = np.searchsorted(deleted_edge_keys, keys)
                found = (idx < deleted_edge_keys.size) & (
                    deleted_edge_keys[np.minimum(idx, deleted_edge_keys.size - 1)] == keys
                )
                bad |= (found & steps[:, :-1]).any(axis=1)
            hits.append(rows[bad])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def rows_held_at(self, node_mask: np.ndarray) -> np.ndarray:
        """Rows of live tokens physically resting at a flagged node.

        The crash-fault complement of :meth:`find_invalid_rows`: that scan
        exempts final positions (a token *resting* at a mutated node
        sampled nothing there, so its law survives churn), but a node
        crash is memory loss — a token stored at a crashed node is gone
        regardless of where its walk stepped.  One vectorized pass over
        the destination column; ``node_mask`` is a length-``n`` boolean
        mask of crashed nodes.
        """
        size = self._size
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self._alive[:size] & node_mask[self._dst[:size]])[0]

    def evict_rows(self, rows: np.ndarray) -> np.ndarray:
        """Retire the given live rows in bulk; returns their source column.

        The churn counterpart of :meth:`remove`: counts land in
        ``tokens_evicted`` (not ``tokens_consumed`` — these tokens served
        nothing), shared path matrices are freed once their last reference
        dies, and each affected source's holder index is dropped wholesale
        to rebuild lazily (bulk eviction would shred it entry by entry).
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        if not np.all(self._alive[rows]):
            raise WalkError("evict_rows called on a token that is not live")
        self._alive[rows] = False
        sources = self._src[rows].copy()
        for s, c in zip(*np.unique(sources, return_counts=True)):
            self._count_by_source[int(s)] -= int(c)
            self._index.pop(int(s), None)
        batches = self._path_batch[rows]
        batches = batches[batches >= 0]
        for b, c in zip(*np.unique(batches, return_counts=True)):
            self._batch_live[int(b)] -= int(c)
            if self._batch_live[int(b)] == 0:
                self._path_batches[int(b)] = None
        self.tokens_evicted += int(rows.size)
        return sources

    def total_unused(self) -> int:
        return self.tokens_created - self.tokens_consumed - self.tokens_evicted

    def __len__(self) -> int:
        return self.total_unused()

    def __repr__(self) -> str:
        return (
            f"WalkStore(unused={self.total_unused()}, created={self.tokens_created}, "
            f"consumed={self.tokens_consumed}, evicted={self.tokens_evicted})"
        )
