"""Metropolis–Hastings walks.

Section 1.3 notes the PODC'09 algorithm "applies to the more general
Metropolis-Hastings walk" while this paper optimizes the simple walk.  We
include MH support both as that baseline's companion and as a useful
extension: an MH walk converges to an *arbitrary* target distribution
``π`` (e.g. uniform node sampling on an irregular topology).

Transition rule from node ``u`` (simple-walk proposal, then accept/reject):

``P(u→v) = (1/d(u)) · min(1, π(v)·d(u) / (π(u)·d(v)))`` for each neighbor
``v ≠ u``, with the leftover probability as a self-loop.  Each node needs
its neighbors' degrees and π-values, which costs one exchange round in the
distributed setting — charged by the token-walk wrapper below.
"""

from __future__ import annotations

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import MH_SETUP, MH_WALK
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.util.rng import make_rng
from repro.walks.single_walk import WalkResult

__all__ = [
    "metropolis_transition_matrix",
    "metropolis_step",
    "metropolis_walk",
    "naive_metropolis_walk",
]


def _validate_target(graph: Graph, target: np.ndarray) -> np.ndarray:
    target = np.asarray(target, dtype=np.float64)
    if target.shape != (graph.n,):
        raise WalkError(f"target distribution must have shape ({graph.n},)")
    if np.any(target <= 0):
        raise WalkError("target distribution must be strictly positive")
    return target / target.sum()


def metropolis_transition_matrix(graph: Graph, target: np.ndarray | None = None) -> np.ndarray:
    """Dense MH transition matrix for ``target`` (default: uniform)."""
    target = _validate_target(graph, target if target is not None else np.ones(graph.n))
    n = graph.n
    p = np.zeros((n, n), dtype=np.float64)
    deg = graph.degrees.astype(np.float64)
    for u in range(n):
        for v in graph.neighbors(u):
            v = int(v)
            if v == u:
                continue
            accept = min(1.0, (target[v] * deg[u]) / (target[u] * deg[v]))
            p[u, v] += accept / deg[u]
        p[u, u] = 1.0 - p[u].sum()
    return p


def metropolis_step(graph: Graph, node: int, target: np.ndarray, rng: np.random.Generator) -> int:
    """One MH transition from ``node`` (target must be pre-normalized)."""
    deg_u = graph.degree(node)
    proposal = graph.random_neighbor(node, rng)
    if proposal == node:
        return node
    accept = min(1.0, (target[proposal] * deg_u) / (target[node] * graph.degree(proposal)))
    return proposal if rng.random() < accept else node


def metropolis_walk(
    graph: Graph, start: int, length: int, rng, target: np.ndarray | None = None
) -> list[int]:
    """Centralized MH walk trajectory (ℓ+1 nodes)."""
    if length < 0:
        raise WalkError("length must be non-negative")
    rng = make_rng(rng)
    target = _validate_target(graph, target if target is not None else np.ones(graph.n))
    path = [int(start)]
    for _ in range(length):
        path.append(metropolis_step(graph, path[-1], target, rng))
    return path


def _run_metropolis_walk(
    graph: Graph,
    source: int,
    length: int,
    rng,
    net: Network,
    *,
    target: np.ndarray | None = None,
) -> WalkResult:
    """One-shot distributed MH walk on a resolved (rng, network) — legacy body."""
    if length < 1:
        raise WalkError(f"walk length must be >= 1, got {length}")
    rounds_before = net.rounds

    with net.phase(MH_SETUP):
        # Every node tells each neighbor (degree, pi); full-edge congestion 1.
        net.ledger.charge(1, messages=graph.n_slots, congestion=1)

    positions = metropolis_walk(graph, source, length, rng, target)
    moves = sum(1 for a, b in zip(positions[:-1], positions[1:]) if a != b)
    with net.phase(MH_WALK):
        net.deliver_sequential(moves, messages_per_hop=1)

    return WalkResult(
        source=source,
        length=length,
        destination=positions[-1],
        mode="metropolis-naive",
        rounds=net.rounds - rounds_before,
        lam=length,
        positions=np.asarray(positions, dtype=np.int64),
        phase_rounds={k: v.rounds for k, v in net.ledger.phases.items()},
    )


def naive_metropolis_walk(
    graph: Graph,
    source: int,
    length: int,
    *,
    seed=None,
    target: np.ndarray | None = None,
    network: Network | None = None,
) -> WalkResult:
    """Distributed naive MH walk: 1 setup round + one round per *move*.

    The setup round exchanges (degree, π-value) with neighbors — after that
    every accept/reject decision is local.  Rejected proposals are
    self-loops and cost no communication, so the round count is the number
    of actual moves, not ℓ.

    Thin wrapper over a one-shot :class:`~repro.engine.core.WalkEngine`
    (``algorithm="metropolis"``).
    """
    from repro.engine.core import WalkEngine

    engine = WalkEngine(graph, seed=seed, network=network)
    return engine.walk(source, length, algorithm="metropolis", pooled=False, target=target)
