"""Visit and connector instrumentation for the Lemma 2.6 / 2.7 experiments.

Lemma 2.6: for walks totalling ``kℓ`` steps, no node ``y`` is visited more
than ``24·d(y)·√(kℓ+1)·log n + k`` times w.h.p.  The empirical object is the
**visit ratio** ``N(y) / (d(y)·√(kℓ+1))``, whose max over nodes should stay
bounded by ``O(log n)`` across topologies — and is Θ(1)-tight on the path.

Lemma 2.7: a node appearing ``t`` times in the walk appears as a
*connector* at most ``t·(log n)²/λ`` times w.h.p. — provided short-walk
lengths are randomized over ``[λ, 2λ−1]``.  The empirical object is the
**connector ratio** ``C(y)·λ / max(t(y), 1)``, which randomization keeps
bounded while fixed lengths let periodic topologies (even cycles) blow it
up — the E4 ablation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import WalkError
from repro.graphs.graph import Graph

__all__ = [
    "visit_counts",
    "max_visit_ratio",
    "lemma_2_6_bound",
    "ConnectorStats",
    "connector_stats",
]


def visit_counts(positions: np.ndarray, n: int) -> np.ndarray:
    """Number of times each node appears in a trajectory (start included)."""
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size == 0:
        raise WalkError("empty trajectory")
    return np.bincount(positions, minlength=n)


def max_visit_ratio(graph: Graph, trajectories: list[np.ndarray]) -> tuple[float, int]:
    """Max over nodes of ``Σ visits(y) / (d(y)·√(kℓ+1))`` and its argmax node.

    ``k`` is the number of trajectories, ``ℓ`` their (common) step count;
    this is the normalized quantity Lemma 2.6 bounds by ``24·log n + k/(…)``.
    """
    if not trajectories:
        raise WalkError("need at least one trajectory")
    k = len(trajectories)
    length = len(trajectories[0]) - 1
    totals = np.zeros(graph.n, dtype=np.int64)
    for traj in trajectories:
        if len(traj) != length + 1:
            raise WalkError("trajectories must share a common length")
        totals += visit_counts(traj, graph.n)
    scale = graph.degrees * math.sqrt(k * length + 1)
    ratios = totals / scale
    node = int(np.argmax(ratios))
    return float(ratios[node]), node


def lemma_2_6_bound(degree: int, length: int, n: int, k: int = 1) -> float:
    """The paper's literal bound ``24·d(y)·√(kℓ+1)·log n + k``."""
    if degree < 1 or length < 1 or n < 2 or k < 1:
        raise WalkError("degenerate parameters for the Lemma 2.6 bound")
    return 24.0 * degree * math.sqrt(k * length + 1) * math.log(n) + k


@dataclass(frozen=True)
class ConnectorStats:
    """Per-walk connector accounting (Lemma 2.7's empirical side)."""

    connector_counts: dict[int, int]
    visit_totals: dict[int, int]
    worst_ratio: float
    worst_node: int
    lam: int

    @property
    def total_connectors(self) -> int:
        return sum(self.connector_counts.values())


def connector_stats(graph: Graph, positions: np.ndarray, connectors: list[int], lam: int) -> ConnectorStats:
    """Compare connector appearances against total visits, per node.

    The reported ratio is ``C(y)·λ / t(y)`` where ``t(y)`` is the node's
    total visit count; Lemma 2.7 says this stays ``O((log n)²)`` w.h.p.
    under randomized short-walk lengths.
    """
    if lam < 1:
        raise WalkError("lambda must be >= 1")
    conn = Counter(connectors)
    visits = visit_counts(positions, graph.n)
    worst_ratio = 0.0
    worst_node = -1
    for node, c in conn.items():
        t = max(int(visits[node]), 1)
        ratio = c * lam / t
        if ratio > worst_ratio:
            worst_ratio = ratio
            worst_node = node
    return ConnectorStats(
        connector_counts=dict(conn),
        visit_totals={node: int(visits[node]) for node in conn},
        worst_ratio=worst_ratio,
        worst_node=worst_node,
        lam=lam,
    )
