"""MANY-RANDOM-WALKS (§2.3): ``k`` walks in ``Õ(min(√(kℓD)+k, k+ℓ))`` rounds.

Theorem 2.8's case split, implemented exactly:

* When the computed ``λ > ℓ`` — short walks would be longer than the
  requested walk — run the **naive parallel** algorithm: all ``k`` tokens
  step simultaneously, each iteration charged by its worst per-edge
  congestion (tokens of different sources cannot aggregate), then each
  destination reports to its source over a BFS tree (the ``Ω(k)`` term:
  the tree root may relay up to ``k`` IDs, pipelined one per round).
* Otherwise run **one** Phase 1 at the enlarged
  ``λ = Θ(√(kℓD) + k)`` and stitch the ``k`` walks one after another
  against the shared pool (the paper: "stitch the short walks together to
  get a walk of length ℓ starting at s₁ then do the same thing for s₂,
  s₃, and so on").

Sources need not be distinct; the mixing-time application (§4.2) calls this
with ``k`` copies of the same source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import NAIVE_PARALLEL, NAIVE_TAIL, REPORT
from repro.congest.primitives import BfsTree, stage_tree_funnel
from repro.engine.model import ResultBase
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.walks.params import WalkParams, many_walks_params
from repro.walks.short_walks import perform_short_walks, token_counts
from repro.walks.single_walk import estimate_diameter, stitch_walk
from repro.walks.store import WalkStore

__all__ = ["ManyWalksResult", "many_random_walks"]


@dataclass
class ManyWalksResult(ResultBase):
    """Outcome of a k-walk computation.

    Shared cost fields (``mode``/``rounds``/``lam``/``phase_rounds``/
    ``get_more_walks_calls``) live on :class:`~repro.engine.model.ResultBase`.
    """

    sources: list[int]
    length: int
    destinations: list[int]
    positions: list[np.ndarray] | None = None

    @property
    def k(self) -> int:
        return len(self.sources)


def _parallel_naive(
    network: Network,
    sources: list[int],
    length: int,
    rng: np.random.Generator,
    *,
    record_paths: bool,
    phase: str = NAIVE_PARALLEL,
) -> tuple[list[int], list[np.ndarray] | None]:
    """All k tokens walk simultaneously; congestion charged per iteration.

    ``phase`` names the ledger phase the iterations charge to — the legacy
    one-shot path keeps ``"naive-parallel"`` (golden-ledger pinned), the
    serving scheduler bills the same traffic to its ``"serve"`` family.
    """
    graph = network.graph
    positions = np.asarray(sources, dtype=np.int64)
    paths = None
    if record_paths:
        paths = np.empty((len(sources), length + 1), dtype=np.int64)
        paths[:, 0] = positions
    with network.phase(phase):
        for step in range(1, length + 1):
            slots = graph.step_walk_slots(positions, rng)
            network.deliver_step(slots, words=2)
            positions = graph.csr_target[slots]
            if paths is not None:
                paths[:, step] = positions
    destinations = [int(p) for p in positions]
    trajectories = [paths[i].copy() for i in range(len(sources))] if paths is not None else None
    return destinations, trajectories


def _parallel_tails(
    network: Network,
    pre_tails: list[tuple[int, int]],
    rng: np.random.Generator,
    *,
    record_paths: bool,
    phase: str = NAIVE_TAIL,
) -> tuple[list[int], list[np.ndarray | None]]:
    """Complete all deferred tails simultaneously (see stitch_walk docs).

    ``phase`` defaults to the golden-ledger-pinned ``"naive-tail"``; the
    serving scheduler charges merged cross-request tails to ``"serve/tail"``.
    """
    k = len(pre_tails)
    positions = np.array([node for node, _ in pre_tails], dtype=np.int64)
    remaining = np.array([r for _, r in pre_tails], dtype=np.int64)
    max_rem = int(remaining.max()) if k else 0
    paths = None
    if record_paths:
        # One shared (k, max_rem + 1) matrix; row i's tail occupies columns
        # 1..remaining[i] (column 0 repeats the pre-tail node).
        paths = np.empty((k, max_rem + 1), dtype=np.int64)
        paths[:, 0] = positions
    graph = network.graph
    with network.phase(phase):
        for step in range(1, max_rem + 1):
            active = remaining >= step
            if not np.any(active):
                break
            idx = np.nonzero(active)[0]
            slots = graph.step_walk_slots(positions[idx], rng)
            network.deliver_step(slots, words=2)
            positions[idx] = graph.csr_target[slots]
            if paths is not None:
                paths[idx, step] = positions[idx]
    destinations = [int(p) for p in positions]
    if paths is None:
        return destinations, [None] * k
    # Drop the duplicated pre-tail node from each path fragment.
    return destinations, [paths[i, 1 : int(remaining[i]) + 1].copy() for i in range(k)]


def _run_many_walks(
    graph: Graph,
    sources: list[int],
    length: int,
    rng: np.random.Generator,
    net: Network,
    *,
    params: WalkParams | None = None,
    lam: int | None = None,
    eta: float = 1.0,
    lambda_constant: float = 1.0,
    record_paths: bool = False,
    report_to_source: bool = True,
) -> ManyWalksResult:
    """One-shot MANY-RANDOM-WALKS on a resolved (rng, network).

    The legacy free-function body, unchanged — the golden-ledger suite
    freezes its totals, so the :func:`many_random_walks` wrapper and the
    engine's non-pooled batch path both funnel through it verbatim.
    """
    if not sources:
        raise WalkError("need at least one source")
    for s in sources:
        if not 0 <= s < graph.n:
            raise WalkError(f"source {s} out of range")
    if length < 1:
        raise WalkError(f"walk length must be >= 1, got {length}")
    k = len(sources)
    rounds_before = net.rounds
    tree_cache: dict[int, BfsTree] = {}

    d_est, base_tree = estimate_diameter(net, sources[0], tree_cache)
    if params is None:
        params = many_walks_params(
            k, length, d_est, constant=lambda_constant, lam=lam, eta=eta, n=graph.n
        )
        if not params.use_naive and lam is None:
            # Theorem 2.8 takes the min of the two branches; at simulation
            # scale we compare predicted costs directly (the λ > ℓ test
            # alone encodes the asymptotic switch, not the constants).
            log_n = max(1.0, math.log2(graph.n))
            stitched_estimate = (
                2 * params.lam * log_n
                + (k * length / params.lam) * (1.5 * d_est + 2)
                + k
            )
            naive_estimate = length + k + d_est
            if naive_estimate < stitched_estimate:
                params = replace(params, use_naive=True)

    if params.use_naive:
        destinations, trajectories = _parallel_naive(
            net, sources, length, rng, record_paths=record_paths
        )
        if report_to_source:
            # Destinations route their IDs to sources over the BFS tree; up
            # to k messages may funnel through one tree edge, pipelined.
            with net.phase(REPORT):
                stage_tree_funnel(net, base_tree, messages=2 * k, congestion=k)
                net.ledger.charge(base_tree.height + k, messages=2 * k, congestion=k)
        return ManyWalksResult(
            sources=list(sources),
            length=length,
            destinations=destinations,
            mode="naive-parallel",
            rounds=net.rounds - rounds_before,
            lam=params.lam,
            positions=trajectories,
            phase_rounds={name: st.rounds for name, st in net.ledger.phases.items()},
        )

    store = WalkStore()
    counts = token_counts(graph.degrees, params.eta, degree_proportional=params.degree_proportional)
    perform_short_walks(
        net,
        store,
        params.lam,
        rng,
        counts=counts,
        randomized_lengths=params.randomized_lengths,
        record_paths=record_paths,
    )

    # Stitch each walk up to its pre-tail point ("one at a time", §2.3)...
    pre_tails: list[tuple[int, int]] = []  # (pre-tail node, remaining steps)
    stitched_chunks: list[np.ndarray | None] = []
    total_gmw = 0
    for source in sources:
        current, positions, _segments, _connectors, gmw_calls, remaining = stitch_walk(
            net,
            store,
            source,
            length,
            params.lam,
            rng,
            loop_margin=2 * params.lam,
            gmw_count=max(1, length // params.lam),
            randomized_lengths=params.randomized_lengths,
            record_paths=record_paths,
            tree_cache=tree_cache,
            defer_tail=True,
        )
        total_gmw += gmw_calls
        pre_tails.append((current, remaining))
        stitched_chunks.append(positions)

    # ...then run every tail concurrently: the k tails are independent
    # naive walks of < 2λ steps each, so batching them costs O(λ + k)
    # instead of the O(k·λ) a sequential tail would — this keeps Phase 2 at
    # the Õ(√(kℓD)) the Theorem 2.8 proof charges for it.
    destinations, tail_paths = _parallel_tails(net, pre_tails, rng, record_paths=record_paths)

    trajectories: list[np.ndarray] | None = [] if record_paths else None
    if trajectories is not None:
        for stitched, tail in zip(stitched_chunks, tail_paths):
            assert stitched is not None and tail is not None
            trajectories.append(np.concatenate([stitched, tail]))
            if len(trajectories[-1]) != length + 1:
                raise WalkError("stitched + tail trajectory has wrong length")

    if report_to_source:
        with net.phase(REPORT):
            for destination in destinations:
                net.deliver_sequential(
                    base_tree.depth[destination],
                    path=(
                        base_tree.path_to_root(destination)
                        if net.heatmap is not None
                        else None
                    ),
                )

    return ManyWalksResult(
        sources=list(sources),
        length=length,
        destinations=destinations,
        mode="stitched",
        rounds=net.rounds - rounds_before,
        lam=params.lam,
        positions=trajectories,
        phase_rounds={name: st.rounds for name, st in net.ledger.phases.items()},
        get_more_walks_calls=total_gmw,
    )


def many_random_walks(
    graph: Graph,
    sources: list[int],
    length: int,
    *,
    seed=None,
    params: WalkParams | None = None,
    lam: int | None = None,
    eta: float = 1.0,
    lambda_constant: float = 1.0,
    record_paths: bool = False,
    report_to_source: bool = True,
    network: Network | None = None,
) -> ManyWalksResult:
    """Compute ``k = len(sources)`` independent ℓ-step walks.

    ``record_paths`` defaults off here (applications usually need only the
    ``k`` endpoint samples; full trajectories for ``k`` long walks are
    memory-heavy).

    Thin wrapper over a one-shot :class:`~repro.engine.core.WalkEngine`;
    streams of batch queries on one graph should hold an engine and use
    :meth:`~repro.engine.core.WalkEngine.walks` instead.
    """
    from repro.engine.core import WalkEngine

    engine = WalkEngine(
        graph, seed=seed, lambda_constant=lambda_constant, eta=eta, network=network
    )
    return engine.walks(
        sources,
        length,
        pooled=False,
        params=params,
        lam=lam,
        record_paths=record_paths,
        report_to_source=report_to_source,
    )
