"""SINGLE-RANDOM-WALK (Algorithm 1): sample an ℓ-step walk in Õ(√(ℓD)) rounds.

Structure, mirroring the paper:

* **Setup** — one BFS flood from the source; its eccentricity gives the
  ``Θ(D)`` estimate used to pick ``λ`` (and seeds the tree cache the
  stitching sweeps reuse).
* **Phase 1** — every node ``v`` prepares ``⌈η·deg(v)⌉`` short walks of
  length uniform in ``[λ, 2λ−1]`` (:mod:`repro.walks.short_walks`).
* **Phase 2** — starting at the source, repeatedly SAMPLE-DESTINATION at the
  current *connector*, route the walk token to the sampled endpoint
  (``≤ D`` rounds along the BFS tree), and advance the completed-length
  counter by the sampled walk's length.  If a connector's pool is empty,
  GET-MORE-WALKS refills it (w.h.p. never needed at theorem parameters —
  Lemmas 2.6/2.7).
* **Tail** — once fewer than ``2λ`` steps remain, walk naively.

The result is an exact sample: each stitched segment is an unused,
independently generated random walk from the current node, so the
concatenation is distributed exactly as an ℓ-step walk from ``s`` (the
algorithm is Las Vegas — randomness affects only the round count).
``tests/test_single_walk.py`` verifies the endpoint law against the exact
``P^ℓ`` distribution by chi-square.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import GET_MORE_WALKS, NAIVE, NAIVE_TAIL, REPORT, SETUP, STITCH_ROUTE
from repro.congest.primitives import BfsTree, build_bfs_tree
from repro.engine.model import ResultBase
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.walks.get_more_walks import get_more_walks
from repro.walks.params import WalkParams, single_walk_params
from repro.walks.sample_destination import sample_destination
from repro.walks.short_walks import perform_short_walks, token_counts
from repro.walks.store import TokenRecord, WalkStore

__all__ = ["WalkResult", "single_random_walk", "stitch_walk", "estimate_diameter"]


@dataclass
class WalkResult(ResultBase):
    """Outcome of one distributed walk computation.

    The shared cost fields (``mode``, ``rounds``, ``lam``,
    ``phase_rounds``, ``get_more_walks_calls``) come from
    :class:`~repro.engine.model.ResultBase`.  ``positions`` holds the full
    ℓ+1-node trajectory when path recording was on (the paper's
    "regenerating the entire walk" — every node can learn its positions);
    ``None`` otherwise.  ``segments`` are the stitched short-walk records
    in order, materialized lazily by the columnar
    :class:`~repro.walks.store.WalkStore` as each one was popped (only
    ``O(ℓ/λ)`` of the Θ(η·m) Phase-1 tokens ever become objects);
    ``connectors`` the nodes where stitches happened (Figure 2's stitch
    points).
    """

    source: int
    length: int
    destination: int
    positions: np.ndarray | None = None
    segments: list[TokenRecord] = field(default_factory=list)
    connectors: list[int] = field(default_factory=list)
    tokens_prepared: int = 0

    def verify_positions(self, graph: Graph) -> None:
        """Assert the recorded trajectory is a genuine ℓ-step walk.

        Probes :meth:`~repro.graphs.graph.Graph.has_edge` once per hop —
        O(log deg) each against the graph's sorted-neighbor view.
        """
        if self.positions is None:
            raise WalkError("positions were not recorded")
        if len(self.positions) != self.length + 1:
            raise WalkError(
                f"trajectory has {len(self.positions)} nodes, expected {self.length + 1}"
            )
        if self.positions[0] != self.source or self.positions[-1] != self.destination:
            raise WalkError("trajectory endpoints do not match source/destination")
        for a, b in zip(self.positions[:-1], self.positions[1:]):
            if not graph.has_edge(int(a), int(b)):
                raise WalkError(f"trajectory uses non-edge ({a}, {b})")


def estimate_diameter(
    network: Network,
    source: int,
    tree_cache: dict[int, BfsTree] | None = None,
    *,
    allow_unreached: bool = False,
) -> tuple[int, BfsTree]:
    """Distributed Θ(D) estimate: one BFS flood, ``D ≤ 2·ecc(source)``.

    Charged to phase ``"setup"``; the built tree goes into the cache the
    later SAMPLE-DESTINATION sweeps rooted at the source reuse.
    ``allow_unreached`` tolerates isolated (crashed) nodes: the estimate
    then covers the source's live component only.
    """
    with network.phase(SETUP):
        tree = build_bfs_tree(
            network, source, cache=tree_cache, allow_unreached=allow_unreached
        )
    return max(1, 2 * tree.height), tree


def stitch_walk(
    network: Network,
    store: WalkStore,
    source: int,
    length: int,
    lam: int,
    rng: np.random.Generator,
    *,
    loop_margin: int,
    gmw_count: int,
    randomized_lengths: bool,
    record_paths: bool,
    tree_cache: dict[int, BfsTree] | None,
    defer_tail: bool = False,
    gmw_phase: str = GET_MORE_WALKS,
    refill_record_paths: bool | None = None,
    allow_unreached: bool = False,
) -> tuple[int, np.ndarray | None, list[TokenRecord], list[int], int, int]:
    """Phase 2 + tail, shared by this paper's algorithm and the PODC'09 baseline.

    Returns ``(current, positions, segments, connectors, gmw_calls,
    remaining)``.  ``loop_margin`` is ``2λ`` for randomized segment lengths
    (paper's loop guard, Algorithm 1 line 4) and ``λ`` for fixed-length
    segments.

    With ``defer_tail=True`` the trailing ``< loop_margin`` naive steps are
    *not* performed: the caller receives the pre-tail node and the
    remaining step count.  MANY-RANDOM-WALKS uses this to run all ``k``
    tails concurrently (they are independent walks, so running them as one
    parallel batch costs ``O(λ + k)`` instead of ``O(k·λ)`` — required for
    the Theorem 2.8 bound, whose Phase-2 accounting covers only stitching).

    ``gmw_phase`` names the ledger phase refills charge to; the engine's
    pooled mode uses ``"pool-refill"`` so the refill protocol's cost is
    separately visible from one-shot GET-MORE-WALKS emergencies.
    ``refill_record_paths`` (default: same as ``record_paths``) controls
    whether refill tokens record their hop sequences — the pooled engine
    pins it to the pool's policy so an endpoint-only query never pollutes a
    path-recording pool with pathless tokens.
    """
    if refill_record_paths is None:
        refill_record_paths = record_paths
    completed = 0
    current = source
    segments: list[TokenRecord] = []
    connectors: list[int] = []
    chunks: list[np.ndarray] = [np.array([source], dtype=np.int64)]
    gmw_calls = 0

    while completed <= length - loop_margin:
        connectors.append(current)
        record, tree = sample_destination(
            network, store, current, rng,
            tree_cache=tree_cache, allow_unreached=allow_unreached,
        )
        if record is None:
            get_more_walks(
                network,
                store,
                current,
                gmw_count,
                lam,
                rng,
                randomized_lengths=randomized_lengths,
                record_paths=refill_record_paths,
                phase=gmw_phase,
            )
            gmw_calls += 1
            record, tree = sample_destination(
                network, store, current, rng,
                tree_cache=tree_cache, allow_unreached=allow_unreached,
            )
            if record is None:
                raise WalkError("GET-MORE-WALKS produced no walks (engine bug)")
        with network.phase(STITCH_ROUTE):
            network.deliver_sequential(
                tree.depth[record.destination],
                path=(
                    list(reversed(tree.path_to_root(record.destination)))
                    if network.heatmap is not None
                    else None
                ),
            )
        segments.append(record)
        if record_paths:
            if record.path is None:
                raise WalkError("record_paths=True requires Phase 1 to record paths")
            chunks.append(record.path[1:])
        completed += record.length
        current = record.destination

    remaining = length - completed
    if remaining > 0 and not defer_tail:
        tail = network.graph.walk(current, remaining, rng)
        with network.phase(NAIVE_TAIL):
            network.deliver_sequential(
                remaining, path=tail if network.heatmap is not None else None
            )
        current = tail[-1]
        if record_paths:
            chunks.append(np.asarray(tail[1:], dtype=np.int64))
        remaining = 0

    positions = np.concatenate(chunks) if record_paths else None
    if positions is not None and len(positions) != length + 1 - remaining:
        raise WalkError(
            f"stitched trajectory has {len(positions)} nodes, expected {length + 1 - remaining}"
        )
    return current, positions, segments, connectors, gmw_calls, remaining


def _run_single_walk(
    graph: Graph,
    source: int,
    length: int,
    rng: np.random.Generator,
    net: Network,
    *,
    params: WalkParams | None = None,
    lam: int | None = None,
    eta: float = 1.0,
    lambda_constant: float = 1.0,
    record_paths: bool = True,
    report_to_source: bool = True,
) -> WalkResult:
    """One-shot SINGLE-RANDOM-WALK execution on a resolved (rng, network).

    This is the legacy free-function body, unchanged: the golden-ledger
    suite freezes its round/message totals and sampled walks at fixed
    seeds, so both the :func:`single_random_walk` wrapper and the
    engine's non-pooled path funnel through it verbatim.
    """
    if not 0 <= source < graph.n:
        raise WalkError(f"source {source} out of range")
    if length < 1:
        raise WalkError(f"walk length must be >= 1, got {length}")
    rounds_before = net.rounds
    tree_cache: dict[int, BfsTree] = {}

    d_est, source_tree = estimate_diameter(net, source, tree_cache)
    if params is None:
        params = single_walk_params(
            length, d_est, constant=lambda_constant, lam=lam, eta=eta, n=graph.n
        )

    if params.use_naive:
        positions_list = graph.walk(source, length, rng)
        with net.phase(NAIVE):
            net.deliver_sequential(
                length, path=positions_list if net.heatmap is not None else None
            )
        destination = positions_list[-1]
        if report_to_source:
            with net.phase(REPORT):
                net.deliver_sequential(
                    source_tree.depth[destination],
                    path=(
                        source_tree.path_to_root(destination)
                        if net.heatmap is not None
                        else None
                    ),
                )
        return WalkResult(
            source=source,
            length=length,
            destination=destination,
            mode="naive",
            rounds=net.rounds - rounds_before,
            lam=params.lam,
            positions=np.asarray(positions_list, dtype=np.int64) if record_paths else None,
            phase_rounds={k: v.rounds for k, v in net.ledger.phases.items()},
        )

    store = WalkStore()
    counts = token_counts(graph.degrees, params.eta, degree_proportional=params.degree_proportional)
    perform_short_walks(
        net,
        store,
        params.lam,
        rng,
        counts=counts,
        randomized_lengths=params.randomized_lengths,
        record_paths=record_paths,
    )
    tokens_prepared = store.tokens_created

    loop_margin = 2 * params.lam if params.randomized_lengths else params.lam
    destination, positions, segments, connectors, gmw_calls, _remaining = stitch_walk(
        net,
        store,
        source,
        length,
        params.lam,
        rng,
        loop_margin=loop_margin,
        gmw_count=max(1, length // params.lam),
        randomized_lengths=params.randomized_lengths,
        record_paths=record_paths,
        tree_cache=tree_cache,
    )

    if report_to_source:
        with net.phase(REPORT):
            net.deliver_sequential(
                source_tree.depth[destination],
                path=(
                    source_tree.path_to_root(destination)
                    if net.heatmap is not None
                    else None
                ),
            )

    return WalkResult(
        source=source,
        length=length,
        destination=destination,
        mode="stitched",
        rounds=net.rounds - rounds_before,
        lam=params.lam,
        positions=positions,
        segments=segments,
        connectors=connectors,
        phase_rounds={k: v.rounds for k, v in net.ledger.phases.items()},
        get_more_walks_calls=gmw_calls,
        tokens_prepared=tokens_prepared,
    )


def single_random_walk(
    graph: Graph,
    source: int,
    length: int,
    *,
    seed=None,
    params: WalkParams | None = None,
    lam: int | None = None,
    eta: float = 1.0,
    lambda_constant: float = 1.0,
    capacity: int = 1,
    record_paths: bool = True,
    report_to_source: bool = True,
    network: Network | None = None,
) -> WalkResult:
    """Sample the endpoint of an ℓ-step random walk from ``source``.

    Parameters mirror the paper: ``λ`` defaults to
    ``lambda_constant·√(ℓ·D̂)`` using the distributed diameter estimate,
    ``η = 1`` walk per unit of degree.  ``report_to_source=True`` also
    routes the destination's ID back to the source (the 1-RW-SoD variant of
    the problem statement; ``≤ D`` extra rounds), so the quoted round count
    covers the full "source outputs destination" contract.

    Pass an existing ``network`` to accumulate rounds across calls (the RST
    application does this); otherwise a fresh engine is created.

    This is a thin wrapper over a one-shot
    :class:`~repro.engine.core.WalkEngine`; repeated queries on one graph
    should hold an engine instead and let its persistent Phase-1 pool
    amortize the Θ(η·m) token preparation.
    """
    from repro.engine.core import WalkEngine

    engine = WalkEngine(
        graph,
        seed=seed,
        capacity=capacity,
        lambda_constant=lambda_constant,
        eta=eta,
        network=network,
    )
    return engine.walk(
        source,
        length,
        pooled=False,
        params=params,
        lam=lam,
        record_paths=record_paths,
        report_to_source=report_to_source,
    )
