"""The naive ``O(ℓ)``-round baseline: forward a token for ℓ steps.

This is the algorithm the paper's introduction describes every application
as using before its result: "simply passing a token from one node to its
neighbor: thus to perform a random walk of length ℓ takes time linear in ℓ".

Two implementations:

* :func:`naive_random_walk` — the charged fast path used by benches
  (ℓ rounds, one message per round; congestion is impossible for a single
  token so the cost is exact, not an estimate).
* :class:`TokenWalkProtocol` — the same algorithm written as an
  event-driven per-node protocol on the engine; tests run both and check
  they agree on rounds and on the endpoint law.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.phases import NAIVE, REPORT
from repro.congest.protocol import Protocol, ProtocolAPI
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.walks.single_walk import WalkResult

__all__ = ["naive_random_walk", "TokenWalkProtocol"]


class TokenWalkProtocol(Protocol):
    """Event-driven token walk: each hop is one message, one round.

    The payload carries ``(source ID, remaining length)`` — the exact token
    format of Phase 1.  When the counter hits zero the holder records
    itself as the destination and stops forwarding.
    """

    name = "token-walk"

    def __init__(self, source: int, length: int) -> None:
        self.source = source
        self.length = length
        self.destination: int | None = None
        self.trajectory: list[int] = [source]

    def _forward(self, api: ProtocolAPI, node: int, remaining: int) -> None:
        if remaining == 0:
            self.destination = node
            return
        nxt = api.graph.random_neighbor(node, api.rng)
        self.trajectory.append(nxt)
        api.send(node, nxt, (self.source, remaining - 1), words=2)

    def on_start(self, api: ProtocolAPI) -> None:
        self._forward(api, self.source, self.length)

    def on_receive(self, api: ProtocolAPI, node: int, messages: Sequence[Message]) -> None:
        for msg in messages:
            _, remaining = msg.payload
            self._forward(api, node, remaining)

    def is_done(self, api: ProtocolAPI) -> bool:
        return self.destination is not None


def _run_naive_walk(
    graph: Graph,
    source: int,
    length: int,
    rng,
    net: Network,
    *,
    record_paths: bool = True,
    report_to_source: bool = False,
) -> WalkResult:
    """One-shot naive token walk on a resolved (rng, network) — legacy body."""
    if not 0 <= source < graph.n:
        raise WalkError(f"source {source} out of range")
    if length < 1:
        raise WalkError(f"walk length must be >= 1, got {length}")
    rounds_before = net.rounds

    positions = graph.walk(source, length, rng)
    with net.phase(NAIVE):
        net.deliver_sequential(length, path=positions if net.heatmap is not None else None)
    if report_to_source:
        with net.phase(REPORT):
            # The report retraces the trajectory back to the source.
            net.deliver_sequential(
                length, path=positions[::-1] if net.heatmap is not None else None
            )

    return WalkResult(
        source=source,
        length=length,
        destination=positions[-1],
        mode="naive",
        rounds=net.rounds - rounds_before,
        lam=length,
        positions=np.asarray(positions, dtype=np.int64) if record_paths else None,
        phase_rounds={k: v.rounds for k, v in net.ledger.phases.items()},
    )


def naive_random_walk(
    graph: Graph,
    source: int,
    length: int,
    *,
    seed=None,
    record_paths: bool = True,
    report_to_source: bool = False,
    network: Network | None = None,
) -> WalkResult:
    """Perform the ℓ-round naive walk; returns a :class:`WalkResult`.

    ``report_to_source=True`` adds the paper's "sends its ID back (along
    the same path)" step — another ℓ rounds — turning 1-RW-DoS into
    1-RW-SoD.  Benches leave it off so the baseline is compared at its most
    favorable ``O(ℓ)`` reading.

    Thin wrapper over a one-shot :class:`~repro.engine.core.WalkEngine`
    (``algorithm="naive"``).
    """
    from repro.engine.core import WalkEngine

    engine = WalkEngine(graph, seed=seed, network=network)
    return engine.walk(
        source,
        length,
        algorithm="naive",
        pooled=False,
        record_paths=record_paths,
        report_to_source=report_to_source,
    )
