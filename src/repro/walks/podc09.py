"""The PODC'09 baseline (Das Sarma, Nanongkai, Pandurangan 2009).

The ``Õ(ℓ^{2/3}D^{1/3})``-round predecessor this paper improves on.  Per
the recap in §2.1, it differs from SINGLE-RANDOM-WALK in exactly three
ways, all of which this implementation parameterizes through the shared
stitching core rather than forking the code:

1. short walks have **fixed** length ``λ`` (no ``[λ, 2λ−1]`` randomization,
   so no Lemma 2.7 protection against periodic connector pile-ups);
2. Phase 1 prepares ``η`` walks **per node** (not per unit degree), with
   ``η = Θ((ℓ/D)^{1/3})``;
3. parameters balance the *worst-case* amortization
   ``ηλ + ℓD/λ + ℓ/η`` (GET-MORE-WALKS is expected to be invoked), giving
   ``λ = ℓ^{1/3}D^{2/3}``.

Keeping both algorithms on one code path makes the E1 comparison an
apples-to-apples measurement: identical engine, identical charging rules,
different parameters and length policy.
"""

from __future__ import annotations

from repro.congest.network import Network
from repro.congest.phases import REPORT
from repro.congest.primitives import BfsTree
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.walks.params import WalkParams, podc09_params
from repro.walks.short_walks import perform_short_walks, token_counts
from repro.walks.single_walk import WalkResult, estimate_diameter, stitch_walk
from repro.walks.store import WalkStore

__all__ = ["podc09_random_walk"]


def _run_podc09_walk(
    graph: Graph,
    source: int,
    length: int,
    rng,
    net: Network,
    *,
    params: WalkParams | None = None,
    lam: int | None = None,
    eta: float | None = None,
    lambda_constant: float = 1.0,
    record_paths: bool = True,
    report_to_source: bool = True,
) -> WalkResult:
    """One-shot PODC'09 baseline on a resolved (rng, network) — legacy body."""
    if not 0 <= source < graph.n:
        raise WalkError(f"source {source} out of range")
    if length < 1:
        raise WalkError(f"walk length must be >= 1, got {length}")
    rounds_before = net.rounds
    tree_cache: dict[int, BfsTree] = {}

    d_est, source_tree = estimate_diameter(net, source, tree_cache)
    if params is None:
        params = podc09_params(length, d_est, constant=lambda_constant, lam=lam, eta=eta)

    if params.use_naive:
        from repro.walks.naive import naive_random_walk

        return naive_random_walk(
            graph, source, length, seed=rng, record_paths=record_paths, network=net
        )

    store = WalkStore()
    counts = token_counts(graph.degrees, params.eta, degree_proportional=params.degree_proportional)
    perform_short_walks(
        net,
        store,
        params.lam,
        rng,
        counts=counts,
        randomized_lengths=False,
        record_paths=record_paths,
    )
    tokens_prepared = store.tokens_created

    destination, positions, segments, connectors, gmw_calls, _remaining = stitch_walk(
        net,
        store,
        source,
        length,
        params.lam,
        rng,
        loop_margin=params.lam,
        gmw_count=max(1, int(params.eta)),
        randomized_lengths=False,
        record_paths=record_paths,
        tree_cache=tree_cache,
    )

    if report_to_source:
        with net.phase(REPORT):
            net.deliver_sequential(source_tree.depth[destination])

    return WalkResult(
        source=source,
        length=length,
        destination=destination,
        mode="podc09",
        rounds=net.rounds - rounds_before,
        lam=params.lam,
        positions=positions,
        segments=segments,
        connectors=connectors,
        phase_rounds={k: v.rounds for k, v in net.ledger.phases.items()},
        get_more_walks_calls=gmw_calls,
        tokens_prepared=tokens_prepared,
    )


def podc09_random_walk(
    graph: Graph,
    source: int,
    length: int,
    *,
    seed=None,
    params: WalkParams | None = None,
    lam: int | None = None,
    eta: float | None = None,
    lambda_constant: float = 1.0,
    record_paths: bool = True,
    report_to_source: bool = True,
    network: Network | None = None,
) -> WalkResult:
    """Run the PODC'09 algorithm; same contract as :func:`single_random_walk`.

    Thin wrapper over a one-shot :class:`~repro.engine.core.WalkEngine`
    (``algorithm="podc09"``).
    """
    from repro.engine.core import WalkEngine

    engine = WalkEngine(graph, seed=seed, lambda_constant=lambda_constant, network=network)
    return engine.walk(
        source,
        length,
        algorithm="podc09",
        pooled=False,
        params=params,
        lam=lam,
        eta=eta,
        record_paths=record_paths,
        report_to_source=report_to_source,
    )
