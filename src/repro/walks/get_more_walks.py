"""GET-MORE-WALKS (Algorithm 2): replenish a node's short-walk pool.

When the stitching phase lands on a node ``v`` whose walks are exhausted,
``v`` launches ``count`` fresh tokens.  All tokens share the single source
``v``, so a directed edge never needs more than one message per iteration:
nodes forward *(source ID, count)* pairs, not individual tokens — hence no
congestion and ``O(λ)`` rounds total (Lemma 2.2).

Length randomization cannot be done by sampling ``r_i`` up front (each token
would need its own remaining-length counter on the wire, breaking count
aggregation); instead the paper uses **reservoir sampling** (Vitter):
after the common ``λ`` steps, at extension step ``i`` every surviving token
stops with probability ``1/(λ−i)``, which makes the realized length uniform
on ``[λ, 2λ−1]`` (Lemma 2.4) while the wire still carries only counts.
"""

from __future__ import annotations

import numpy as np

from repro.congest.network import Network
from repro.errors import WalkError
from repro.walks.store import WalkStore

__all__ = ["get_more_walks"]


def get_more_walks(
    network: Network,
    store: WalkStore,
    source: int,
    count: int,
    lam: int,
    rng: np.random.Generator,
    *,
    randomized_lengths: bool = True,
    record_paths: bool = True,
    phase: str = "get-more-walks",
) -> int:
    """Launch ``count`` new short walks from ``source``; returns rounds charged.

    With ``randomized_lengths=False`` this reproduces the PODC'09 variant:
    fixed-length ``λ`` walks, still count-aggregated, ``λ`` rounds.
    """
    if count < 1:
        raise WalkError(f"count must be >= 1, got {count}")
    if lam < 1:
        raise WalkError(f"lambda must be >= 1, got {lam}")
    graph = network.graph

    positions = np.full(count, source, dtype=np.int64)
    max_len = 2 * lam - 1 if randomized_lengths else lam
    paths = None
    if record_paths:
        paths = np.empty((count, max_len + 1), dtype=np.int64)
        paths[:, 0] = source
    final_length = np.full(count, lam, dtype=np.int64)

    rounds_before = network.rounds
    with network.phase(phase):
        # Common prefix: λ hops, counts aggregated per edge (1 round each).
        for step in range(1, lam + 1):
            slots = graph.step_walk_slots(positions, rng)
            network.deliver_step(slots, aggregate=True, words=2)  # (source ID, count)
            positions = graph.csr_target[slots]
            if paths is not None:
                paths[:, step] = positions

        if randomized_lengths:
            # Reservoir extension: at step i each live token stops w.p. 1/(λ−i).
            alive = np.ones(count, dtype=bool)
            for i in range(lam):
                stop_prob = 1.0 / (lam - i)
                stops = alive & (rng.random(count) < stop_prob)
                final_length[stops] = lam + i
                alive &= ~stops
                if not np.any(alive):
                    break
                idx = np.nonzero(alive)[0]
                slots = graph.step_walk_slots(positions[idx], rng)
                network.deliver_step(slots, aggregate=True, words=2)
                positions[idx] = graph.csr_target[slots]
                if paths is not None:
                    # Retired tokens keep their final position in columns
                    # past their length, which no reader slices; a full
                    # column store beats an index scatter.
                    paths[:, lam + 1 + i] = positions
            # Step i = λ−1 has stop probability 1, so nothing survives.
            assert not np.any(alive), "reservoir extension must retire every token"

    # Columnar handover, same as Phase 1: one add_batch call, path matrix
    # transferred wholesale, records materialized lazily on pop.
    store.add_batch(
        np.full(count, source, dtype=np.int64), final_length, positions, paths=paths
    )
    return network.rounds - rounds_before
