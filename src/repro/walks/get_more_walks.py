"""GET-MORE-WALKS (Algorithm 2): replenish a node's short-walk pool.

When the stitching phase lands on a node ``v`` whose walks are exhausted,
``v`` launches ``count`` fresh tokens.  All tokens share the single source
``v``, so a directed edge never needs more than one message per iteration:
nodes forward *(source ID, count)* pairs, not individual tokens — hence no
congestion and ``O(λ)`` rounds total (Lemma 2.2).

Length randomization cannot be done by sampling ``r_i`` up front (each token
would need its own remaining-length counter on the wire, breaking count
aggregation); instead the paper uses **reservoir sampling** (Vitter):
after the common ``λ`` steps, at extension step ``i`` every surviving token
stops with probability ``1/(λ−i)``, which makes the realized length uniform
on ``[λ, 2λ−1]`` (Lemma 2.4) while the wire still carries only counts.
"""

from __future__ import annotations

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import GET_MORE_WALKS
from repro.errors import WalkError
from repro.util.contracts import charged_fast_path
from repro.walks.store import WalkStore

__all__ = ["get_more_walks", "get_more_walks_batch"]


def get_more_walks(
    network: Network,
    store: WalkStore,
    source: int,
    count: int,
    lam: int,
    rng: np.random.Generator,
    *,
    randomized_lengths: bool = True,
    record_paths: bool = True,
    phase: str = GET_MORE_WALKS,
) -> int:
    """Launch ``count`` new short walks from ``source``; returns rounds charged.

    With ``randomized_lengths=False`` this reproduces the PODC'09 variant:
    fixed-length ``λ`` walks, still count-aggregated, ``λ`` rounds.
    """
    if count < 1:
        raise WalkError(f"count must be >= 1, got {count}")
    if lam < 1:
        raise WalkError(f"lambda must be >= 1, got {lam}")
    graph = network.graph

    positions = np.full(count, source, dtype=np.int64)
    max_len = 2 * lam - 1 if randomized_lengths else lam
    paths = None
    if record_paths:
        paths = np.empty((count, max_len + 1), dtype=np.int64)
        paths[:, 0] = source
    final_length = np.full(count, lam, dtype=np.int64)

    rounds_before = network.rounds
    with network.phase(phase):
        # Common prefix: λ hops, counts aggregated per edge (1 round each).
        for step in range(1, lam + 1):
            slots = graph.step_walk_slots(positions, rng)
            network.deliver_step(slots, aggregate=True, words=2)  # (source ID, count)
            positions = graph.csr_target[slots]
            if paths is not None:
                paths[:, step] = positions

        if randomized_lengths:
            # Reservoir extension: at step i each live token stops w.p. 1/(λ−i).
            alive = np.ones(count, dtype=bool)
            for i in range(lam):
                stop_prob = 1.0 / (lam - i)
                stops = alive & (rng.random(count) < stop_prob)
                final_length[stops] = lam + i
                alive &= ~stops
                if not np.any(alive):
                    break
                idx = np.nonzero(alive)[0]
                slots = graph.step_walk_slots(positions[idx], rng)
                network.deliver_step(slots, aggregate=True, words=2)
                positions[idx] = graph.csr_target[slots]
                if paths is not None:
                    # Retired tokens keep their final position in columns
                    # past their length, which no reader slices; a full
                    # column store beats an index scatter.
                    paths[:, lam + 1 + i] = positions
            # Step i = λ−1 has stop probability 1, so nothing survives.
            assert not np.any(alive), "reservoir extension must retire every token"

    # Columnar handover, same as Phase 1: one add_batch call, path matrix
    # transferred wholesale, records materialized lazily on pop.
    store.add_batch(
        np.full(count, source, dtype=np.int64), final_length, positions, paths=paths
    )
    return network.rounds - rounds_before


@charged_fast_path(
    equivalence_test="tests/test_pool_manager.py::test_single_source_matches_legacy_refill"
)
def get_more_walks_batch(
    network: Network,
    store: WalkStore,
    sources: np.ndarray,
    counts: np.ndarray,
    lam: int,
    rng: np.random.Generator,
    *,
    randomized_lengths: bool = True,
    record_paths: bool = True,
    phase: str = GET_MORE_WALKS,
) -> int:
    """Replenish *many* nodes' pools in one interleaved sweep; returns rounds.

    ``sources[i]`` launches ``counts[i]`` fresh tokens; all tokens of all
    sources advance simultaneously.  Count aggregation still works per
    source — an edge carries one *(source ID, count)* message per distinct
    source crossing it — so each iteration is charged by the worst per-edge
    number of distinct sources (:meth:`~repro.congest.network.Network.
    deliver_step_grouped`), never by raw token load.  With ``r`` depleted
    sources this costs ``O(λ · max-overlap)`` rounds total instead of the
    ``r·O(λ)`` of serial per-node GET-MORE-WALKS — the batched refill the
    pool manager's background ``maintain()`` sweep relies on.

    Length randomization is the same per-token reservoir extension as
    :func:`get_more_walks` (stop w.p. ``1/(λ−i)`` at extension step ``i``),
    so every token's length stays uniform on ``[λ, 2λ−1]`` regardless of
    which source launched it.
    """
    src = np.ascontiguousarray(sources, dtype=np.int64)
    cnt = np.ascontiguousarray(counts, dtype=np.int64)
    if src.ndim != 1 or src.shape != cnt.shape:
        raise WalkError("sources and counts must be 1-D arrays of equal length")
    if np.any(cnt < 1):
        raise WalkError("per-source refill counts must be >= 1")
    if lam < 1:
        raise WalkError(f"lambda must be >= 1, got {lam}")
    total = int(cnt.sum())
    if total == 0:
        return 0
    graph = network.graph

    origins = np.repeat(src, cnt)
    positions = origins.copy()
    max_len = 2 * lam - 1 if randomized_lengths else lam
    paths = None
    if record_paths:
        paths = np.empty((total, max_len + 1), dtype=np.int64)
        paths[:, 0] = origins
    final_length = np.full(total, lam, dtype=np.int64)

    rounds_before = network.rounds
    with network.phase(phase):
        # Common prefix: λ hops, (source ID, count) aggregated per edge.
        for step in range(1, lam + 1):
            slots = graph.step_walk_slots(positions, rng)
            network.deliver_step_grouped(slots, origins, words=2)
            positions = graph.csr_target[slots]
            if paths is not None:
                paths[:, step] = positions

        if randomized_lengths:
            # Reservoir extension, identical per-token law to the
            # single-source path; only the charging is grouped.
            alive = np.ones(total, dtype=bool)
            for i in range(lam):
                stop_prob = 1.0 / (lam - i)
                stops = alive & (rng.random(total) < stop_prob)
                final_length[stops] = lam + i
                alive &= ~stops
                if not np.any(alive):
                    break
                idx = np.nonzero(alive)[0]
                slots = graph.step_walk_slots(positions[idx], rng)
                network.deliver_step_grouped(slots, origins[idx], words=2)
                positions[idx] = graph.csr_target[slots]
                if paths is not None:
                    paths[:, lam + 1 + i] = positions
            assert not np.any(alive), "reservoir extension must retire every token"

    store.add_batch(origins, final_length, positions, paths=paths)
    return network.rounds - rounds_before
