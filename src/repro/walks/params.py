"""Parameter selection for the walk algorithms.

The paper fixes its parameters inside proofs (with w.h.p. constants like
``λ = 24·√(ℓD)·log³n``); a practical implementation keeps the *functional
form* and exposes the constant.  The algorithms are Las Vegas — parameter
choice changes round counts, never output correctness — so benches sweep
the constant while tests pin it.

Functional forms (from Theorem 2.5, Theorem 2.8, and §2.1's recap of
PODC'09):

* single walk:  ``λ = Θ(√(ℓD))``, ``η = 1`` token per unit degree
* k walks:      ``λ = Θ(√(kℓD) + k)``, switch to the naive parallel
  algorithm when ``λ > ℓ`` (then ``O(k + ℓ)`` wins)
* PODC'09:      ``λ = Θ(ℓ^{1/3}D^{2/3})``, ``η = Θ((ℓ/D)^{1/3})`` tokens
  per node, fixed-length short walks
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WalkError

__all__ = ["WalkParams", "single_walk_params", "many_walks_params", "podc09_params"]


@dataclass(frozen=True)
class WalkParams:
    """Resolved parameters for a stitched-walk execution.

    Attributes
    ----------
    lam:
        Short-walk base length ``λ`` (short walks have length in
        ``[λ, 2λ−1]`` in the randomized scheme, exactly ``λ`` in PODC'09).
    eta:
        Phase-1 walk multiplicity: the randomized scheme prepares
        ``⌈eta · deg(v)⌉`` short walks per node, PODC'09 prepares ``⌈eta⌉``
        per node regardless of degree.
    degree_proportional:
        Whether Phase-1 token counts scale with node degree (the key §2.1
        change over PODC'09).
    randomized_lengths:
        Whether short-walk lengths are drawn from ``[λ, 2λ−1]`` (Lemma 2.7's
        anti-periodicity device) or fixed at ``λ``.
    use_naive:
        True when parameters say the naive token walk is the better (or
        only sensible) algorithm, e.g. ``λ ≥ ℓ``.
    """

    lam: int
    eta: float
    degree_proportional: bool
    randomized_lengths: bool
    use_naive: bool = False


def _validate(length: int, diameter_estimate: int) -> None:
    if length < 1:
        raise WalkError(f"walk length must be >= 1, got {length}")
    if diameter_estimate < 1:
        raise WalkError(f"diameter estimate must be >= 1, got {diameter_estimate}")


def single_walk_params(
    length: int,
    diameter_estimate: int,
    *,
    constant: float = 1.0,
    lam: int | None = None,
    eta: float = 1.0,
    n: int | None = None,
) -> WalkParams:
    """Parameters for SINGLE-RANDOM-WALK: ``λ = constant·√(ℓD)``, ``η = 1``.

    The theorem's ``λ`` carries polylog factors (``24√(ℓD)·log³n``); at
    simulation scale the operative one is Phase-1 congestion, which
    Lemma 2.1 puts at ``Θ(η log n)`` rounds per short-walk step.  When
    ``n`` is provided the default therefore balances
    ``Phase1 ≈ 2λ·log n`` against ``stitching ≈ (ℓ/λ)·Θ(D)`` by using
    ``λ = constant·√(ℓD / log₂ n)`` — same ``Θ̃(√(ℓD))``, better constants.

    ``lam`` overrides the computed value (benches sweep it).  When
    ``λ ≥ ℓ`` the stitched algorithm cannot beat the naive ``ℓ``-round walk
    (there would be a single "short" walk longer than the request), so
    ``use_naive`` is set.
    """
    _validate(length, diameter_estimate)
    if eta <= 0:
        raise WalkError(f"eta must be positive, got {eta}")
    if lam is None:
        congestion = max(1.0, math.log2(n)) if n is not None and n > 1 else 1.0
        lam = max(1, round(constant * math.sqrt(length * diameter_estimate / congestion)))
    if lam < 1:
        raise WalkError(f"lambda must be >= 1, got {lam}")
    return WalkParams(
        lam=int(lam),
        eta=eta,
        degree_proportional=True,
        randomized_lengths=True,
        use_naive=lam >= length,
    )


def many_walks_params(
    k: int,
    length: int,
    diameter_estimate: int,
    *,
    constant: float = 1.0,
    lam: int | None = None,
    eta: float = 1.0,
    n: int | None = None,
) -> WalkParams:
    """Parameters for MANY-RANDOM-WALKS (Theorem 2.8).

    ``λ = constant·(√(kℓD) + k)`` (with the same log₂n congestion
    correction as :func:`single_walk_params` when ``n`` is given); when
    ``λ > ℓ`` the theorem's own case split says to run the naive algorithm
    for all ``k`` walks concurrently (the ``O(k + ℓ)`` branch of the min).
    """
    _validate(length, diameter_estimate)
    if k < 1:
        raise WalkError(f"k must be >= 1, got {k}")
    if lam is None:
        congestion = max(1.0, math.log2(n)) if n is not None and n > 1 else 1.0
        lam = max(
            1,
            round(constant * (math.sqrt(k * length * diameter_estimate / congestion) + k)),
        )
    return WalkParams(
        lam=int(lam),
        eta=eta,
        degree_proportional=True,
        randomized_lengths=True,
        use_naive=lam > length,
    )


def podc09_params(
    length: int,
    diameter_estimate: int,
    *,
    constant: float = 1.0,
    lam: int | None = None,
    eta: float | None = None,
) -> WalkParams:
    """Parameters for the PODC'09 baseline: ``λ = ℓ^{1/3}D^{2/3}``, ``η = (ℓ/D)^{1/3}``.

    These balance the three cost terms ``ηλ + ℓD/λ + ℓ/η`` of the §2.1
    recap, giving the ``Õ(ℓ^{2/3}D^{1/3})`` total the new algorithm is
    compared against.
    """
    _validate(length, diameter_estimate)
    d = diameter_estimate
    if lam is None:
        lam = max(1, round(constant * length ** (1 / 3) * d ** (2 / 3)))
    if eta is None:
        eta = max(1.0, (length / d) ** (1 / 3))
    return WalkParams(
        lam=int(lam),
        eta=float(eta),
        degree_proportional=False,
        randomized_lengths=False,
        use_naive=lam >= length,
    )
