"""Walk regeneration: make every node learn its position(s) in the walk.

Section 2.2, "Regenerating the entire random walk": applications like the
random spanning tree need more than the endpoint — each node must know at
which steps the walk visited it.  The paper's procedure, implemented here:

1. **Inform the connectors** of their positions: there are only ``O(√ℓ)``
   of them, so routing one (connector, offset) message each from the source
   over its BFS tree pipelines in ``height + #segments`` rounds.
2. **Re-send a message through each used short walk**: each segment's
   hop-owners forward a position counter along the recorded hops.  All
   segments replay simultaneously, charged per-iteration by congestion —
   at most the cost of Phase 1 itself ("takes time at most the time taken
   in Phase 1"), and usually much less because only the used segments
   replay.

Walks computed naively need no regeneration: the token already passed
through every node with its counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import REGENERATE
from repro.congest.primitives import BfsTree, build_bfs_tree, stage_tree_funnel
from repro.errors import WalkError
from repro.walks.single_walk import WalkResult

__all__ = [
    "RegenerationResult",
    "positions_by_node",
    "regenerate_walk",
    "replay_segments",
    "trajectory_from_positions",
]


def replay_segments(network: Network, seg_paths: list[np.ndarray], *, words: int = 2) -> int:
    """Charge the simultaneous replay of recorded hop sequences.

    Each path's hop-owners forward a position counter along the recorded
    hops; all segments replay at once, iteration ``j`` moving one message
    along hop ``j`` of every segment longer than ``j``, charged
    per-iteration by congestion.  Shared by walk regeneration (§2.2
    Step 2) and crash recovery, where a truncated in-flight walk's
    surviving prefix is re-announced instead of resampled — the
    sampling-once discipline of
    :class:`~repro.congest.faults.ReliableTokenWalkProtocol` applied at
    the segment scale.  Returns the number of replayed segments.
    """
    seg_paths = [p for p in seg_paths if len(p) > 1]
    if not seg_paths:
        return 0
    seg_lens = np.array([len(p) - 1 for p in seg_paths], dtype=np.int64)
    max_len = int(seg_lens.max())
    # Segments pad into one (k, max_len + 1) matrix so each iteration is
    # a column slice instead of a per-segment Python scan.
    hops = np.zeros((len(seg_paths), max_len + 1), dtype=np.int64)
    for i, p in enumerate(seg_paths):
        hops[i, : len(p)] = p
    for j in range(max_len):
        live = seg_lens > j
        network.deliver_pairs(hops[live, j], hops[live, j + 1], words=words)
    return len(seg_paths)


@dataclass
class RegenerationResult:
    """Node-local position knowledge after regeneration."""

    node_positions: dict[int, list[int]]
    rounds: int
    informed_connectors: int = 0
    replayed_segments: int = 0
    extra: dict[str, int] = field(default_factory=dict)


def positions_by_node(positions: np.ndarray) -> dict[int, list[int]]:
    """Invert a trajectory into per-node sorted position lists."""
    out: dict[int, list[int]] = {}
    for step, node in enumerate(positions):
        out.setdefault(int(node), []).append(step)
    return out


def trajectory_from_positions(node_positions: dict[int, list[int]], length: int) -> np.ndarray:
    """Rebuild the full trajectory from regenerated node-local knowledge.

    The inverse of :func:`positions_by_node` — what a central observer can
    reconstruct after regeneration, when every node knows exactly the
    steps at which the walk visited it.  Raises when the claimed positions
    do not tile ``0..length`` exactly (each step claimed by one node):
    that is the correctness contract regeneration must deliver, and the
    exactness tests rebuild walks through this to test the regenerated
    knowledge itself rather than the original trajectory.
    """
    trajectory = np.full(length + 1, -1, dtype=np.int64)
    for node, steps in node_positions.items():
        for step in steps:
            if not 0 <= step <= length:
                raise WalkError(f"node {node} claims out-of-range step {step}")
            if trajectory[step] != -1:
                raise WalkError(f"step {step} claimed by nodes {trajectory[step]} and {node}")
            trajectory[step] = node
    missing = np.nonzero(trajectory == -1)[0]
    if missing.size:
        raise WalkError(f"no node claims step {int(missing[0])}")
    return trajectory


def regenerate_walk(
    network: Network,
    result: WalkResult,
    *,
    tree_cache: dict[int, BfsTree] | None = None,
    phase: str = REGENERATE,
) -> RegenerationResult:
    """Charge the regeneration protocol and return per-node positions.

    Requires the walk to have been computed with ``record_paths=True``
    (the trajectory *is* the distributed hop-knowledge being re-announced).
    """
    if result.positions is None:
        raise WalkError("walk was computed without record_paths; cannot regenerate")
    node_positions = positions_by_node(result.positions)
    rounds_before = network.rounds

    if result.mode != "stitched" or not result.segments:
        # Naive modes: every visited node already saw the token counter.
        return RegenerationResult(node_positions=node_positions, rounds=0)

    with network.phase(phase):
        # Step 1: source tells each connector its segment's start offset.
        tree = build_bfs_tree(network, result.source, cache=tree_cache)
        k = len(result.segments)
        stage_tree_funnel(network, tree, messages=2 * k, congestion=k)
        network.ledger.charge(tree.height + k, messages=2 * k, congestion=k)

        # Step 2: replay all used segments simultaneously; iteration j
        # forwards one message along hop j of every segment longer than j.
        seg_paths = [seg.path for seg in result.segments]
        if any(p is None for p in seg_paths):
            raise WalkError("segment paths missing; Phase 1 must record paths")
        replay_segments(network, seg_paths, words=2)

    return RegenerationResult(
        node_positions=node_positions,
        rounds=network.rounds - rounds_before,
        informed_connectors=len(result.connectors),
        replayed_segments=len(result.segments),
    )
