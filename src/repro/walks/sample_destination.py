"""SAMPLE-DESTINATION (Algorithm 3): pick one unused short walk of ``v``.

Three sweeps over a BFS tree rooted at ``v``:

1. **Build** the BFS tree (``ecc(v) ≤ D`` rounds).
2. **Convergecast-sample**: each node holding tokens of ``v`` nominates one
   of its own uniformly (with its count); interior nodes repeatedly merge
   child nominations, keeping candidate ``d_j`` with probability
   ``c_j / Σc`` — the weighted merge of Algorithm 3 line 6.  The root ends
   with a token drawn uniformly over *all* stored tokens of ``v``
   (Lemma A.2), in ``height`` rounds with constant-size messages.
3. **Delete**: broadcast the chosen ``(holder, token_id)`` so the holder
   retires the token — walks are never re-stitched (``height`` rounds).

Total ``O(D)`` rounds per invocation (Lemma 2.3), and the returned length is
uniform on ``[λ, 2λ−1]`` because Phase 1 / GET-MORE-WALKS made it so
(Lemma 2.4).

Sweep 2 runs through :func:`~repro.congest.primitives.charged_convergecast`,
which charges the exact protocol cost while computing the merge centrally;
``tests/test_sample_destination.py`` additionally runs the event-driven
:class:`~repro.congest.primitives.ConvergecastProtocol` version and checks
both the sampling law and the round counts agree.
"""

from __future__ import annotations

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import SAMPLE_DESTINATION
from repro.congest.primitives import BfsTree, build_bfs_tree, charged_broadcast, charged_convergecast
from repro.walks.store import TokenRecord, WalkStore

__all__ = ["sample_destination", "make_sample_combine"]


def make_sample_combine(rng: np.random.Generator):
    """The weighted reservoir merge of Algorithm 3.

    Values are ``(count, record)`` pairs; merging keeps the left candidate
    with probability proportional to its count.  Commutative in
    distribution, which is all the convergecast needs.
    """

    def combine(left: tuple[int, TokenRecord | None], right: tuple[int, TokenRecord | None]):
        lc, lrec = left
        rc, rrec = right
        total = lc + rc
        if total == 0:
            return (0, None)
        if lc == 0:
            return (total, rrec)
        if rc == 0:
            return (total, lrec)
        keep_left = rng.random() < lc / total
        return (total, lrec if keep_left else rrec)

    return combine


def _leaf_values(store: WalkStore, source: int, n: int, rng: np.random.Generator):
    """Per-node (count, own-nominee) pairs — Algorithm 3 line 3.

    Uses the store's per-source holder index (O(1) per holder lookup) and
    materializes exactly one nominee record per holder; the RNG draw order
    (one uniform per holder, in first-token holder order) is identical to
    the legacy bucket-scanning implementation.
    """
    values: list[tuple[int, TokenRecord | None]] = [(0, None)] * n
    holders = store.holders_for_source(source)
    for holder, count in holders.items():
        nominee = store.token_at(holder, source, int(rng.integers(0, count)))
        values[holder] = (count, nominee)
    return values, set(holders)


def sample_destination_protocol(
    network: Network,
    store: WalkStore,
    source: int,
    rng: np.random.Generator,
) -> tuple[TokenRecord | None, int]:
    """Fully event-driven SAMPLE-DESTINATION (Algorithm 3, message by message).

    Runs the three sweeps as real protocols on the engine —
    :class:`~repro.congest.primitives.BfsFloodProtocol`, then
    :class:`~repro.congest.primitives.ConvergecastProtocol` with the
    weighted-reservoir merge, then
    :class:`~repro.congest.primitives.BroadcastProtocol` carrying the
    delete directive.  Returns ``(record, rounds_used)``.

    This is the ground-truth counterpart of :func:`sample_destination`
    (which charges the identical costs without per-message simulation);
    ``tests/test_sample_destination.py`` proves the two agree on both the
    sampling law and the round count.
    """
    from repro.congest.primitives import (
        BfsFloodProtocol,
        BroadcastProtocol,
        ConvergecastProtocol,
        build_bfs_tree,
    )

    rounds_before = network.rounds
    tree = build_bfs_tree(network, source, use_protocol=True)  # Sweep 1 (event-driven flood)
    values, _participants = _leaf_values(store, source, network.graph.n, rng)
    sweep2 = ConvergecastProtocol(tree, values, make_sample_combine(rng), words=4)
    network.run(sweep2)  # Sweep 2
    count, record = sweep2.result
    if count == 0 or record is None:
        return None, network.rounds - rounds_before
    sweep3 = BroadcastProtocol(tree, ("delete", record.destination, record.token_id), words=3)
    network.run(sweep3)  # Sweep 3
    store.remove(record)
    return record, network.rounds - rounds_before


def sample_destination(
    network: Network,
    store: WalkStore,
    source: int,
    rng: np.random.Generator,
    *,
    tree_cache: dict[int, BfsTree] | None = None,
    phase: str = SAMPLE_DESTINATION,
    allow_unreached: bool = False,
) -> tuple[TokenRecord | None, BfsTree]:
    """Sample-and-retire one unused short walk of ``source``.

    Returns ``(record, bfs_tree)``; ``record`` is ``None`` when the network
    holds no unused walks of ``source`` (the caller then invokes
    GET-MORE-WALKS, cf. Algorithm 1 lines 7–10).  The BFS tree is returned
    so the caller can route the walk token to the sampled destination along
    tree edges (the "stitch" costing ``depth(destination) ≤ D`` rounds).
    """
    with network.phase(phase):
        tree = build_bfs_tree(  # Sweep 1
            network, source, cache=tree_cache, allow_unreached=allow_unreached
        )
        values, participants = _leaf_values(store, source, network.graph.n, rng)
        count, record = charged_convergecast(  # Sweep 2
            network,
            tree,
            values,
            make_sample_combine(rng),
            words=4,  # (owner ID, token id, length, count)
            participants=participants,
        )
        if count == 0 or record is None:
            return None, tree
        charged_broadcast(network, tree, words=3)  # Sweep 3: delete directive
        store.remove(record)
    return record, tree
