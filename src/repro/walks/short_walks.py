"""Phase 1: every node prepares its pool of short walks.

Implements the first phase of SINGLE-RANDOM-WALK (Algorithm 1): node ``v``
launches ``counts[v]`` walk tokens, token ``i`` carrying its source ID and a
desired length.  In the randomized scheme (this paper) the desired length is
``λ + r_i`` with ``r_i`` uniform on ``[0, λ−1]`` — the device behind
Lemma 2.7 — while the PODC'09 baseline uses exactly ``λ``.

All tokens advance simultaneously, one hop per iteration; iteration ``j``
costs ``max_e X_j(e)`` rounds where ``X_j(e)`` is the number of tokens
crossing edge ``e`` (tokens of *different* sources cannot share a message,
so congestion is real here — this is precisely the quantity Lemma 2.1
bounds by ``O(η log n)`` w.h.p.).

The loop is vectorized: one NumPy step per iteration over all live tokens,
with the congestion charge computed from the per-slot histogram.  Storage
is vectorized too — the finished batch (origins, lengths, endpoints, and
the shared hop matrix) transfers to the columnar
:class:`~repro.walks.store.WalkStore` in a single :meth:`add_batch` call;
no per-token Python objects are built on this path (they materialize
lazily when stitching pops a token).
"""

from __future__ import annotations

import numpy as np

from repro.congest.network import Network
from repro.congest.phases import PHASE1
from repro.errors import WalkError
from repro.util.contracts import charged_fast_path
from repro.walks.store import WalkStore

__all__ = ["perform_short_walks", "token_counts"]


def token_counts(degrees: np.ndarray, eta: float, *, degree_proportional: bool) -> np.ndarray:
    """Per-node Phase-1 token counts.

    Degree-proportional mode (this paper): ``⌈η·deg(v)⌉`` — each node's pool
    is sized to how often Lemma 2.6 says it can be hit.  Uniform mode
    (PODC'09): ``⌈η⌉`` per node.
    """
    if eta <= 0:
        raise WalkError(f"eta must be positive, got {eta}")
    if degree_proportional:
        counts = np.ceil(eta * degrees.astype(np.float64))
    else:
        counts = np.full(len(degrees), np.ceil(eta))
    return counts.astype(np.int64)


@charged_fast_path(
    equivalence_test="tests/test_ledger_golden.py::test_single_random_walk_matches_seed"
)
def perform_short_walks(
    network: Network,
    store: WalkStore,
    lam: int,
    rng: np.random.Generator,
    *,
    counts: np.ndarray,
    randomized_lengths: bool = True,
    record_paths: bool = True,
    phase: str = PHASE1,
) -> int:
    """Run Phase 1; returns rounds charged.

    Parameters
    ----------
    counts:
        Tokens to launch per node (see :func:`token_counts`).
    randomized_lengths:
        Draw lengths from ``[λ, 2λ−1]`` (True, this paper) or use ``λ``
        exactly (False, PODC'09 baseline).
    record_paths:
        Keep each token's full hop sequence on its record (needed for walk
        regeneration and the RST application; costs memory only — the hop
        knowledge is node-local in the real system).
    """
    graph = network.graph
    if lam < 1:
        raise WalkError(f"lambda must be >= 1, got {lam}")
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != (graph.n,):
        raise WalkError(f"counts must have one entry per node, got shape {counts.shape}")
    if np.any(counts < 0):
        raise WalkError("token counts must be non-negative")
    total = int(counts.sum())
    if total == 0:
        return 0

    origins = np.repeat(np.arange(graph.n, dtype=np.int64), counts)
    if randomized_lengths:
        target_len = lam + rng.integers(0, lam, size=total)
    else:
        target_len = np.full(total, lam, dtype=np.int64)
    max_len = int(target_len.max())

    positions = origins.copy()
    paths = None
    if record_paths:
        paths = np.empty((total, max_len + 1), dtype=np.int64)
        paths[:, 0] = origins

    rounds_before = network.rounds
    with network.phase(phase):
        for step in range(1, max_len + 1):
            active = target_len >= step
            if not np.any(active):
                break
            slots = graph.step_walk_slots(positions[active], rng)
            network.deliver_step(slots, words=2)  # (source ID, remaining length)
            positions[active] = graph.csr_target[slots]
            if paths is not None:
                # Full-column write: rows of finished tokens hold their
                # final position, in columns past `length` that no reader
                # ever slices — and a strided column store beats a
                # boolean-mask scatter by a wide margin.
                paths[:, step] = positions

    # Hand the whole batch to the store columnar: the path matrix transfers
    # wholesale (no per-token row copies) and TokenRecords materialize only
    # when the stitching phase actually pops a token.
    store.add_batch(origins, target_len, positions, paths=paths)
    return network.rounds - rounds_before
