"""The paper's core contribution: distributed random-walk algorithms."""

from repro.walks.get_more_walks import get_more_walks
from repro.walks.many_walks import ManyWalksResult, many_random_walks
from repro.walks.metropolis import (
    metropolis_transition_matrix,
    metropolis_walk,
    naive_metropolis_walk,
)
from repro.walks.naive import TokenWalkProtocol, naive_random_walk
from repro.walks.params import WalkParams, many_walks_params, podc09_params, single_walk_params
from repro.walks.podc09 import podc09_random_walk
from repro.walks.regenerate import (
    RegenerationResult,
    positions_by_node,
    regenerate_walk,
    replay_segments,
    trajectory_from_positions,
)
from repro.walks.sample_destination import sample_destination
from repro.walks.short_walks import perform_short_walks, token_counts
from repro.walks.single_walk import WalkResult, estimate_diameter, single_random_walk, stitch_walk
from repro.walks.store import TokenRecord, WalkStore
from repro.walks.visits import (
    ConnectorStats,
    connector_stats,
    lemma_2_6_bound,
    max_visit_ratio,
    visit_counts,
)

__all__ = [
    "get_more_walks",
    "ManyWalksResult",
    "many_random_walks",
    "metropolis_transition_matrix",
    "metropolis_walk",
    "naive_metropolis_walk",
    "TokenWalkProtocol",
    "naive_random_walk",
    "WalkParams",
    "many_walks_params",
    "podc09_params",
    "single_walk_params",
    "podc09_random_walk",
    "RegenerationResult",
    "positions_by_node",
    "regenerate_walk",
    "replay_segments",
    "trajectory_from_positions",
    "sample_destination",
    "perform_short_walks",
    "token_counts",
    "WalkResult",
    "estimate_diameter",
    "single_random_walk",
    "stitch_walk",
    "TokenRecord",
    "WalkStore",
    "ConnectorStats",
    "connector_stats",
    "lemma_2_6_bound",
    "max_visit_ratio",
    "visit_counts",
]
