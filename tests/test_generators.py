"""Tests for the graph-family generators."""

from __future__ import annotations


import pytest

from repro.errors import GraphError
from repro.graphs import (
    barbell_graph,
    binary_tree_graph,
    complete_graph,
    cycle_graph,
    diameter,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    is_connected,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    standard_families,
    star_graph,
    torus_graph,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(10)
        assert g.n == 10 and g.m == 9
        assert diameter(g) == 9
        assert g.degree(0) == 1 and g.degree(5) == 2

    def test_path_single_node(self):
        assert path_graph(1).m == 0

    def test_cycle(self):
        g = cycle_graph(12)
        assert g.n == 12 and g.m == 12
        assert all(g.degree(v) == 2 for v in range(12))
        assert diameter(g) == 6

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15 and diameter(g) == 1

    def test_star(self):
        g = star_graph(9)
        assert g.degree(0) == 8 and diameter(g) == 2

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4
        assert diameter(g) == 2 + 3

    def test_torus(self):
        g = torus_graph(4, 6)
        assert g.n == 24 and g.m == 48
        assert all(g.degree(v) == 4 for v in range(24))
        assert diameter(g) == 2 + 3

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            torus_graph(2, 5)

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.n == 16 and all(g.degree(v) == 4 for v in range(16))
        assert diameter(g) == 4

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.n == 15 and g.m == 14
        assert diameter(g) == 6

    def test_barbell(self):
        g = barbell_graph(5, 3)
        assert g.n == 2 * 5 + 2  # two interior bridge nodes
        assert is_connected(g)
        assert g.degree(0) == 4  # interior clique node

    def test_lollipop(self):
        g = lollipop_graph(5, 4)
        assert g.n == 9 and is_connected(g)
        assert g.degree(g.n - 1) == 1  # tail tip

    def test_bad_parameters(self):
        for bad in (
            lambda: barbell_graph(2, 1),
            lambda: barbell_graph(5, 0),
            lambda: lollipop_graph(2, 3),
            lambda: lollipop_graph(5, 0),
            lambda: grid_graph(0, 5),
            lambda: hypercube_graph(0),
            lambda: star_graph(1),
            lambda: complete_graph(1),
            lambda: binary_tree_graph(-1),
        ):
            with pytest.raises(GraphError):
                bad()


class TestRandomFamilies:
    def test_gnp_connected_and_reproducible(self):
        g1 = erdos_renyi_graph(30, 0.2, 7)
        g2 = erdos_renyi_graph(30, 0.2, 7)
        assert is_connected(g1)
        assert g1.edges() == g2.edges()

    def test_gnp_bad_p(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 0.0)
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_gnp_impossible_raises(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(40, 0.01, 7, max_tries=3)

    def test_random_regular_degrees(self):
        g = random_regular_graph(20, 4, 11)
        assert all(g.degree(v) == 4 for v in range(20))
        assert is_connected(g)

    def test_random_regular_simple(self):
        g = random_regular_graph(16, 3, 5)
        seen = set()
        for u, v in g.edges():
            assert u != v
            key = (min(u, v), max(u, v))
            assert key not in seen
            seen.add(key)

    def test_random_regular_parity(self):
        with pytest.raises(GraphError):
            random_regular_graph(7, 3)

    def test_random_regular_degree_range(self):
        with pytest.raises(GraphError):
            random_regular_graph(10, 1)
        with pytest.raises(GraphError):
            random_regular_graph(10, 10)

    def test_rgg_connected(self):
        g = random_geometric_graph(40, 0.45, 3)
        assert is_connected(g)
        # Edges respect the radius (checked via reproducing the points is
        # impossible here, but degrees must be plausible for r=0.45).
        assert g.m >= g.n - 1

    def test_rgg_too_sparse_raises(self):
        with pytest.raises(GraphError):
            random_geometric_graph(50, 0.01, 3, max_tries=3)

    def test_rgg_bad_radius(self):
        with pytest.raises(GraphError):
            random_geometric_graph(10, 0.0)


class TestStandardFamilies:
    def test_bundle_is_connected(self):
        for g in standard_families(scale=1, seed=1):
            assert is_connected(g), g.name

    def test_bundle_has_varied_diameters(self):
        ds = [diameter(g) for g in standard_families(scale=1, seed=1)]
        assert max(ds) > 4 * min(ds)  # slow and fast topologies both present

    def test_bad_scale(self):
        with pytest.raises(GraphError):
            standard_families(scale=0)
