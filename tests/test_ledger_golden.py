"""Golden ledger totals, frozen from the pre-columnar seed implementation.

The columnar walk-token engine, the vectorized CSR build, and the charged
BFS fast path are *wall-clock* optimizations: the simulated complexity
measure — rounds, messages, worst congestion, per-phase attribution, and
the sampled walks themselves — must be **bit-identical** to the seed
implementation at fixed seeds.  These totals were captured by running the
seed (pre-optimization) code; any drift here means an optimization changed
the model, not just the speed.
"""

from __future__ import annotations

import pytest

from repro.congest import Network
from repro.graphs import (
    barbell_graph,
    grid_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)
from repro.walks import many_random_walks, single_random_walk

SINGLE_CASES = {
    "torus8x8-l256-s7": (lambda: torus_graph(8, 8), 0, 256, 7, {}),
    "grid6x6-l144-s3": (lambda: grid_graph(6, 6), 5, 144, 3, {}),
    "hypercube5-l300-s11": (lambda: hypercube_graph(5), 2, 300, 11, {}),
    "regular64-l200-s13": (lambda: random_regular_graph(64, 4, 12345), 1, 200, 13, {}),
    "barbell6x3-l100-s5": (lambda: barbell_graph(6, 3), 0, 100, 5, {}),
    "torus6x6-l400-s17-eta0.05": (lambda: torus_graph(6, 6), 3, 400, 17, {"eta": 0.05}),
    "grid5x5-l200-s23-lam4": (lambda: grid_graph(5, 5), 0, 200, 23, {"lam": 4}),
}

MANY_CASES = {
    "torus8x8-k4-l128-s7": (lambda: torus_graph(8, 8), [0, 5, 17, 33], 128, 7, {}),
    "hypercube5-k3-l200-s2": (lambda: hypercube_graph(5), [0, 0, 9], 200, 2, {}),
    "torus8x8-k3-l256-s5-lam12": (lambda: torus_graph(8, 8), [0, 9, 21], 256, 5, {"lam": 12}),
    "grid6x6-k4-l144-s3-lam8": (lambda: grid_graph(6, 6), [0, 7, 14, 35], 144, 3, {"lam": 8}),
}

GOLDEN_SINGLE = {
    "torus8x8-l256-s7": {
        "destination": 4,
        "mode": "stitched",
        "gmw": 0,
        "rounds": 398,
        "messages": 11853,
        "max_congestion": 6,
        "phase_rounds": {
            "setup": 9,
            "phase1": 195,
            "sample-destination": 150,
            "stitch-route": 26,
            "naive-tail": 14,
            "report": 4
        },
        "phase_messages": {
            "setup": 193,
            "phase1": 10004,
            "sample-destination": 1612,
            "stitch-route": 26,
            "naive-tail": 14,
            "report": 4
        }
    },
    "grid6x6-l144-s3": {
        "destination": 18,
        "mode": "stitched",
        "gmw": 0,
        "rounds": 322,
        "messages": 4775,
        "max_congestion": 6,
        "phase_rounds": {
            "setup": 11,
            "phase1": 174,
            "sample-destination": 81,
            "stitch-route": 14,
            "naive-tail": 34,
            "report": 8
        },
        "phase_messages": {
            "setup": 85,
            "phase1": 4249,
            "sample-destination": 385,
            "stitch-route": 14,
            "naive-tail": 34,
            "report": 8
        }
    },
    "hypercube5-l300-s11": {
        "destination": 25,
        "mode": "stitched",
        "gmw": 0,
        "rounds": 366,
        "messages": 7234,
        "max_congestion": 6,
        "phase_rounds": {
            "setup": 6,
            "phase1": 170,
            "sample-destination": 128,
            "stitch-route": 21,
            "naive-tail": 37,
            "report": 4
        },
        "phase_messages": {
            "setup": 129,
            "phase1": 5682,
            "sample-destination": 1361,
            "stitch-route": 21,
            "naive-tail": 37,
            "report": 4
        }
    },
    "regular64-l200-s13": {
        "destination": 29,
        "mode": "stitched",
        "gmw": 0,
        "rounds": 302,
        "messages": 9070,
        "max_congestion": 6,
        "phase_rounds": {
            "setup": 6,
            "phase1": 143,
            "sample-destination": 112,
            "stitch-route": 23,
            "naive-tail": 15,
            "report": 3
        },
        "phase_messages": {
            "setup": 193,
            "phase1": 6977,
            "sample-destination": 1859,
            "stitch-route": 23,
            "naive-tail": 15,
            "report": 3
        }
    },
    "barbell6x3-l100-s5": {
        "destination": 9,
        "mode": "stitched",
        "gmw": 0,
        "rounds": 189,
        "messages": 1885,
        "max_congestion": 5,
        "phase_rounds": {
            "setup": 6,
            "phase1": 98,
            "sample-destination": 61,
            "stitch-route": 7,
            "naive-tail": 12,
            "report": 5
        },
        "phase_messages": {
            "setup": 53,
            "phase1": 1526,
            "sample-destination": 282,
            "stitch-route": 7,
            "naive-tail": 12,
            "report": 5
        }
    },
    "torus6x6-l400-s17-eta0.05": {
        "destination": 30,
        "mode": "stitched",
        "gmw": 1,
        "rounds": 417,
        "messages": 3611,
        "max_congestion": 3,
        "phase_rounds": {
            "setup": 7,
            "phase1": 108,
            "sample-destination": 165,
            "stitch-route": 24,
            "get-more-walks": 59,
            "naive-tail": 50,
            "report": 4
        },
        "phase_messages": {
            "setup": 109,
            "phase1": 1569,
            "sample-destination": 1299,
            "stitch-route": 24,
            "get-more-walks": 556,
            "naive-tail": 50,
            "report": 4
        }
    },
    "grid5x5-l200-s23-lam4": {
        "destination": 16,
        "mode": "stitched",
        "gmw": 0,
        "rounds": 792,
        "messages": 3525,
        "max_congestion": 5,
        "phase_rounds": {
            "setup": 9,
            "phase1": 21,
            "sample-destination": 680,
            "stitch-route": 71,
            "naive-tail": 7,
            "report": 4
        },
        "phase_messages": {
            "setup": 56,
            "phase1": 422,
            "sample-destination": 2965,
            "stitch-route": 71,
            "naive-tail": 7,
            "report": 4
        }
    }
}

GOLDEN_MANY = {
    "torus8x8-k4-l128-s7": {
        "destinations": [
            48,
            49,
            39,
            14
        ],
        "mode": "naive-parallel",
        "gmw": 0,
        "rounds": 152,
        "messages": 713,
        "max_congestion": 4,
        "phase_rounds": {
            "setup": 9,
            "naive-parallel": 131,
            "report": 12
        },
        "phase_messages": {
            "setup": 193,
            "naive-parallel": 512,
            "report": 8
        }
    },
    "hypercube5-k3-l200-s2": {
        "destinations": [
            17,
            5,
            12
        ],
        "mode": "naive-parallel",
        "gmw": 0,
        "rounds": 223,
        "messages": 735,
        "max_congestion": 3,
        "phase_rounds": {
            "setup": 6,
            "naive-parallel": 209,
            "report": 8
        },
        "phase_messages": {
            "setup": 129,
            "naive-parallel": 600,
            "report": 6
        }
    },
    "torus8x8-k3-l256-s5-lam12": {
        "destinations": [
            48,
            63,
            53
        ],
        "mode": "stitched",
        "gmw": 0,
        "rounds": 1329,
        "messages": 16108,
        "max_congestion": 6,
        "phase_rounds": {
            "setup": 9,
            "phase1": 90,
            "sample-destination": 1050,
            "stitch-route": 155,
            "naive-tail": 16,
            "report": 9
        },
        "phase_messages": {
            "setup": 193,
            "phase1": 4484,
            "sample-destination": 11234,
            "stitch-route": 155,
            "naive-tail": 33,
            "report": 9
        }
    },
    "grid6x6-k4-l144-s3-lam8": {
        "destinations": [
            35,
            0,
            14,
            26
        ],
        "mode": "stitched",
        "gmw": 3,
        "rounds": 1527,
        "messages": 8576,
        "max_congestion": 6,
        "phase_rounds": {
            "setup": 11,
            "phase1": 60,
            "sample-destination": 1240,
            "stitch-route": 136,
            "get-more-walks": 45,
            "naive-tail": 15,
            "report": 20
        },
        "phase_messages": {
            "setup": 85,
            "phase1": 1380,
            "sample-destination": 6495,
            "stitch-route": 136,
            "get-more-walks": 424,
            "naive-tail": 36,
            "report": 20
        }
    }
}



def _snapshot(net: Network) -> dict:
    return {
        "rounds": net.ledger.rounds,
        "messages": net.ledger.messages,
        "max_congestion": net.ledger.max_congestion,
        "phase_rounds": {k: v.rounds for k, v in net.ledger.phases.items()},
        "phase_messages": {k: v.messages for k, v in net.ledger.phases.items()},
    }


class TestGoldenLedger:
    @pytest.mark.parametrize("name", sorted(SINGLE_CASES))
    def test_single_random_walk_matches_seed(self, name):
        factory, source, length, seed, kwargs = SINGLE_CASES[name]
        graph = factory()
        net = Network(graph, seed=0)
        result = single_random_walk(graph, source, length, seed=seed, network=net, **kwargs)
        want = GOLDEN_SINGLE[name]
        got = {
            "destination": int(result.destination),
            "mode": result.mode,
            "gmw": result.get_more_walks_calls,
            **_snapshot(net),
        }
        assert got == want

    @pytest.mark.parametrize("name", sorted(MANY_CASES))
    def test_many_random_walks_matches_seed(self, name):
        factory, sources, length, seed, kwargs = MANY_CASES[name]
        graph = factory()
        net = Network(graph, seed=0)
        result = many_random_walks(
            graph, sources, length, seed=seed, record_paths=True, network=net, **kwargs
        )
        want = GOLDEN_MANY[name]
        got = {
            "destinations": [int(d) for d in result.destinations],
            "mode": result.mode,
            "gmw": result.get_more_walks_calls,
            **_snapshot(net),
        }
        assert got == want
