"""Tests for spanning-tree counting/enumeration (matrix-tree ground truth)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    canonical_tree,
    complete_graph,
    cycle_graph,
    enumerate_spanning_trees,
    path_graph,
    spanning_tree_count,
    spanning_tree_count_float,
    tree_probabilities,
)
from repro.graphs.spanning import degree_sequence_of_tree


class TestCount:
    def test_cayley_formula(self):
        # K_n has n^(n-2) spanning trees.
        for n in (3, 4, 5, 6):
            assert spanning_tree_count(complete_graph(n)) == n ** (n - 2)

    def test_cycle_has_n_trees(self):
        for n in (3, 5, 8):
            assert spanning_tree_count(cycle_graph(n)) == n

    def test_tree_has_one(self):
        assert spanning_tree_count(path_graph(7)) == 1

    def test_disconnected_has_zero(self):
        assert spanning_tree_count(Graph(4, [(0, 1), (2, 3)])) == 0

    def test_multigraph_counts_parallel_edges(self):
        # Two parallel edges between 2 nodes: 2 labeled spanning trees.
        assert spanning_tree_count(Graph(2, [(0, 1), (0, 1)])) == 2

    def test_self_loops_ignored(self):
        g = Graph(3, [(0, 1), (1, 2), (1, 1)])
        assert spanning_tree_count(g) == 1

    def test_single_node(self):
        assert spanning_tree_count(Graph(1, [])) == 1

    def test_float_count_close(self):
        g = complete_graph(7)
        assert spanning_tree_count_float(g) == pytest.approx(7**5, rel=1e-9)


class TestEnumeration:
    def test_k4_has_16(self):
        trees = enumerate_spanning_trees(complete_graph(4))
        assert len(trees) == 16

    def test_cycle5(self):
        trees = enumerate_spanning_trees(cycle_graph(5))
        assert len(trees) == 5

    def test_canonical_form_sorted(self):
        trees = enumerate_spanning_trees(complete_graph(4))
        for tree in trees:
            assert tree == tuple(sorted(tree))
            assert all(u < v for u, v in tree)

    def test_gate_on_size(self):
        with pytest.raises(GraphError):
            enumerate_spanning_trees(complete_graph(8))

    def test_trees_are_valid(self):
        g = complete_graph(4)
        for tree in enumerate_spanning_trees(g):
            assert g.subgraph_is_spanning_tree(tree)


class TestTreeProbabilities:
    def test_simple_graph_uniform(self):
        g = complete_graph(4)
        probs = tree_probabilities(g)
        assert len(probs) == 16
        for p in probs.values():
            assert p == pytest.approx(1 / 16)

    def test_multigraph_weights_by_multiplicity(self):
        # Triangle with the (0,1) edge doubled: trees using (0,1) are twice
        # as likely as the tree avoiding it.
        g = Graph(3, [(0, 1), (0, 1), (1, 2), (0, 2)])
        probs = tree_probabilities(g)
        tree_without = canonical_tree([(1, 2), (0, 2)])
        trees_with = [t for t in probs if t != tree_without]
        for t in trees_with:
            assert probs[t] == pytest.approx(2 * probs[tree_without])
        assert sum(probs.values()) == pytest.approx(1.0)


class TestHelpers:
    def test_canonical_tree_order_invariant(self):
        assert canonical_tree([(2, 1), (0, 1)]) == canonical_tree([(0, 1), (1, 2)])

    def test_degree_sequence(self):
        assert degree_sequence_of_tree([(0, 1), (1, 2)], 3) == (1, 1, 2)


@st.composite
def small_connected_graphs(draw):
    n = draw(st.integers(2, 7))
    base = [(i, i + 1) for i in range(n - 1)]
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=6, unique=True))
    edges = sorted(set(base) | set(extra))
    return n, edges


class TestAgainstNetworkxAndEnumeration:
    @given(small_connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_enumeration(self, data):
        n, edges = data
        g = Graph(n, edges)
        if g.m <= 20:
            assert spanning_tree_count(g) == len(enumerate_spanning_trees(g))

    @given(small_connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, data):
        n, edges = data
        g = Graph(n, edges)
        h = nx.Graph(edges)
        h.add_nodes_from(range(n))
        expected = round(nx.number_of_spanning_trees(h))
        assert spanning_tree_count(g) == expected
