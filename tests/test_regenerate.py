"""Tests for walk regeneration (§2.2, 'Regenerating the entire random walk')."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import Network
from repro.errors import WalkError
from repro.graphs import hypercube_graph
from repro.walks import naive_random_walk, positions_by_node, regenerate_walk, single_random_walk


class TestPositionsByNode:
    def test_inversion(self):
        traj = np.array([3, 1, 3, 2])
        mapping = positions_by_node(traj)
        assert mapping == {3: [0, 2], 1: [1], 2: [3]}


class TestRegenerate:
    def test_mapping_matches_trajectory(self, torus_6x6):
        net = Network(torus_6x6, seed=1)
        res = single_random_walk(torus_6x6, 0, 300, seed=1, network=net)
        regen = regenerate_walk(net, res)
        # Every node's claimed positions point back at itself.
        for node, steps in regen.node_positions.items():
            for t in steps:
                assert res.positions[t] == node
        # And every step is claimed by exactly one node.
        total = sum(len(v) for v in regen.node_positions.values())
        assert total == res.length + 1

    def test_charges_rounds_for_stitched(self, torus_6x6):
        net = Network(torus_6x6, seed=2)
        res = single_random_walk(torus_6x6, 0, 300, seed=2, network=net)
        before = net.rounds
        regen = regenerate_walk(net, res)
        assert res.mode == "stitched"
        assert regen.rounds > 0
        assert net.rounds == before + regen.rounds
        assert regen.replayed_segments == len(res.segments)

    def test_cost_bounded_by_phase1(self):
        # "takes time at most the time taken in Phase 1" — with slack for
        # the connector-informing sweep (height + #segments).
        g = hypercube_graph(6)
        net = Network(g, seed=3)
        res = single_random_walk(g, 0, 3000, seed=3, network=net)
        phase1 = res.phase_rounds["phase1"]
        regen = regenerate_walk(net, res)
        slack = g.n + len(res.segments)
        assert regen.rounds <= phase1 + slack

    def test_naive_walk_is_free(self, torus_6x6):
        net = Network(torus_6x6, seed=4)
        res = naive_random_walk(torus_6x6, 0, 100, seed=4, network=net)
        regen = regenerate_walk(net, res)
        assert regen.rounds == 0
        assert sum(len(v) for v in regen.node_positions.values()) == 101

    def test_requires_recorded_paths(self, torus_6x6):
        net = Network(torus_6x6, seed=5)
        res = single_random_walk(torus_6x6, 0, 200, seed=5, network=net, record_paths=False)
        with pytest.raises(WalkError):
            regenerate_walk(net, res)
