"""Tests for walk regeneration (§2.2, 'Regenerating the entire random walk')."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import Network
from repro.errors import WalkError
from repro.graphs import complete_graph, hypercube_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import (
    naive_random_walk,
    positions_by_node,
    regenerate_walk,
    single_random_walk,
    trajectory_from_positions,
)


class TestPositionsByNode:
    def test_inversion(self):
        traj = np.array([3, 1, 3, 2])
        mapping = positions_by_node(traj)
        assert mapping == {3: [0, 2], 1: [1], 2: [3]}


class TestRegenerate:
    def test_mapping_matches_trajectory(self, torus_6x6):
        net = Network(torus_6x6, seed=1)
        res = single_random_walk(torus_6x6, 0, 300, seed=1, network=net)
        regen = regenerate_walk(net, res)
        # Every node's claimed positions point back at itself.
        for node, steps in regen.node_positions.items():
            for t in steps:
                assert res.positions[t] == node
        # And every step is claimed by exactly one node.
        total = sum(len(v) for v in regen.node_positions.values())
        assert total == res.length + 1

    def test_charges_rounds_for_stitched(self, torus_6x6):
        net = Network(torus_6x6, seed=2)
        res = single_random_walk(torus_6x6, 0, 300, seed=2, network=net)
        before = net.rounds
        regen = regenerate_walk(net, res)
        assert res.mode == "stitched"
        assert regen.rounds > 0
        assert net.rounds == before + regen.rounds
        assert regen.replayed_segments == len(res.segments)

    def test_cost_bounded_by_phase1(self):
        # "takes time at most the time taken in Phase 1" — with slack for
        # the connector-informing sweep (height + #segments).
        g = hypercube_graph(6)
        net = Network(g, seed=3)
        res = single_random_walk(g, 0, 3000, seed=3, network=net)
        phase1 = res.phase_rounds["phase1"]
        regen = regenerate_walk(net, res)
        slack = g.n + len(res.segments)
        assert regen.rounds <= phase1 + slack

    def test_naive_walk_is_free(self, torus_6x6):
        net = Network(torus_6x6, seed=4)
        res = naive_random_walk(torus_6x6, 0, 100, seed=4, network=net)
        regen = regenerate_walk(net, res)
        assert regen.rounds == 0
        assert sum(len(v) for v in regen.node_positions.values()) == 101

    def test_trajectory_reconstruction_roundtrip(self, torus_6x6):
        net = Network(torus_6x6, seed=6)
        res = single_random_walk(torus_6x6, 0, 250, seed=6, network=net)
        regen = regenerate_walk(net, res)
        rebuilt = trajectory_from_positions(regen.node_positions, res.length)
        assert np.array_equal(rebuilt, res.positions)

    def test_trajectory_reconstruction_rejects_inconsistent_claims(self):
        with pytest.raises(WalkError, match="claimed by nodes"):
            trajectory_from_positions({1: [0], 2: [0, 1]}, 1)
        with pytest.raises(WalkError, match="no node claims"):
            trajectory_from_positions({1: [0]}, 1)
        with pytest.raises(WalkError, match="out-of-range"):
            trajectory_from_positions({1: [5]}, 1)

    def test_regenerated_law_chi_square(self):
        # Exactness of regeneration *on its own*: sample many stitched
        # walks, regenerate each, and rebuild the walk purely from the
        # regenerated node-local knowledge.  The endpoint read off the
        # reconstruction (never the original trajectory) must follow the
        # exact P^l law — a wrong offset bookkeeping, a dropped segment,
        # or a mis-replayed hop would shift the reconstructed endpoint and
        # fail hard.
        g = complete_graph(6)
        length = 40
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints = []
        for seed in range(300):
            net = Network(g, seed=seed)
            res = single_random_walk(g, 0, length, seed=seed, network=net)
            regen = regenerate_walk(net, res)
            rebuilt = trajectory_from_positions(regen.node_positions, length)
            endpoints.append(int(rebuilt[length]))
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_requires_recorded_paths(self, torus_6x6):
        net = Network(torus_6x6, seed=5)
        res = single_random_walk(torus_6x6, 0, 200, seed=5, network=net, record_paths=False)
        with pytest.raises(WalkError):
            regenerate_walk(net, res)
