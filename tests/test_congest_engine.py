"""Tests for the CONGEST engine: charging rules, queueing, the ledger."""

from __future__ import annotations

import pytest

from repro.congest import Message, Network, Protocol
from repro.errors import ProtocolError
from repro.graphs import cycle_graph, path_graph, star_graph


class TestDeliverStep:
    def test_single_message_one_round(self):
        net = Network(path_graph(4))
        assert net.deliver_step([0]) == 1
        assert net.rounds == 1
        assert net.messages_sent == 1

    def test_congestion_charges_max_per_edge(self):
        g = star_graph(5)
        net = Network(g)
        # Three messages down the same directed edge -> 3 rounds.
        slot = int(g.indptr[0])
        rounds = net.deliver_step([slot, slot, slot])
        assert rounds == 3
        assert net.ledger.max_congestion == 3

    def test_parallel_edges_one_round(self):
        g = path_graph(4)
        net = Network(g)
        # One message per distinct slot -> 1 round regardless of count.
        slots = list(range(g.n_slots))
        assert net.deliver_step(slots) == 1
        assert net.messages_sent == g.n_slots

    def test_aggregation_collapses_congestion(self):
        g = star_graph(5)
        net = Network(g)
        slot = int(g.indptr[0])
        rounds = net.deliver_step([slot] * 10, aggregate=True)
        assert rounds == 1
        assert net.messages_sent == 1  # one (source, count) message

    def test_capacity_divides_congestion(self):
        g = star_graph(5)
        net = Network(g, capacity=2)
        slot = int(g.indptr[0])
        assert net.deliver_step([slot] * 5) == 3  # ceil(5/2)

    def test_empty_is_free(self):
        net = Network(path_graph(3))
        assert net.deliver_step([]) == 0
        assert net.rounds == 0

    def test_bad_slot_rejected(self):
        net = Network(path_graph(3))
        with pytest.raises(ProtocolError):
            net.deliver_step([999])

    def test_oversized_message_rejected(self):
        net = Network(path_graph(3), max_words=2)
        with pytest.raises(ProtocolError):
            net.deliver_step([0], words=3)


class TestDeliverStepGrouped:
    def test_same_group_aggregates_like_aggregate_true(self):
        g = star_graph(5)
        net = Network(g)
        slot = int(g.indptr[0])
        rounds = net.deliver_step_grouped([slot] * 10, [7] * 10)
        assert rounds == 1
        assert net.messages_sent == 1  # one (source, count) message

    def test_distinct_groups_congest_per_edge(self):
        g = star_graph(5)
        net = Network(g)
        slot = int(g.indptr[0])
        # Three distinct sources on one edge: three (source, count)
        # messages regardless of token multiplicity.
        rounds = net.deliver_step_grouped([slot] * 6, [1, 1, 2, 2, 3, 3])
        assert rounds == 3
        assert net.messages_sent == 3
        assert net.ledger.max_congestion == 3

    def test_groups_on_distinct_edges_one_round(self):
        g = path_graph(4)
        net = Network(g)
        slots = list(range(g.n_slots))
        assert net.deliver_step_grouped(slots, list(range(len(slots)))) == 1

    def test_capacity_divides_group_congestion(self):
        g = star_graph(5)
        net = Network(g, capacity=2)
        slot = int(g.indptr[0])
        assert net.deliver_step_grouped([slot] * 3, [1, 2, 3]) == 2  # ceil(3/2)

    def test_mismatched_shapes_rejected(self):
        net = Network(path_graph(3))
        with pytest.raises(ProtocolError, match="equal length"):
            net.deliver_step_grouped([0, 1], [0])

    def test_empty_is_free(self):
        net = Network(path_graph(3))
        assert net.deliver_step_grouped([], []) == 0
        assert net.rounds == 0

    def test_bad_slot_and_oversize_rejected(self):
        net = Network(path_graph(3), max_words=2)
        with pytest.raises(ProtocolError):
            net.deliver_step_grouped([999], [0])
        with pytest.raises(ProtocolError):
            net.deliver_step_grouped([0], [0], words=3)


class TestDeliverPairs:
    def test_pair_congestion(self):
        net = Network(path_graph(4))
        rounds = net.deliver_pairs([0, 0, 1], [1, 1, 2])
        assert rounds == 2  # (0,1) carries two messages
        assert net.messages_sent == 3

    def test_pair_aggregate(self):
        net = Network(path_graph(4))
        assert net.deliver_pairs([0, 0], [1, 1], aggregate=True) == 1
        assert net.messages_sent == 1

    def test_mismatched_shapes(self):
        net = Network(path_graph(4))
        with pytest.raises(ProtocolError):
            net.deliver_pairs([0, 1], [1])

    def test_empty(self):
        net = Network(path_graph(4))
        assert net.deliver_pairs([], []) == 0


class TestDeliverSequential:
    def test_charges_hops(self):
        net = Network(path_graph(5))
        assert net.deliver_sequential(7) == 7
        assert net.rounds == 7
        assert net.messages_sent == 7

    def test_zero_hops_free(self):
        net = Network(path_graph(5))
        assert net.deliver_sequential(0) == 0
        assert net.rounds == 0

    def test_negative_rejected(self):
        net = Network(path_graph(5))
        with pytest.raises(ProtocolError):
            net.deliver_sequential(-1)


class TestLedgerPhases:
    def test_phase_attribution(self):
        net = Network(path_graph(4))
        with net.phase("alpha"):
            net.deliver_step([0])
        with net.phase("beta"):
            net.deliver_step([0])
            net.deliver_step([0])
        assert net.ledger.phase_rounds("alpha") == 1
        assert net.ledger.phase_rounds("beta") == 2
        assert net.rounds == 3

    def test_nested_phase_goes_to_inner(self):
        net = Network(path_graph(4))
        with net.phase("outer"):
            net.deliver_step([0])
            with net.phase("inner"):
                net.deliver_step([0])
        assert net.ledger.phase_rounds("outer") == 1
        assert net.ledger.phase_rounds("inner") == 1

    def test_snapshot_totals_match(self):
        net = Network(path_graph(4))
        with net.phase("a"):
            net.deliver_step([0, 1])
        snap = net.ledger.snapshot()
        assert snap["rounds"] == net.rounds
        assert snap["rounds[a]"] == net.rounds

    def test_phase_sum_equals_total(self):
        net = Network(path_graph(4))
        with net.phase("a"):
            net.deliver_step([0])
        with net.phase("b"):
            net.deliver_sequential(3)
        total = sum(s.rounds for s in net.ledger.phases.values())
        assert total == net.rounds

    def test_invocation_count(self):
        net = Network(path_graph(4))
        for _ in range(3):
            with net.phase("p"):
                pass
        assert net.ledger.phases["p"].invocations == 3

    def test_negative_charge_rejected(self):
        net = Network(path_graph(4))
        with pytest.raises(ValueError):
            net.ledger.charge(-1)

    def test_phase_total_sums_family(self):
        # "family" and "family/sub" phases sum under phase_total; unrelated
        # names sharing the prefix as a substring do not.
        net = Network(path_graph(4))
        with net.phase("pool-refill"):
            net.deliver_step([0])
        with net.phase("pool-refill/maintain"):
            net.deliver_step([0])
            net.deliver_step([0])
        with net.phase("pool-refillable"):
            net.deliver_step([0])
        assert net.ledger.phase_total("pool-refill") == 3
        assert net.ledger.phase_total("pool-refill/maintain") == 2
        assert net.ledger.phase_total("absent") == 0


class _EchoProtocol(Protocol):
    """Node 0 sends a ping along a path; each node forwards until the end."""

    name = "echo"

    def __init__(self, hops: int) -> None:
        self.hops = hops
        self.done_at: int | None = None

    def on_start(self, api) -> None:
        api.send(0, 1, ("ping", self.hops - 1))

    def on_receive(self, api, node, messages) -> None:
        for msg in messages:
            _tag, remaining = msg.payload
            if remaining == 0:
                self.done_at = node
            else:
                api.send(node, node + 1, ("ping", remaining - 1))

    def is_done(self, api) -> bool:
        return self.done_at is not None


class _FloodAllProtocol(Protocol):
    """Node 0 sends one message to every neighbor at start."""

    name = "flood-all"

    def __init__(self) -> None:
        self.received: list[int] = []

    def on_start(self, api) -> None:
        for u in api.graph.neighbor_set(0):
            api.send(0, u, "hi")

    def on_receive(self, api, node, messages) -> None:
        self.received.extend(m.dst for m in messages)


class _CongestedProtocol(Protocol):
    """Sends `count` messages down one edge at start; measures queueing."""

    name = "congested"

    def __init__(self, count: int) -> None:
        self.count = count
        self.arrival_rounds: list[int] = []

    def on_start(self, api) -> None:
        for i in range(self.count):
            api.send(0, 1, i)

    def on_receive(self, api, node, messages) -> None:
        self.arrival_rounds.extend(api.round for _ in messages)


class TestEventDrivenEngine:
    def test_path_token_rounds(self):
        g = path_graph(6)
        net = Network(g)
        proto = _EchoProtocol(hops=5)
        rounds = net.run(proto)
        assert rounds == 5
        assert proto.done_at == 5

    def test_parallel_sends_one_round(self):
        g = star_graph(6)
        net = Network(g)
        proto = _FloodAllProtocol()
        rounds = net.run(proto)
        assert rounds == 1
        assert sorted(proto.received) == [1, 2, 3, 4, 5]

    def test_fifo_queueing_spreads_rounds(self):
        g = path_graph(3)
        net = Network(g)
        proto = _CongestedProtocol(4)
        rounds = net.run(proto)
        assert rounds == 4  # capacity 1: one message per round
        assert proto.arrival_rounds == [1, 2, 3, 4]

    def test_capacity_speeds_queue(self):
        g = path_graph(3)
        net = Network(g, capacity=2)
        proto = _CongestedProtocol(4)
        assert net.run(proto) == 2

    def test_send_to_non_neighbor_rejected(self):
        g = path_graph(4)
        net = Network(g)

        class Bad(Protocol):
            def on_start(self, api):
                api.send(0, 3, "x")

        with pytest.raises(ProtocolError):
            net.run(Bad())

    def test_oversized_protocol_message_rejected(self):
        g = path_graph(4)
        net = Network(g, max_words=2)

        class Wide(Protocol):
            def on_start(self, api):
                api.send(0, 1, "x", words=5)

        with pytest.raises(ProtocolError):
            net.run(Wide())

    def test_round_budget_enforced(self):
        g = cycle_graph(4)
        net = Network(g)

        class Forever(Protocol):
            def on_start(self, api):
                api.send(0, 1, None)

            def on_receive(self, api, node, messages):
                nxt = (node + 1) % 4
                api.send(node, nxt, None)

            def is_done(self, api):
                return False

        with pytest.raises(ProtocolError):
            net.run(Forever(), max_rounds=50)

    def test_idle_but_not_done_is_deadlock(self):
        g = path_graph(3)
        net = Network(g)

        class Stuck(Protocol):
            def is_done(self, api):
                return False

        with pytest.raises(ProtocolError):
            net.run(Stuck())

    def test_message_metadata(self):
        msg = Message(src=0, dst=1, payload="x", words=2)
        assert msg.words == 2
        with pytest.raises(ValueError):
            Message(src=0, dst=1, payload="x", words=0)

    def test_invalid_network_params(self):
        with pytest.raises(ProtocolError):
            Network(path_graph(3), capacity=0)
        with pytest.raises(ProtocolError):
            Network(path_graph(3), max_words=0)
