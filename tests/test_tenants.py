"""Tests for the multi-tenant serving tier (``repro.serve.tenants`` + scheduler).

The load-bearing claims of PR 7:

* **Weighted fairness** — under saturating load, deficit round robin
  splits served walks (and therefore attributed ledger rounds) across
  tenants in ``weight / Σ weights`` proportion, within 10% at 1:2:4; a
  10× hot tenant cannot starve a light one.
* **Quotas defer, never drop** — a token-bucket round quota throttles a
  tenant whose attributed spend outruns its refill; its queued work is
  skipped, not shed, and completes once refills cover the debt.
* **Packing preserves exactness** — walk-count cohort packing splits
  tickets across cohorts, yet endpoints keep the exact ``P^ℓ`` law,
  trajectories remain genuine walks, and split results reassemble in
  source order.
* **A documented total order** — (tenant registration order, per-tenant
  (priority, deadline, submit-order) heaps, the persistent DRR cursor)
  fully determine the schedule: fixed seeds replay bit-identically.
* **The ledger identity extends per tenant** — Σ over tenants of
  attributed rounds + maintain + churn = session delta, to the round,
  and the golden one-shot ledgers are untouched.
"""

from __future__ import annotations

import pytest

from repro.dynamic import sample_churn_delta
from repro.engine import WalkEngine
from repro.errors import WalkError
from repro.graphs import complete_graph
from repro.markov import WalkSpectrum
from repro.serve import (
    DEFAULT_TENANT,
    Tenant,
    TenantRegistry,
    TrafficSpec,
    run_tenant_loop,
)
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit


class TestTenantRegistry:
    def test_parse_spec_triples(self):
        reg = TenantRegistry.parse("alice:1:0,bob:2.5:100,carol:4:-")
        assert reg.order == ["alice", "bob", "carol"]
        assert reg.get("bob").weight == 2.5 and reg.get("bob").quota == 100
        assert reg.get("alice").quota is None and reg.get("carol").quota is None

    def test_parse_rejects_malformed(self):
        for bad in ("alice", "alice:1", ":1:0", "alice:x:0", "alice:1:y", "a:1:0,a:2:0"):
            with pytest.raises(WalkError):
                TenantRegistry.parse(bad)

    def test_register_validates_and_rejects_duplicates(self):
        reg = TenantRegistry()
        reg.register("a", weight=2.0)
        with pytest.raises(WalkError, match="already registered"):
            reg.register("a")
        with pytest.raises(WalkError, match="weight"):
            reg.register("b", weight=0.0)
        with pytest.raises(WalkError, match="quota"):
            reg.register("c", quota=0)
        with pytest.raises(WalkError, match="burst"):
            reg.register("d", burst=10)  # burst without quota
        with pytest.raises(WalkError, match="unknown tenant"):
            reg.get("nope")

    def test_ensure_auto_registers_at_weight_one(self):
        reg = TenantRegistry()
        t = reg.ensure("walk-in")
        assert t.weight == 1.0 and t.quota is None
        assert reg.ensure("walk-in") is t  # idempotent
        assert len(reg) == 1

    def test_token_bucket_refill_burst_and_throttle(self):
        t = Tenant(name="q", quota=10, burst=25)
        assert t.balance == 10 and not t.throttled
        t.refill()
        t.refill()
        assert t.balance == 25  # capped at the burst ceiling
        t.debit(30)
        assert t.balance == -5 and t.throttled  # overdraw is allowed
        t.refill()
        assert t.balance == 5 and not t.throttled
        free = Tenant(name="free")
        free.debit(1_000_000)
        assert not free.throttled  # unmetered tenants never throttle
        assert Tenant(name="d", quota=10).burst_cap == 40.0  # default 4·quota


def _saturate(sched, names, rng, *, ticks, k=4, length=128, backlog=6):
    """Keep every tenant's queue at least ``backlog`` tickets deep, each tick.

    Offered load therefore always exceeds every tenant's fair share, so the
    DRR split — not arrival luck — decides service.  Returns all tickets
    keyed by tenant.
    """
    n = sched.engine.graph.n
    tickets = {name: [] for name in names}
    for _ in range(ticks):
        for name in names:
            while len(sched._queues.get(name, ())) < backlog:
                sources = [int(s) for s in rng.integers(n, size=k)]
                tickets[name].append(sched.submit(sources, length, tenant=name))
        sched.tick()
    return tickets


class TestWeightedFairness:
    def test_attributed_shares_track_weights_1_2_4(self, torus_8x8):
        # The acceptance shape: saturating load, weights 1:2:4, 200 ticks
        # -> each tenant's share of attributed rounds within 10% relative
        # of weight / Σ weights.
        engine = WalkEngine(torus_8x8, seed=17, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=128)
        reg = TenantRegistry.parse("bronze:1:0,silver:2:0,gold:4:0")
        sched = engine.scheduler(
            tenants=reg,
            max_batch_walks=32,
            pipelined_report=True,
            maintain_round_budget=64,
            max_queue_depth=100_000,
        )
        _saturate(sched, reg.order, make_rng(5), ticks=200)
        stats = sched.stats().tenants
        total = sum(t["rounds_attributed"] for t in stats.values())
        assert total > 0
        for name, weight in (("bronze", 1), ("silver", 2), ("gold", 4)):
            share = stats[name]["rounds_attributed"] / total
            expected = weight / 7
            assert abs(share - expected) / expected < 0.10, (name, share, expected)

    def test_walk_shares_track_weights_too(self, torus_8x8):
        # Same regime, measured in served walks (what DRR actually grants).
        engine = WalkEngine(torus_8x8, seed=23, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=128)
        reg = TenantRegistry.parse("a:1:0,b:3:0")
        sched = engine.scheduler(
            tenants=reg, max_batch_walks=16, max_queue_depth=100_000
        )
        _saturate(sched, reg.order, make_rng(9), ticks=100)
        stats = sched.stats().tenants
        total = sum(t["walks_served"] for t in stats.values())
        assert abs(stats["b"]["walks_served"] / total - 0.75) < 0.05

    def test_hot_tenant_cannot_starve_a_light_one(self, torus_8x8):
        # "hot" offers 10x the load of "mouse" at equal weight.  mouse's
        # demand is below its fair share, so its queue must never build:
        # every mouse ticket is serviced promptly while hot's backlog grows.
        engine = WalkEngine(torus_8x8, seed=31, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=128)
        reg = TenantRegistry.parse("hot:1:0,mouse:1:0")
        sched = engine.scheduler(
            tenants=reg, max_batch_walks=32, max_queue_depth=100_000
        )
        rng = make_rng(3)
        mouse_tickets = []
        worst_mouse_backlog = 0
        for _ in range(60):
            for _ in range(10):
                sources = [int(s) for s in rng.integers(torus_8x8.n, size=4)]
                sched.submit(sources, 128, tenant="hot")
            sources = [int(s) for s in rng.integers(torus_8x8.n, size=4)]
            mouse_tickets.append(sched.submit(sources, 128, tenant="mouse"))
            sched.tick()
            worst_mouse_backlog = max(worst_mouse_backlog, len(sched._queues["mouse"]))
        assert len(sched._queues["hot"]) > 20  # hot really is oversubscribed
        assert worst_mouse_backlog <= 2  # mouse never waits behind hot's flood
        assert sum(t.status == "done" for t in mouse_tickets) >= len(mouse_tickets) - 2

    def test_quota_throttles_deferred_never_dropped(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=41, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=128)
        reg = TenantRegistry()
        reg.register("open", weight=1.0)
        reg.register("metered", weight=1.0, quota=60, burst=60)
        sched = engine.scheduler(
            tenants=reg, max_batch_walks=32, max_queue_depth=100_000
        )
        rng = make_rng(7)
        tickets = {"open": [], "metered": []}
        for _ in range(40):
            for name in reg.order:
                sources = [int(s) for s in rng.integers(torus_8x8.n, size=4)]
                tickets[name].append(sched.submit(sources, 128, tenant=name))
            sched.tick()
        stats = sched.stats()
        assert stats.tenants["metered"]["throttled_ticks"] > 0
        assert stats.tenants["open"]["throttled_ticks"] == 0
        # The quota caps spend harder than fair share would.
        assert (
            stats.tenants["metered"]["rounds_attributed"]
            < stats.tenants["open"]["rounds_attributed"]
        )
        sched.drain()
        for name in reg.order:
            assert all(t.status == "done" for t in tickets[name])  # never dropped
        final = sched.stats().tenants
        for name in reg.order:
            assert final[name]["completed"] == final[name]["admitted"]


class TestCohortPacking:
    def test_split_ticket_reassembles_in_source_order(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=11, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=128)
        sched = engine.scheduler(max_batch_walks=4)
        t = sched.submit(list(range(10)), 128)
        sched.drain()
        assert t.status == "done"
        assert t.walks_served == 10 and t.cohorts == 3  # ceil(10 / 4)
        assert sched.stats().cohort_splits == 2  # split twice, last chunk fits
        assert len(t.result.destinations) == 10
        assert all(0 <= d < torus_8x8.n for d in t.result.destinations)
        assert t.result.mode == "scheduled"
        assert t.rounds_attributed > 0

    def test_split_trajectories_are_genuine_walks(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=13, record_paths=True, auto_maintain=False)
        engine.prepare(length_hint=64, record_paths=True)
        sched = engine.scheduler(max_batch_walks=3)
        t = sched.submit([0, 9, 18, 27, 36, 45, 54], 64, record_paths=True)
        sched.drain()
        assert t.status == "done" and t.cohorts == 3
        assert t.result.positions is not None and len(t.result.positions) == 7
        for source, path in zip(t.request.sources, t.result.positions):
            assert len(path) == 65 and path[0] == source
            for a, b in zip(path[:-1], path[1:]):
                assert torus_8x8.has_edge(int(a), int(b))

    def test_packed_endpoints_follow_exact_law(self):
        # Two tenants, walk-count packing that splits nearly every ticket,
        # pipelined reports: endpoints must still follow P^l exactly.
        g = complete_graph(6)
        length = 40
        dist = WalkSpectrum(g).distribution(0, length)
        engine = WalkEngine(g, seed=4321, record_paths=False)
        engine.prepare(lam=8)
        reg = TenantRegistry.parse("a:1:0,b:2:0")
        sched = engine.scheduler(tenants=reg, max_batch_walks=16, pipelined_report=True)
        tickets = [
            sched.submit([0] * 10, length, tenant=reg.order[i % 2]) for i in range(30)
        ]
        sched.drain()
        assert sched.stats().cohort_splits > 0
        endpoints = [d for t in tickets for d in t.result.destinations]
        assert len(endpoints) == 300
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_pipelined_report_bills_shared_phase_only(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=19, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=128)
        sched = engine.scheduler(max_batch_walks=32, pipelined_report=True)
        tickets = [sched.submit([i, i + 1, i + 2], 128) for i in (0, 10, 20)]
        sched.drain()
        ledger = engine.network.ledger
        assert ledger.phase_rounds("serve/report") > 0
        assert ledger.phase_rounds("report") == 0  # no private convergecasts
        for t in tickets:
            assert t.rounds == 0  # the private delta is empty...
            assert t.rounds_attributed > 0  # ...the shared share is not

    def test_fifo_within_tenant_survives_splitting(self, torus_8x8):
        # Equal priority, no deadlines: same-tenant tickets must complete
        # in submission order even when every ticket is chunked.
        engine = WalkEngine(torus_8x8, seed=29, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=64)
        sched = engine.scheduler(max_batch_walks=4)
        tickets = [sched.submit([i, i + 1, i + 2], 64) for i in range(0, 30, 3)]
        sched.drain()
        completed = [t.completed_round for t in tickets]
        assert all(a <= b for a, b in zip(completed[:-1], completed[1:]))

    def test_fixed_seed_replays_bit_identically_across_tenants(self, torus_8x8):
        # The total order claim: (registration order, per-tenant heaps,
        # DRR cursor) leave no unordered choice anywhere.
        def stream(seed):
            engine = WalkEngine(torus_8x8, seed=seed, record_paths=False, auto_maintain=False)
            engine.prepare(length_hint=128)
            reg = TenantRegistry.parse("a:1:0,b:3:0")
            sched = engine.scheduler(tenants=reg, max_batch_walks=8, pipelined_report=True)
            rng = make_rng(101)
            tickets = []
            for i in range(12):
                sources = [int(s) for s in rng.integers(torus_8x8.n, size=5)]
                tickets.append(sched.submit(sources, 128, tenant=reg.order[i % 2]))
            sched.drain()
            trace = [
                (t.tenant, tuple(t.result.destinations), t.rounds_attributed, t.completed_round)
                for t in tickets
            ]
            return trace, engine.network.rounds

        a, ra = stream(29)
        b, rb = stream(29)
        assert a == b and ra == rb
        c, _ = stream(30)
        assert a != c


class TestTenantLedger:
    def test_per_tenant_identity_balances_through_churn(self, torus_8x8):
        # Σ per-tenant attributed + maintain + churn == session delta, to
        # the round, across a mid-stream churn event; and the per-tenant
        # sums agree with the per-ticket ones.
        engine = WalkEngine(torus_8x8, seed=37, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=128)
        snap = engine.network.ledger.capture()
        reg = TenantRegistry.parse("a:1:0,b:2:200,c:4:0")
        sched = engine.scheduler(
            tenants=reg,
            max_batch_walks=16,
            pipelined_report=True,
            maintain_round_budget=50,
            max_queue_depth=100_000,
        )
        rng = make_rng(12)
        tickets = _saturate(sched, reg.order, rng, ticks=20, backlog=3)
        churn = sample_churn_delta(engine.graph, rng, deletes=4, inserts=4)
        engine.apply_churn(churn)
        tickets2 = _saturate(sched, reg.order, rng, ticks=10, backlog=3)
        sched.drain()
        for _ in range(3):
            sched.tick()  # idle ticks: maintenance only
        delta = engine.network.ledger.delta_since(snap)
        stats = sched.stats().tenants
        attributed = sum(t["rounds_attributed"] for t in stats.values())
        maintain = delta.phase_rounds.get("pool-refill/maintain", 0)
        churn_rounds = delta.phase_rounds.get("pool-refill/churn", 0)
        assert churn_rounds > 0
        assert attributed + maintain + churn_rounds == delta.rounds
        for name in reg.order:
            by_ticket = sum(
                t.rounds_attributed for t in tickets[name] + tickets2[name]
            )
            assert stats[name]["rounds_attributed"] == by_ticket

    def test_golden_one_shot_ledger_untouched_by_tenants(self, torus_8x8):
        # The cheap in-situ canary: attaching a multi-tenant scheduler
        # must not perturb the one-shot path's pinned totals.
        from repro.walks import single_random_walk

        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        engine.scheduler(
            tenants=TenantRegistry.parse("a:1:0,b:2:50"),
            max_batch_walks=8,
            pipelined_report=True,
        )
        res = single_random_walk(torus_8x8, 0, 256, seed=7)
        assert res.mode == "stitched" and res.rounds == 398  # golden value


class TestTenantWorkload:
    def test_run_tenant_loop_keys_tickets_by_tenant(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=43, record_paths=False)
        reg = TenantRegistry.parse("x:1:0,y:2:0")
        sched = engine.scheduler(tenants=reg, max_batch_walks=16)
        specs = [
            TrafficSpec(n=torus_8x8.n, lengths=(64,), ks=(2,), tenant="x"),
            TrafficSpec(n=torus_8x8.n, lengths=(64,), ks=(2,), tenant="y"),
            TrafficSpec(n=torus_8x8.n, lengths=(64,), ks=(1,)),  # untagged
        ]
        out = run_tenant_loop(sched, specs, make_rng(3), rate=1.0, ticks=8)
        assert set(out) <= {"x", "y", DEFAULT_TENANT}
        for name, bucket in out.items():
            assert all(t.tenant == name for t in bucket)
            assert all(t.status == "done" for t in bucket)
