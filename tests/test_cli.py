"""Tests for the command-line interface and the graph-spec parser."""

from __future__ import annotations

import json

import pytest

from repro.cli import main, parse_graph_spec


class TestGraphSpecParser:
    @pytest.mark.parametrize(
        "spec,n,m",
        [
            ("path:5", 5, 4),
            ("cycle:6", 6, 6),
            ("complete:4", 4, 6),
            ("star:7", 7, 6),
            ("grid:2x3", 6, 7),
            ("torus:3x4", 12, 24),
            ("hypercube:3", 8, 12),
            ("tree:2", 7, 6),
            ("barbell:4:2", 9, 14),
            ("lollipop:4:3", 7, 9),
        ],
    )
    def test_deterministic_families(self, spec, n, m):
        g = parse_graph_spec(spec)
        assert g.n == n and g.m == m

    def test_random_families_with_seed(self):
        g1 = parse_graph_spec("gnp:20:0.3:5")
        g2 = parse_graph_spec("gnp:20:0.3:5")
        assert g1.edges() == g2.edges()
        reg = parse_graph_spec("regular:12:3:1")
        assert all(reg.degree(v) == 3 for v in range(12))
        rgg = parse_graph_spec("rgg:20:0.5:2")
        assert rgg.n == 20

    def test_uppercase_family(self):
        assert parse_graph_spec("CYCLE:5").n == 5

    def test_file_edge_list(self, tmp_path):
        path = tmp_path / "toy.edges"
        path.write_text(
            "# a comment line\n"
            "0 1\n"
            "1 2   # trailing comment\n"
            "\n"
            "2 3\n"
            "3 0\n"
        )
        g = parse_graph_spec(f"file:{path}")
        assert g.n == 4 and g.m == 4
        assert not g.is_weighted
        assert sorted(tuple(sorted(e)) for e in g.edges()) == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_file_edge_list_weighted(self, tmp_path):
        path = tmp_path / "weighted.edges"
        path.write_text("0 1 2.5\n1 2\n")  # partially weighted: rest default 1.0
        g = parse_graph_spec(f"file:{path}")
        assert g.is_weighted
        assert g.weighted_degree(1) == 3.5

    def test_file_edge_list_errors(self, tmp_path):
        with pytest.raises(ValueError, match="file needs a path"):
            parse_graph_spec("file:")
        with pytest.raises(ValueError, match="bad graph spec"):
            parse_graph_spec(f"file:{tmp_path / 'missing.edges'}")
        bad = tmp_path / "bad.edges"
        bad.write_text("0 1 2 3\n")
        from repro.errors import GraphError

        with pytest.raises(GraphError, match="expected 'u v"):
            parse_graph_spec(f"file:{bad}")
        empty = tmp_path / "empty.edges"
        empty.write_text("# nothing\n")
        with pytest.raises(GraphError, match="no edges"):
            parse_graph_spec(f"file:{empty}")

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            parse_graph_spec("mobius:5")

    def test_malformed_args(self):
        with pytest.raises(ValueError, match="bad graph spec"):
            parse_graph_spec("grid:5")
        with pytest.raises(ValueError, match="bad graph spec"):
            parse_graph_spec("path:abc")
        with pytest.raises(ValueError, match="bad graph spec"):
            parse_graph_spec("barbell:4")


class TestCommands:
    def test_walk_single(self, capsys):
        code = main(["walk", "--graph", "torus:4x4", "--length", "100", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SINGLE-RANDOM-WALK" in out
        assert "torus(4x4)" in out

    def test_walk_all_algorithms(self, capsys):
        code = main(["walk", "--graph", "hypercube:4", "--length", "200", "--algorithm", "all"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PODC'09 baseline" in out
        assert "naive token walk" in out

    def test_rst(self, capsys):
        code = main(["rst", "--graph", "complete:5", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Random spanning tree" in out
        assert "Tree edges:" in out
        # 4 tree edges for n=5.
        assert len(out.split("Tree edges:")[1].split()) == 4

    def test_mixing(self, capsys):
        code = main(["mixing", "--graph", "complete:8", "--seed", "2", "--samples", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated τ̃" in out
        assert "spectral gap interval" in out

    def test_lowerbound(self, capsys):
        code = main(["lowerbound", "--n", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PATH-VERIFICATION" in out
        assert "verified" in out

    def test_walks_batch(self, capsys):
        code = main(["walks", "--graph", "torus:8x8", "--k", "6", "--length", "256", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch-stitched" in out
        assert "shards below watermark" in out
        assert len(out.split("Destinations:")[1].split()) == 6

    def test_walks_serial_flag(self, capsys):
        code = main(
            ["walks", "--graph", "torus:8x8", "--k", "4", "--length", "256", "--serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch-stitched" not in out
        assert "stitched" in out

    def test_serve_open_loop(self, capsys):
        code = main(
            [
                "serve", "--graph", "torus:8x8", "--loop", "open",
                "--rate", "2", "--ticks", "5", "--k", "1", "2",
                "--length", "256", "--seed", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduled serving" in out
        assert "p50/p99 rounds per request" in out
        assert "deadline misses" in out

    def test_walk_on_file_graph(self, capsys, tmp_path):
        # The whole CLI surface runs on real edge-list files, not just
        # generator specs.
        path = tmp_path / "torus.edges"
        from repro.graphs import torus_graph

        path.write_text("".join(f"{u} {v}\n" for u, v in torus_graph(4, 4).edges()))
        code = main(["walk", "--graph", f"file:{path}", "--length", "64", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SINGLE-RANDOM-WALK" in out and "n=16" in out

    def test_serve_with_churn(self, capsys):
        code = main(
            [
                "serve", "--graph", "torus:8x8", "--loop", "open",
                "--rate", "2", "--ticks", "5", "--k", "1",
                "--length", "96", "--seed", "4",
                "--churn-delete-rate", "1", "--churn-insert-rate", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "churn events" in out
        assert "tokens regenerated (churn)" in out

    def test_serve_churn_requires_open_loop(self, capsys):
        code = main(
            [
                "serve", "--graph", "torus:8x8", "--loop", "closed",
                "--churn-delete-rate", "1",
            ]
        )
        assert code == 2
        assert "needs --loop open" in capsys.readouterr().err

    def test_serve_closed_loop(self, capsys):
        code = main(
            [
                "serve", "--graph", "torus:8x8", "--loop", "closed",
                "--concurrency", "3", "--requests", "8", "--k", "2",
                "--length", "200", "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "closed" in out and "scheduled serving" in out

    def test_error_path(self, capsys):
        code = main(["walk", "--graph", "nosuch:5", "--length", "10"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_walk_error_from_library(self, capsys):
        code = main(["walk", "--graph", "path:4", "--length", "10", "--source", "99"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestJsonOutput:
    def test_walk_json_single(self, capsys):
        code = main(["walk", "--graph", "torus:4x4", "--length", "100", "--seed", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        (entry,) = payload
        assert entry["algorithm"] == "SINGLE-RANDOM-WALK"
        assert entry["source"] == 0 and entry["length"] == 100
        assert isinstance(entry["destination"], int)
        assert entry["rounds"] > 0 and isinstance(entry["phase_rounds"], dict)

    def test_walk_json_matches_table_run(self, capsys):
        main(["walk", "--graph", "torus:4x4", "--length", "100", "--seed", "3", "--json"])
        entry = json.loads(capsys.readouterr().out)[0]
        code = main(["walk", "--graph", "torus:4x4", "--length", "100", "--seed", "3"])
        assert code == 0
        table = capsys.readouterr().out
        assert str(entry["destination"]) in table and str(entry["rounds"]) in table

    def test_walk_json_all_algorithms(self, capsys):
        code = main(
            ["walk", "--graph", "hypercube:4", "--length", "200", "--algorithm", "all", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["algorithm"] for e in payload] == [
            "SINGLE-RANDOM-WALK",
            "PODC'09 baseline",
            "naive token walk",
        ]

    def test_rst_json(self, capsys):
        code = main(["rst", "--graph", "complete:5", "--seed", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "rst"
        assert len(payload["tree"]) == 4  # n-1 edges

    def test_serve_json(self, capsys):
        code = main(
            [
                "serve", "--graph", "torus:8x8", "--loop", "open",
                "--rate", "2", "--ticks", "4", "--k", "2",
                "--length", "256", "--seed", "4", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        sched = payload["scheduler"]
        assert sched["submitted"] == sched["admitted"] + sched["rejected"]
        assert sched["completed"] >= 1
        assert sched["p99_rounds_per_request"] >= sched["p50_rounds_per_request"]
        engine = payload["engine"]
        assert engine["serve"] == sched  # surfaced through EngineStats
        assert engine["rounds"] > 0

    def test_serve_churn_json(self, capsys):
        code = main(
            [
                "serve", "--graph", "torus:8x8", "--loop", "open",
                "--rate", "2", "--ticks", "5", "--k", "1",
                "--length", "96", "--seed", "4", "--json",
                "--churn-delete-rate", "1", "--churn-insert-rate", "1",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["churn"], "five ticks at rate 1+1 should churn"
        event = payload["churn"][0]
        assert event["edges_inserted"] + event["edges_deleted"] >= 1
        engine = payload["engine"]
        assert engine["churn_events"] == len(payload["churn"])

    def test_mixing_json(self, capsys):
        code = main(
            ["mixing", "--graph", "complete:8", "--seed", "2", "--samples", "150", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "mixing"
        assert payload["estimate"] >= 1

    def test_walks_json_includes_shard_stats(self, capsys):
        code = main(
            ["walks", "--graph", "torus:8x8", "--k", "4", "--length", "256", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "batch-stitched"
        assert len(payload["destinations"]) == 4
        stats = payload["stats"]
        assert stats["queries"] == 1
        assert stats["num_shards"] >= 1
        assert "shard_unused_min" in stats and "maintenance_sweeps" in stats

    def test_walk_metropolis_algorithm(self, capsys):
        code = main(
            ["walk", "--graph", "torus:4x4", "--length", "100", "--algorithm", "metropolis"]
        )
        assert code == 0
        assert "Metropolis-Hastings" in capsys.readouterr().out


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out
