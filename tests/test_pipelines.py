"""Tests for the pipelined upcast primitive (height + k − 1 rounds)."""

from __future__ import annotations

import pytest

from repro.congest import Network, build_bfs_tree, pipelined_upcast
from repro.errors import ProtocolError
from repro.graphs import binary_tree_graph, grid_graph, path_graph, star_graph


def _setup(graph, root=0):
    net = Network(graph)
    tree = build_bfs_tree(net, root)
    return net, tree


class TestCorrectness:
    def test_collects_every_item(self):
        g = grid_graph(4, 4)
        net, tree = _setup(g)
        items = [[f"item-{v}-{j}" for j in range(v % 3)] for v in range(g.n)]
        collected, _rounds = pipelined_upcast(net, tree, items)
        expected = sorted(x for sub in items for x in sub)
        assert sorted(collected) == expected

    def test_root_items_included_for_free(self):
        g = star_graph(5)
        net, tree = _setup(g)
        items = [["root-own"], [], [], [], []]
        collected, rounds = pipelined_upcast(net, tree, items)
        assert collected == ["root-own"]
        assert rounds == 0  # nothing to move

    def test_empty_everything(self):
        g = path_graph(4)
        net, tree = _setup(g)
        collected, rounds = pipelined_upcast(net, tree, [[] for _ in range(4)])
        assert collected == [] and rounds == 0

    def test_item_count_validation(self):
        g = path_graph(3)
        net, tree = _setup(g)
        with pytest.raises(ProtocolError):
            pipelined_upcast(net, tree, [[1], [2]])


class TestPipeliningBound:
    def test_height_plus_k_on_path(self):
        # k items at the far end of a path: depth + k - 1 rounds.
        n, k = 10, 6
        g = path_graph(n)
        net, tree = _setup(g, root=0)
        items = [[] for _ in range(n)]
        items[n - 1] = list(range(k))
        _collected, rounds = pipelined_upcast(net, tree, items)
        assert rounds == (n - 1) + k - 1

    def test_height_plus_k_spread_items(self):
        # Items spread across a deep tree: still <= height + k - 1.
        g = binary_tree_graph(4)
        net, tree = _setup(g, root=0)
        items = [[v] if v % 2 == 1 else [] for v in range(g.n)]
        k = sum(len(x) for x in items)
        _collected, rounds = pipelined_upcast(net, tree, items)
        assert rounds <= tree.height + k - 1

    def test_star_is_pure_serialization(self):
        # All leaves at depth 1: the root edge... every leaf has its own
        # edge, so k items on k distinct leaves take just 1 round.
        g = star_graph(9)
        net, tree = _setup(g, root=0)
        items = [[] for _ in range(g.n)]
        for v in range(1, g.n):
            items[v] = [v]
        _collected, rounds = pipelined_upcast(net, tree, items)
        assert rounds == 1

    def test_single_leaf_with_many_items_serializes(self):
        g = star_graph(9)
        net, tree = _setup(g, root=0)
        items = [[] for _ in range(g.n)]
        items[3] = list(range(7))
        _collected, rounds = pipelined_upcast(net, tree, items)
        assert rounds == 7  # one edge, one item per round

    def test_validates_charge_formula_used_elsewhere(self):
        # MANY-RANDOM-WALKS charges height + k for k reports; the protocol
        # must never exceed that.
        g = grid_graph(5, 5)
        net, tree = _setup(g, root=0)
        for k in (1, 4, 9):
            items = [[] for _ in range(g.n)]
            for j in range(k):
                items[g.n - 1 - j] = [j]
            fresh_net = Network(g)
            fresh_tree = build_bfs_tree(fresh_net, 0)
            _collected, rounds = pipelined_upcast(fresh_net, fresh_tree, items)
            assert rounds <= fresh_tree.height + k, (k, rounds)
