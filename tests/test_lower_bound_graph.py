"""Tests for the Section-3 lower-bound construction G_n (Definition 3.3)."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graphs import build_lower_bound_graph, diameter, is_connected, round_bound
from repro.graphs.lower_bound import _choose_k_prime


class TestKPrime:
    def test_definition_inequalities(self):
        # k' is a power of two with k'/2 <= 4k < k'.
        for k in (1, 2, 3, 5, 8, 19, 64):
            kp = _choose_k_prime(k)
            assert kp & (kp - 1) == 0
            assert kp / 2 <= 4 * k < kp


class TestConstruction:
    def test_node_counts(self):
        inst = build_lower_bound_graph(100)
        # n' path nodes + (2k' - 1) tree nodes.
        assert inst.graph.n == inst.n_prime + 2 * inst.k_prime - 1
        assert inst.n_prime >= 100
        assert inst.n_prime % inst.k_prime == 0

    def test_connected(self):
        assert is_connected(build_lower_bound_graph(64).graph)

    def test_logarithmic_diameter(self):
        # Theorem 3.2 promises diameter O(log n); check a generous constant.
        for n in (64, 256, 1024):
            inst = build_lower_bound_graph(n)
            d = diameter(inst.graph)
            assert d <= 6 * math.log2(inst.graph.n) + 8, (n, d)

    def test_path_is_a_path(self):
        inst = build_lower_bound_graph(64)
        g = inst.graph
        for i in range(1, inst.n_prime):
            assert g.has_edge(inst.path_node(i), inst.path_node(i + 1))

    def test_leaf_attachment_pattern(self):
        inst = build_lower_bound_graph(64)
        g = inst.graph
        # Leaf u_i is wired to v_{j k' + i} for every j.
        for idx, leaf in enumerate(inst.leaves):
            i = idx + 1
            j = 0
            while j * inst.k_prime + i <= inst.n_prime:
                assert g.has_edge(leaf, inst.path_node(j * inst.k_prime + i))
                j += 1

    def test_each_path_node_has_one_leaf(self):
        inst = build_lower_bound_graph(64)
        g = inst.graph
        leaf_set = set(inst.leaves)
        for v in range(inst.n_prime):
            tree_neighbors = [u for u in g.neighbor_set(v) if inst.is_tree_node(u)]
            assert len(tree_neighbors) == 1
            assert tree_neighbors[0] in leaf_set
            assert tree_neighbors[0] == inst.leaf_of_path_node(v)

    def test_tree_is_binary(self):
        inst = build_lower_bound_graph(64)
        g = inst.graph
        root = inst.root
        # Root has exactly two tree children.
        kids = [u for u in g.neighbor_set(root) if inst.is_tree_node(u)]
        assert sorted(kids) == [inst.left_child, inst.right_child]

    def test_path_index_roundtrip(self):
        inst = build_lower_bound_graph(32)
        for i in (1, 2, inst.n_prime):
            assert inst.path_index(inst.path_node(i)) == i
        with pytest.raises(GraphError):
            inst.path_node(0)
        with pytest.raises(GraphError):
            inst.path_index(inst.root)

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            build_lower_bound_graph(3)

    def test_explicit_k(self):
        inst = build_lower_bound_graph(64, k=2)
        assert inst.k == 2
        assert inst.k_prime == _choose_k_prime(2)


class TestLeftRightSplit:
    def test_partition(self):
        inst = build_lower_bound_graph(64)
        left = set(inst.left_path_nodes())
        right = set(inst.right_path_nodes())
        assert left | right == set(range(inst.n_prime))
        assert not (left & right)

    def test_left_nodes_attach_to_left_subtree(self):
        inst = build_lower_bound_graph(64)
        half = inst.k_prime // 2
        left_leaves = set(inst.leaves[:half])
        for v in inst.left_path_nodes():
            assert inst.leaf_of_path_node(v) in left_leaves


class TestBreakpoints:
    def test_counts_scale(self):
        # Lemma 3.4: at least n/(4k) breakpoints per side.
        inst = build_lower_bound_graph(256)
        expected_min = inst.n_prime / (4 * inst.k_prime)  # conservative reading
        assert len(inst.left_breakpoints()) >= expected_min
        assert len(inst.right_breakpoints()) >= expected_min

    def test_left_breakpoints_far_from_left_leaves(self):
        # A left breakpoint is > k path-hops from every node of L.
        inst = build_lower_bound_graph(128)
        left_positions = {inst.path_index(v) for v in inst.left_path_nodes()}
        for b in inst.left_breakpoints():
            pos = inst.path_index(b)
            nearest = min(abs(pos - p) for p in left_positions)
            assert nearest > inst.k

    def test_breakpoint_spacing_is_k_prime(self):
        inst = build_lower_bound_graph(128)
        bps = [inst.path_index(b) for b in inst.right_breakpoints()]
        assert all(b2 - b1 == inst.k_prime for b1, b2 in zip(bps, bps[1:]))


class TestWeightedVariant:
    def test_forward_probability_close_to_one(self):
        inst = build_lower_bound_graph(64)
        w = 2.0 * inst.n_prime
        for i in (1, 2, 10, inst.n_prime - 1):
            p = inst.forward_probability(i)
            assert 1.0 - 2.0 / w**2 <= p < 1.0

    def test_forward_probability_at_first_vertex(self):
        inst = build_lower_bound_graph(64)
        w = 2.0 * inst.n_prime
        # v_1 has no backward edge: p = 1 / (1 + W^-2).
        assert inst.forward_probability(1) == pytest.approx(1.0 / (1.0 + w**-2.0))

    def test_forward_probability_range_checks(self):
        inst = build_lower_bound_graph(64)
        with pytest.raises(GraphError):
            inst.forward_probability(0)
        with pytest.raises(GraphError):
            inst.forward_probability(inst.n_prime)


class TestRoundBound:
    def test_curve_values(self):
        assert round_bound(100) == pytest.approx(math.sqrt(100 / math.log(100)))

    def test_monotone(self):
        assert round_bound(10_000) > round_bound(100)

    def test_small_length_raises(self):
        with pytest.raises(GraphError):
            round_bound(1)
