"""Cross-module integration tests: full pipelines on varied topologies."""

from __future__ import annotations


import pytest

from repro.apps import estimate_mixing_time, random_spanning_tree
from repro.congest import Network
from repro.graphs import (
    diameter,
    is_bipartite,
    lollipop_graph,
    random_geometric_graph,
    random_regular_graph,
    standard_families,
)
from repro.markov import exact_mixing_time, stationary_distribution
from repro.util.stats import total_variation_counts
from repro.walks import (
    lemma_2_6_bound,
    naive_random_walk,
    regenerate_walk,
    single_random_walk,
    visit_counts,
)


class TestWalkPipelineAcrossFamilies:
    def test_single_walk_everywhere(self, small_graph):
        g = small_graph
        length = 6 * g.n
        res = single_random_walk(g, 0, length, seed=42)
        res.verify_positions(g)
        assert sum(res.phase_rounds.values()) == res.rounds

    def test_visit_bound_everywhere(self, small_graph):
        g = small_graph
        length = 6 * g.n
        res = single_random_walk(g, 0, length, seed=7)
        counts = visit_counts(res.positions, g.n)
        for y in range(g.n):
            assert counts[y] <= lemma_2_6_bound(g.degree(y), length, max(g.n, 3))

    def test_regeneration_everywhere(self, small_graph):
        g = small_graph
        net = Network(g, seed=3)
        res = single_random_walk(g, 0, 4 * g.n, seed=3, network=net)
        regen = regenerate_walk(net, res)
        claimed = sum(len(v) for v in regen.node_positions.values())
        assert claimed == res.length + 1


class TestScaleOneBundle:
    def test_walks_on_standard_families(self):
        for g in standard_families(scale=1, seed=5):
            res = single_random_walk(g, 0, 2 * g.n, seed=5, record_paths=False)
            assert 0 <= res.destination < g.n
            assert res.rounds > 0

    def test_rst_on_two_families(self):
        for g in standard_families(scale=1, seed=6)[:2]:
            res = random_spanning_tree(g, seed=6)
            assert g.subgraph_is_spanning_tree(res.edges)


class TestLongWalkSampling:
    def test_long_walk_close_to_stationary(self):
        # ℓ >> τ_mix: endpoint samples should be near the stationary law
        # (the §1.2 discussion about rapidly mixing networks).
        g = random_regular_graph(32, 4, 8)
        if is_bipartite(g):  # extremely unlikely for random regular
            pytest.skip("sampled graph bipartite")
        tau = exact_mixing_time(g, 0)
        length = 8 * max(tau, 1)
        endpoints = [
            single_random_walk(g, 0, length, seed=100 + i, record_paths=False).destination
            for i in range(300)
        ]
        pi = stationary_distribution(g)
        counts: dict[int, int] = {}
        for e in endpoints:
            counts[e] = counts.get(e, 0) + 1
        tv = total_variation_counts(counts, {v: float(pi[v]) for v in range(g.n)})
        assert tv < 0.25  # sampling noise at 300 samples dominates


class TestGeometricGraphStory:
    def test_rgg_mixing_exceeds_diameter(self):
        # The paper's ad-hoc-network motivation: τ_mix >> D on RGGs near
        # the connectivity threshold.
        g = random_geometric_graph(48, 0.3, 4)
        if is_bipartite(g):
            pytest.skip("sampled graph bipartite")
        d = diameter(g)
        tau = exact_mixing_time(g, 0)
        assert tau > d

    def test_estimator_runs_on_rgg(self):
        g = random_geometric_graph(36, 0.35, 11)
        if is_bipartite(g):
            pytest.skip("sampled graph bipartite")
        est = estimate_mixing_time(g, 0, seed=11, samples=300)
        tau = exact_mixing_time(g, 0)
        assert est.estimate >= max(1, tau // 4)


class TestLedgerConsistency:
    def test_shared_network_is_additive(self):
        g = lollipop_graph(6, 6)
        net = Network(g, seed=1)
        r1 = single_random_walk(g, 0, 100, seed=1, network=net)
        mid = net.rounds
        assert mid == r1.rounds
        r2 = naive_random_walk(g, 0, 50, seed=2, network=net)
        assert net.rounds == mid + r2.rounds

    def test_messages_never_negative(self, small_graph):
        net = Network(small_graph, seed=2)
        single_random_walk(small_graph, 0, 3 * small_graph.n, seed=2, network=net)
        assert net.messages_sent > 0
        assert net.ledger.max_congestion >= 1
