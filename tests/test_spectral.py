"""Tests for spectral gap / conductance and the mixing-derived bounds."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graphs import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    random_regular_graph,
    torus_graph,
)
from repro.markov import (
    cheeger_bounds,
    conductance_bounds_from_mixing,
    conductance_exact,
    exact_mixing_time,
    gap_bounds_from_mixing,
    relaxation_time,
    spectral_gap,
)


class TestSpectralGap:
    def test_complete_graph_closed_form(self):
        # K_n walk eigenvalues: 1 and -1/(n-1); second largest is -1/(n-1),
        # so the gap is 1 + 1/(n-1) = n/(n-1).
        n = 8
        assert spectral_gap(complete_graph(n)) == pytest.approx(n / (n - 1), abs=1e-9)

    def test_cycle_closed_form(self):
        # Cycle eigenvalues cos(2πk/n): gap = 1 - cos(2π/n).
        n = 12
        assert spectral_gap(cycle_graph(n)) == pytest.approx(
            1 - math.cos(2 * math.pi / n), abs=1e-9
        )

    def test_barbell_has_tiny_gap(self):
        assert spectral_gap(barbell_graph(8, 2)) < 0.05

    def test_expander_has_large_gap(self):
        assert spectral_gap(random_regular_graph(64, 4, 3)) > 0.15

    def test_relaxation_time_inverse(self):
        g = cycle_graph(9)
        assert relaxation_time(g) == pytest.approx(1 / spectral_gap(g))


class TestConductance:
    def test_complete_graph(self):
        # K4: the best cut isolates 2 nodes: cut=4, vol=6 -> 2/3.
        assert conductance_exact(complete_graph(4)) == pytest.approx(2 / 3)

    def test_cycle(self):
        # Cycle: halving cut has 2 edges, volume n -> phi = 2/n.
        n = 10
        assert conductance_exact(cycle_graph(n)) == pytest.approx(2 / n)

    def test_barbell_bridge_is_bottleneck(self):
        g = barbell_graph(5, 1)
        # The bridge edge separates the two bells: cut weight 1 over
        # volume of one bell (5*4/... degrees: 4 clique nodes of deg 4,
        # one of deg 5): vol = 21.
        assert conductance_exact(g) == pytest.approx(1 / 21)

    def test_size_gate(self):
        with pytest.raises(GraphError):
            conductance_exact(cycle_graph(30))

    def test_cheeger_sandwich_holds(self):
        for g in (cycle_graph(12), complete_graph(6), barbell_graph(5, 1), torus_graph(4, 4)):
            lo, hi = cheeger_bounds(g)
            phi = conductance_exact(g, max_nodes=18)
            assert lo - 1e-9 <= phi <= hi + 1e-9, g.name


class TestMixingDerivedBounds:
    def test_gap_interval_contains_truth(self):
        # The Section 4.2 relations, applied with the true mixing time,
        # must bracket the true gap (up to the Θ constants, slack=2).
        for g in (torus_graph(5, 5), complete_graph(12), cycle_graph(15)):
            tau = exact_mixing_time(g, 0)
            est = gap_bounds_from_mixing(max(tau, 1), g.n)
            gap = spectral_gap(g)
            assert est.contains(gap, slack=3.0), (g.name, str(est), gap)

    def test_conductance_interval_contains_truth(self):
        for g in (complete_graph(10), cycle_graph(15)):
            tau = exact_mixing_time(g, 0)
            est = conductance_bounds_from_mixing(max(tau, 1), g.n)
            phi = conductance_exact(g, max_nodes=18)
            assert est.contains(phi, slack=3.0), (g.name, str(est), phi)

    def test_interval_str_and_validation(self):
        est = gap_bounds_from_mixing(10.0, 64)
        assert "[" in str(est)
        with pytest.raises(GraphError):
            gap_bounds_from_mixing(0.0, 64)
        with pytest.raises(GraphError):
            gap_bounds_from_mixing(5.0, 1)
