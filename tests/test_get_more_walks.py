"""Tests for GET-MORE-WALKS — reservoir lengths (Lemma 2.4), O(λ) rounds."""

from __future__ import annotations

import pytest

from repro.congest import Network
from repro.errors import WalkError
from repro.graphs import cycle_graph, star_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import WalkStore, get_more_walks


class TestReservoirLengths:
    def test_lengths_in_range(self):
        g = torus_graph(4, 4)
        net = Network(g, seed=0)
        store = WalkStore()
        lam = 6
        get_more_walks(net, store, 3, 200, lam, make_rng(1))
        lengths = [rec.length for rec in store.iter_all()]
        assert min(lengths) >= lam and max(lengths) <= 2 * lam - 1

    def test_lengths_uniform_chi_square(self):
        # Lemma 2.4: reservoir stopping gives exactly uniform [λ, 2λ-1].
        g = cycle_graph(8)
        net = Network(g, seed=0)
        store = WalkStore()
        lam = 5
        get_more_walks(net, store, 0, 6000, lam, make_rng(2))
        lengths = [rec.length for rec in store.iter_all()]
        observed = {t: lengths.count(t) for t in range(lam, 2 * lam)}
        result = chi_square_goodness_of_fit(observed, {t: 1 / lam for t in range(lam, 2 * lam)})
        assert not result.rejects_at(1e-4)

    def test_fixed_mode_lengths(self):
        g = cycle_graph(8)
        net = Network(g, seed=0)
        store = WalkStore()
        get_more_walks(net, store, 0, 50, 7, make_rng(3), randomized_lengths=False)
        assert all(rec.length == 7 for rec in store.iter_all())


class TestCost:
    def test_rounds_linear_in_lambda_despite_many_walks(self):
        # Count aggregation: 500 tokens from one node, still O(λ) rounds.
        g = star_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        lam = 10
        rounds = get_more_walks(net, store, 0, 500, lam, make_rng(4))
        assert rounds <= 2 * lam  # λ prefix + at most λ-1 extension steps

    def test_congestion_is_one(self):
        g = star_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        get_more_walks(net, store, 0, 300, 8, make_rng(5))
        assert net.ledger.max_congestion == 1

    def test_fixed_mode_rounds_exactly_lambda(self):
        g = cycle_graph(10)
        net = Network(g, seed=0)
        store = WalkStore()
        rounds = get_more_walks(net, store, 0, 50, 9, make_rng(6), randomized_lengths=False)
        assert rounds == 9


class TestCorrectness:
    def test_paths_valid_and_end_at_destination(self):
        g = torus_graph(4, 4)
        net = Network(g, seed=0)
        store = WalkStore()
        get_more_walks(net, store, 5, 100, 6, make_rng(7))
        for rec in store.iter_all():
            assert rec.source == 5
            assert rec.path is not None
            assert rec.path[0] == 5
            assert rec.path[-1] == rec.destination
            assert len(rec.path) == rec.length + 1
            for a, b in zip(rec.path[:-1], rec.path[1:]):
                assert g.has_edge(int(a), int(b))

    def test_destination_law_conditional_on_length(self):
        # Among walks of realized length t, endpoints follow P^t exactly.
        g = torus_graph(4, 4)
        net = Network(g, seed=0)
        store = WalkStore()
        lam = 3
        get_more_walks(net, store, 0, 9000, lam, make_rng(8))
        spec = WalkSpectrum(g)
        t = 4  # a mid-range realized length
        landed = [rec.destination for rec in store.iter_all() if rec.length == t]
        assert len(landed) > 1500
        dist = spec.distribution(0, t)
        observed = {v: landed.count(v) for v in set(landed)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        result = chi_square_goodness_of_fit(observed, expected)
        assert not result.rejects_at(1e-4)

    def test_no_paths_mode(self):
        g = cycle_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        get_more_walks(net, store, 0, 10, 4, make_rng(9), record_paths=False)
        assert all(rec.path is None for rec in store.iter_all())

    def test_validation(self):
        g = cycle_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        with pytest.raises(WalkError):
            get_more_walks(net, store, 0, 0, 4, make_rng(0))
        with pytest.raises(WalkError):
            get_more_walks(net, store, 0, 5, 0, make_rng(0))

    def test_lambda_one(self):
        g = cycle_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        get_more_walks(net, store, 0, 20, 1, make_rng(10))
        assert all(rec.length == 1 for rec in store.iter_all())
