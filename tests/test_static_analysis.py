"""Tier-1 gate for the AST invariant analyzer (:mod:`repro.analysis`).

Two halves:

* **the repo gate** — all rules over ``src`` produce zero unsuppressed
  findings (the static analogue of the golden-ledger tests: the standing
  invariants hold at the source level, not just on one seed run);
* **fixture units** — for every rule, at least one true-positive snippet
  (the rule demonstrably fires) and one true-negative (the compliant
  idiom stays silent), plus pragma suppression and CLI behavior.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    BulkOnlyRule,
    CaptureBalanceRule,
    DeadImportRule,
    FastPathPairingRule,
    ObsPassivityRule,
    PhaseRegistryRule,
    SeededRngRule,
    analyze_paths,
    default_rules,
)
from repro.congest.phases import ALL_PHASES, PHASE_FAMILIES, is_registered
from repro.util.contracts import FAST_PATH_ATTR, charged_fast_path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_rule(rule, tmp_path: Path, source: str, *, root: Path | None = None):
    """Write ``source`` to a fixture file and run one rule over it."""
    fixture = tmp_path / "fixture.py"
    fixture.write_text(source)
    return analyze_paths([fixture], [rule], root=root or REPO_ROOT)


# ----------------------------------------------------------------------
# The repo gate
# ----------------------------------------------------------------------
class TestRepoGate:
    def test_src_has_zero_findings_under_all_rules(self):
        report = analyze_paths([REPO_ROOT / "src"], default_rules(), root=REPO_ROOT)
        assert not report.parse_errors, [f.format(REPO_ROOT) for f in report.parse_errors]
        assert not report.findings, "\n" + "\n".join(
            f.format(REPO_ROOT) for f in report.findings
        )
        assert report.files_checked > 50  # the walker actually walked the tree

    def test_cli_exits_zero_on_repo(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, f"{proc.stdout}\n{proc.stderr}"
        assert "0 finding(s)" in proc.stdout

    def test_cli_exits_nonzero_on_violation(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad), "--root", str(REPO_ROOT)],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "seeded-rng" in proc.stdout

    def test_cli_list_rules(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for rule in default_rules():
            assert rule.name in proc.stdout


# ----------------------------------------------------------------------
# Rule 1: phase-registry
# ----------------------------------------------------------------------
class TestPhaseRegistryRule:
    def test_registry_contents(self):
        assert "phase1" in ALL_PHASES
        assert "pool-refill/maintain" in ALL_PHASES
        assert "serve" in PHASE_FAMILIES and "pool-refill" in PHASE_FAMILIES
        assert is_registered("serve/recovery") and not is_registered("serve/recoverey")

    def test_true_positive_unregistered_literal(self, tmp_path):
        report = run_rule(
            PhaseRegistryRule(),
            tmp_path,
            'def f(net):\n    with net.phase("pool-refil/maintain"):\n        pass\n',
        )
        assert len(report.findings) == 1
        assert "not registered" in report.findings[0].message

    def test_true_positive_phase_total_and_keyword(self, tmp_path):
        src = (
            "def f(ledger, engine, tree):\n"
            '    x = ledger.phase_total("srve")\n'
            '    engine._report_convergecast(tree, [1], phase="reprot")\n'
            "    return x\n"
        )
        report = run_rule(PhaseRegistryRule(), tmp_path, src)
        assert len(report.findings) == 2

    def test_true_positive_mapping_lookup_and_default(self, tmp_path):
        src = (
            'def f(delta, sample_phase="batch-sampel"):\n'
            '    return delta.phase_rounds.get("serve/recoverey", 0)\n'
        )
        report = run_rule(PhaseRegistryRule(), tmp_path, src)
        assert len(report.findings) == 2

    def test_true_negative_constant_and_registered(self, tmp_path):
        src = (
            "from repro.congest.phases import PHASE1\n"
            "def f(net, ledger):\n"
            "    with net.phase(PHASE1):\n"
            "        pass\n"
            '    return ledger.phase_total("pool-refill")\n'  # registered family, non-src file
        )
        report = run_rule(PhaseRegistryRule(), tmp_path, src)
        assert not report.findings

    def test_src_files_get_strict_constant_enforcement(self, tmp_path):
        # Outside src/repro a registered literal passes (previous test);
        # inside it the rule demands the constant.
        nested = tmp_path / "src" / "repro" / "x"
        nested.mkdir(parents=True)
        fixture = nested / "mod.py"
        fixture.write_text('def f(net):\n    with net.phase("phase1"):\n        pass\n')
        report = analyze_paths([fixture], [PhaseRegistryRule()], root=REPO_ROOT)
        assert len(report.findings) == 1
        assert "use the repro.congest.phases constant" in report.findings[0].message


# ----------------------------------------------------------------------
# Rule 2: bulk-only
# ----------------------------------------------------------------------
class TestBulkOnlyRule:
    def test_true_positive_add_token_in_loop(self, tmp_path):
        src = (
            "def refill(store, records):\n"
            "    for r in records:\n"
            "        store.add_token(r.source, r.length, r.destination)\n"
        )
        report = run_rule(BulkOnlyRule(), tmp_path, src)
        assert len(report.findings) == 1
        assert "add_batch" in report.findings[0].message

    def test_true_positive_store_append_in_while(self, tmp_path):
        src = (
            "def drain(self, items):\n"
            "    while items:\n"
            "        self.store.columns.append(items.pop())\n"
        )
        report = run_rule(BulkOnlyRule(), tmp_path, src)
        assert len(report.findings) == 1

    def test_true_negative_add_batch_and_plain_appends(self, tmp_path):
        src = (
            "def refill(store, cols, out):\n"
            "    store.add_batch(*cols)\n"
            "    for c in cols:\n"
            "        out.append(c)\n"  # plain list, not a store column
            "    store.add_token(1, 2, 3)\n"  # API edge outside any loop
        )
        report = run_rule(BulkOnlyRule(), tmp_path, src)
        assert not report.findings

    def test_nested_function_resets_loop_context(self, tmp_path):
        src = (
            "def outer(store, records):\n"
            "    for r in records:\n"
            "        def cb():\n"
            "            store.add_token(r)\n"  # defined in loop, not per-record work
            "        cb\n"
        )
        report = run_rule(BulkOnlyRule(), tmp_path, src)
        assert not report.findings


# ----------------------------------------------------------------------
# Rule 3: seeded-rng
# ----------------------------------------------------------------------
class TestSeededRngRule:
    def test_true_positive_all_four_shapes(self, tmp_path):
        src = (
            "import random\n"
            "import time\n"
            "import numpy as np\n"
            "from numpy.random import default_rng\n"
            "def f():\n"
            "    a = np.random.rand(3)\n"
            "    b = default_rng()\n"
            "    c = time.time()\n"
            "    d = random.random()\n"
            "    return a, b, c, d\n"
        )
        report = run_rule(SeededRngRule(), tmp_path, src)
        assert len(report.findings) == 4
        kinds = "\n".join(f.message for f in report.findings)
        assert "module-global" in kinds and "bare default_rng" in kinds
        assert "wall-clock" in kinds and "stdlib" in kinds

    def test_true_positive_from_random_import(self, tmp_path):
        report = run_rule(SeededRngRule(), tmp_path, "from random import choice\nchoice\n")
        assert len(report.findings) == 1

    def test_true_negative_seeded_plumbing(self, tmp_path):
        src = (
            "import numpy as np\n"
            "from repro.util.rng import derive_rng, make_rng\n"
            "def f(seed):\n"
            "    rng = make_rng(seed)\n"
            "    sub = derive_rng(seed, 'phase', 3)\n"
            "    explicit = np.random.default_rng(seed)\n"
            "    seq = np.random.SeedSequence(seed)\n"
            "    return rng.random(), sub, explicit, seq\n"
        )
        report = run_rule(SeededRngRule(), tmp_path, src)
        assert not report.findings

    def test_util_rng_is_exempt(self):
        rule = SeededRngRule()
        assert not rule.applies_to(REPO_ROOT / "src" / "repro" / "util" / "rng.py")
        assert rule.applies_to(REPO_ROOT / "src" / "repro" / "engine" / "core.py")


# ----------------------------------------------------------------------
# Rule 4: fast-path-pairing
# ----------------------------------------------------------------------
class TestFastPathPairingRule:
    def test_decorator_attaches_metadata_and_validates(self):
        @charged_fast_path(equivalence_test="tests/test_x.py::test_y")
        def fast():
            return 1

        assert getattr(fast, FAST_PATH_ATTR) == "tests/test_x.py::test_y"
        assert fast() == 1
        with pytest.raises(ValueError):
            charged_fast_path(equivalence_test="not-a-node-id")

    def test_true_positive_missing_file_and_missing_test(self, tmp_path):
        src = (
            "from repro.util.contracts import charged_fast_path\n"
            "@charged_fast_path(equivalence_test='tests/test_gone.py::test_x')\n"
            "def a(): pass\n"
            "@charged_fast_path(equivalence_test='tests/real.py::test_missing')\n"
            "def b(): pass\n"
        )
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "real.py").write_text("def test_present(): pass\n")
        report = run_rule(FastPathPairingRule(), tmp_path, src, root=tmp_path)
        assert len(report.findings) == 2
        messages = "\n".join(f.message for f in report.findings)
        assert "does not exist" in messages and "lost its proof" in messages

    def test_true_positive_non_literal_marker(self, tmp_path):
        src = (
            "from repro.util.contracts import charged_fast_path\n"
            "NODE = 'tests/x.py::test_y'\n"
            "@charged_fast_path(equivalence_test=NODE)\n"
            "def a(): pass\n"
        )
        report = run_rule(FastPathPairingRule(), tmp_path, src, root=tmp_path)
        assert len(report.findings) == 1
        assert "literal" in report.findings[0].message

    def test_true_negative_existing_test_including_class_member(self, tmp_path):
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "real.py").write_text(
            "class TestSuite:\n    def test_inside(self): pass\n"
        )
        src = (
            "from repro.util.contracts import charged_fast_path\n"
            "@charged_fast_path(equivalence_test='tests/real.py::TestSuite::test_inside')\n"
            "def a(): pass\n"
            "@charged_fast_path(equivalence_test='tests/real.py::test_inside')\n"
            "def b(): pass\n"
        )
        report = run_rule(FastPathPairingRule(), tmp_path, src, root=tmp_path)
        assert not report.findings

    def test_repo_fast_paths_are_marked(self):
        # The three ROADMAP fast paths (plus Phase 1) carry live markers.
        from repro.congest.primitives import build_bfs_tree
        from repro.engine.core import WalkEngine
        from repro.walks.get_more_walks import get_more_walks_batch
        from repro.walks.short_walks import perform_short_walks

        for fn in (
            build_bfs_tree,
            WalkEngine._report_convergecast,
            get_more_walks_batch,
            perform_short_walks,
        ):
            node_id = getattr(fn, FAST_PATH_ATTR, None)
            assert node_id, f"{fn.__qualname__} lost its @charged_fast_path marker"
            rel, _, name = node_id.partition("::")
            assert (REPO_ROOT / rel).exists()


# ----------------------------------------------------------------------
# Rule 5: capture-balance
# ----------------------------------------------------------------------
class TestCaptureBalanceRule:
    def test_true_positive_capture_without_delta(self, tmp_path):
        src = (
            "def serve(net):\n"
            "    snap = net.ledger.capture()\n"
            "    return snap\n"
        )
        report = run_rule(CaptureBalanceRule(), tmp_path, src)
        assert len(report.findings) == 1
        assert "dead accounting" in report.findings[0].message

    def test_true_positive_delta_without_capture(self, tmp_path):
        src = (
            "def serve(net, snap):\n"
            "    return net.ledger.delta_since(snap)\n"
        )
        report = run_rule(CaptureBalanceRule(), tmp_path, src)
        assert len(report.findings) == 1
        assert "baseline" in report.findings[0].message

    def test_true_negative_paired_and_unrelated_capture(self, tmp_path):
        src = (
            "def serve(net):\n"
            "    snap = net.ledger.capture()\n"
            "    work(net)\n"
            "    return net.ledger.delta_since(snap)\n"
            "def work(camera):\n"
            "    camera.capture()\n"  # not a ledger: out of scope for the rule
        )
        report = run_rule(CaptureBalanceRule(), tmp_path, src)
        assert not report.findings

    def test_scopes_are_independent(self, tmp_path):
        src = (
            "def good(net):\n"
            "    s = net.ledger.capture()\n"
            "    return net.ledger.delta_since(s)\n"
            "def bad(net):\n"
            "    s = net.ledger.capture()\n"
            "    return s\n"
        )
        report = run_rule(CaptureBalanceRule(), tmp_path, src)
        assert len(report.findings) == 1
        assert report.findings[0].lineno == 5


# ----------------------------------------------------------------------
# Rule 6: dead-import (framework home of the old test_lint walk)
# ----------------------------------------------------------------------
class TestDeadImportRule:
    def test_true_positive(self, tmp_path):
        report = run_rule(DeadImportRule(), tmp_path, "import os\nimport sys\nprint(sys)\n")
        assert len(report.findings) == 1
        assert "'os'" in report.findings[0].message

    def test_true_negative_and_init_exemption(self, tmp_path):
        report = run_rule(DeadImportRule(), tmp_path, "import os\nprint(os.sep)\n")
        assert not report.findings
        init = tmp_path / "__init__.py"
        init.write_text("import os\n")
        assert not analyze_paths([init], [DeadImportRule()], root=REPO_ROOT).findings


# ----------------------------------------------------------------------
# Rule 7: obs-passivity
# ----------------------------------------------------------------------
class TestObsPassivityRule:
    """Wall-clock only via obs/clock.py; no mutators/RNG inside obs/."""

    @staticmethod
    def run_at(rule, tmp_path: Path, rel: str, source: str):
        # The rule only polices the production tree, so fixtures must
        # live at a src/repro/... path (run_rule's flat tmp file is
        # outside the rule's jurisdiction by design).
        fixture = tmp_path / rel
        fixture.parent.mkdir(parents=True, exist_ok=True)
        fixture.write_text(source)
        return analyze_paths([fixture], [rule], root=REPO_ROOT)

    def test_true_positive_wall_clock_in_production(self, tmp_path):
        src = (
            "import time\n"
            "from time import monotonic\n"
            "def f():\n"
            "    return time.perf_counter() + monotonic()\n"
        )
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/engine/x.py", src)
        assert len(report.findings) == 2
        assert all("wall clock" in f.message for f in report.findings)

    def test_clock_module_is_exempt_and_repo_clock_uses_perf_counter(self, tmp_path):
        src = "import time\n\ndef now():\n    return time.perf_counter()\n"
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/obs/clock.py", src)
        assert not report.findings
        # The real wrapper would trip the rule anywhere else — the
        # exemption is what makes it the single audited wall-clock home.
        real = REPO_ROOT / "src" / "repro" / "obs" / "clock.py"
        assert "perf_counter" in real.read_text()
        assert not ObsPassivityRule().applies_to(real)

    def test_true_positive_mutator_and_rng_inside_obs(self, tmp_path):
        src = (
            "def hook(ledger, store, rng):\n"
            '    ledger.charge("phase1", rounds=1, messages=0)\n'
            "    store.add_batch([1])\n"
            "    return rng.integers(0, 10)\n"
        )
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/obs/bad.py", src)
        messages = [f.message for f in report.findings]
        assert len(messages) == 3
        assert sum("mutates simulation state" in m for m in messages) == 2
        assert sum("RNG" in m for m in messages) == 1

    def test_true_negative_mutators_fine_outside_obs_and_passive_obs(self, tmp_path):
        engine_src = (
            "def serve(ledger, store):\n"
            '    ledger.charge("phase1", rounds=1, messages=0)\n'
            "    store.add_batch([1])\n"
        )
        report = self.run_at(
            ObsPassivityRule(), tmp_path, "src/repro/engine/y.py", engine_src
        )
        assert not report.findings
        obs_src = (
            "def hook(ledger, sink):\n"
            "    sink.append(ledger.rounds)\n"
            "    return ledger.capture()\n"
        )
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/obs/ok.py", obs_src)
        assert not report.findings

    def test_true_positive_stage_edges_inside_obs(self, tmp_path):
        src = (
            "def hook(self, slots):\n"
            "    self.stage_edges(slots)\n"
        )
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/obs/heat.py", src)
        assert len(report.findings) == 1
        assert "stages heatmap attribution" in report.findings[0].message
        # The charge path (outside obs/) is exactly who may stage.
        report = self.run_at(
            ObsPassivityRule(), tmp_path, "src/repro/congest/net2.py", src
        )
        assert not report.findings

    def test_settle_charge_only_from_probe(self, tmp_path):
        src = (
            "def charged(self, phase, rounds, messages, congestion):\n"
            "    self.heatmap.settle_charge(phase, rounds, messages, congestion)\n"
        )
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/obs/other.py", src)
        assert len(report.findings) == 1
        assert "outside the probe" in report.findings[0].message
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/obs/probe.py", src)
        assert not report.findings

    def test_outside_production_tree_is_ignored(self, tmp_path):
        report = run_rule(
            ObsPassivityRule(),
            tmp_path,
            "import time\n\ndef bench():\n    return time.perf_counter()\n",
        )
        assert not report.findings

    def test_pragma_suppresses(self, tmp_path):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()  # repro: allow-obs-passivity\n"
        )
        report = self.run_at(ObsPassivityRule(), tmp_path, "src/repro/engine/z.py", src)
        assert not report.findings
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# Pragma suppression + framework behavior
# ----------------------------------------------------------------------
class TestPragmasAndFramework:
    def test_pragma_suppresses_named_rule_only(self, tmp_path):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: allow-seeded-rng (bench timestamp, audited)\n"
        )
        report = run_rule(SeededRngRule(), tmp_path, src)
        assert not report.findings
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "seeded-rng"

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: allow-bulk-only\n"
        )
        report = run_rule(SeededRngRule(), tmp_path, src)
        assert len(report.findings) == 1

    def test_unparseable_file_is_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = analyze_paths([bad], default_rules(), root=REPO_ROOT)
        assert not report.ok
        assert report.parse_errors and report.parse_errors[0].rule == "parse"

    def test_findings_sorted_and_formatted(self, tmp_path):
        src = (
            "import time\n"
            "import os\n"
            "def f():\n"
            "    return time.time()\n"
        )
        fixture = tmp_path / "fixture.py"
        fixture.write_text(src)
        report = analyze_paths([fixture], default_rules(), root=tmp_path)
        linenos = [f.lineno for f in report.findings]
        assert linenos == sorted(linenos)
        assert report.findings[0].format(tmp_path).startswith("fixture.py:")
