"""Tests for exact Markov-chain machinery (transition, spectrum, mixing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConvergenceError, GraphError
from repro.graphs import Graph, complete_graph, cycle_graph, grid_graph, star_graph, torus_graph
from repro.markov import (
    MIXING_EPSILON,
    WalkSpectrum,
    distribution_at,
    exact_mixing_time,
    stationary_distribution,
    transition_matrix,
    tv_from_stationary,
)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self):
        for g in (cycle_graph(7), star_graph(6), complete_graph(5)):
            p = transition_matrix(g)
            assert np.allclose(p.sum(axis=1), 1.0)

    def test_unweighted_uniform_over_neighbors(self):
        g = star_graph(5)
        p = transition_matrix(g)
        assert p[0, 1] == pytest.approx(0.25)
        assert p[1, 0] == pytest.approx(1.0)

    def test_weighted_proportional(self):
        g = Graph(3, [(0, 1), (0, 2)], weights=[1.0, 3.0])
        p = transition_matrix(g)
        assert p[0, 1] == pytest.approx(0.25)
        assert p[0, 2] == pytest.approx(0.75)

    def test_lazy_adds_half_self_loop(self):
        g = cycle_graph(5)
        p = transition_matrix(g, lazy=True)
        assert np.allclose(np.diag(p), 0.5)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_parallel_edges_accumulate(self):
        g = Graph(2, [(0, 1), (0, 1)])
        p = transition_matrix(g)
        assert p[0, 1] == pytest.approx(1.0)


class TestStationary:
    def test_degree_proportional(self):
        g = star_graph(5)
        pi = stationary_distribution(g)
        assert pi[0] == pytest.approx(0.5)
        assert pi[1] == pytest.approx(0.125)

    def test_invariance(self):
        for g in (cycle_graph(6), grid_graph(3, 4), complete_graph(5)):
            pi = stationary_distribution(g)
            p = transition_matrix(g)
            assert np.allclose(pi @ p, pi, atol=1e-12)

    def test_edgeless_raises(self):
        with pytest.raises(GraphError):
            stationary_distribution(Graph(2, []))


class TestWalkSpectrum:
    def test_distribution_matches_matrix_power(self):
        g = grid_graph(3, 3)
        spec = WalkSpectrum(g)
        p = transition_matrix(g)
        for t in (0, 1, 2, 5, 17):
            brute = np.linalg.matrix_power(p, t)[4]
            assert np.allclose(spec.distribution(4, t), brute, atol=1e-9), t

    def test_distribution_large_t_reaches_stationary(self):
        g = complete_graph(6)
        spec = WalkSpectrum(g)
        assert np.allclose(spec.distribution(0, 500), spec.pi, atol=1e-9)

    def test_weighted_graph_distribution(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)], weights=[1.0, 2.0, 4.0])
        spec = WalkSpectrum(g)
        p = transition_matrix(g)
        brute = np.linalg.matrix_power(p, 7)[1]
        assert np.allclose(spec.distribution(1, 7), brute, atol=1e-9)

    def test_negative_t_rejected(self):
        with pytest.raises(GraphError):
            WalkSpectrum(cycle_graph(5)).distribution(0, -1)

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            WalkSpectrum(Graph(4, [(0, 1), (2, 3)]))

    def test_tv_and_l1_consistent(self):
        g = cycle_graph(9)
        spec = WalkSpectrum(g)
        assert spec.l1_from_stationary(0, 5) == pytest.approx(2 * spec.tv_from_stationary(0, 5))

    def test_one_shot_helpers(self):
        g = cycle_graph(7)
        assert np.allclose(distribution_at(g, 0, 3), WalkSpectrum(g).distribution(0, 3))
        assert tv_from_stationary(g, 0, 3) == pytest.approx(
            WalkSpectrum(g).tv_from_stationary(0, 3)
        )


class TestMonotonicity:
    def test_lemma_4_4_l1_nonincreasing(self):
        # ||pi_x(t+1) - pi||_1 <= ||pi_x(t) - pi||_1 on non-bipartite graphs.
        for g in (cycle_graph(9), torus_graph(5, 5), complete_graph(6)):
            spec = WalkSpectrum(g)
            values = [spec.l1_from_stationary(0, t) for t in range(0, 40)]
            for a, b in zip(values, values[1:]):
                assert b <= a + 1e-9


class TestExactMixingTime:
    def test_definition_boundary(self):
        g = torus_graph(5, 5)
        spec = WalkSpectrum(g)
        tau = exact_mixing_time(g, 0, spectrum=spec)
        assert spec.l1_from_stationary(0, tau) < MIXING_EPSILON
        assert spec.l1_from_stationary(0, tau - 1) >= MIXING_EPSILON

    def test_matches_linear_scan(self):
        g = cycle_graph(9)
        spec = WalkSpectrum(g)
        tau = exact_mixing_time(g, 0, spectrum=spec)
        linear = next(
            t for t in range(10_000) if spec.l1_from_stationary(0, t) < MIXING_EPSILON
        )
        assert tau == linear

    def test_complete_graph_mixes_fast(self):
        assert exact_mixing_time(complete_graph(16), 0) <= 3

    def test_cycle_mixes_slowly(self):
        assert exact_mixing_time(cycle_graph(25), 0) > 50

    def test_scaling_with_cycle_size(self):
        # τ ~ n² on cycles.
        t1 = exact_mixing_time(cycle_graph(11), 0)
        t2 = exact_mixing_time(cycle_graph(33), 0)
        assert 4 < t2 / t1 < 20  # around 9x for 3x the size

    def test_bipartite_rejected(self):
        with pytest.raises(GraphError):
            exact_mixing_time(cycle_graph(8), 0)

    def test_custom_epsilon_monotone(self):
        g = torus_graph(5, 5)
        spec = WalkSpectrum(g)
        loose = exact_mixing_time(g, 0, 0.5, spectrum=spec)
        tight = exact_mixing_time(g, 0, 0.01, spectrum=spec)
        assert loose <= tight

    def test_bad_epsilon(self):
        with pytest.raises(GraphError):
            exact_mixing_time(torus_graph(5, 5), 0, 0.0)

    def test_budget_exceeded(self):
        with pytest.raises(ConvergenceError):
            exact_mixing_time(cycle_graph(101), 0, max_t=4)
