"""Cross-cutting coverage: weighted graphs, capacity, round-tick semantics,
verification of genuine walk trajectories, and example smoke tests."""

from __future__ import annotations


from repro.congest import Network, Protocol
from repro.graphs import Graph, cycle_graph, torus_graph
from repro.lowerbound import IntervalMergingVerifier, PathVerificationInstance
from repro.markov import WalkSpectrum
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import naive_random_walk, single_random_walk


def weighted_triangle_chain() -> Graph:
    """A small weighted graph with strongly non-uniform transitions."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    weights = [5.0, 1.0, 3.0, 1.0, 2.0]
    return Graph(4, edges, weights=weights, name="weighted-quad")


class TestWeightedGraphWalks:
    """The walk algorithms must respect edge weights end to end."""

    def test_stitched_walk_valid_on_weighted_graph(self):
        g = weighted_triangle_chain()
        res = single_random_walk(g, 0, 120, seed=1)
        res.verify_positions(g)

    def test_stitched_endpoint_law_weighted(self):
        g = weighted_triangle_chain()
        length = 15
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints = [
            single_random_walk(g, 0, length, seed=500 + i, record_paths=False).destination
            for i in range(800)
        ]
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_naive_endpoint_law_weighted(self):
        g = weighted_triangle_chain()
        length = 9
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints = [
            naive_random_walk(g, 0, length, seed=i).destination for i in range(800)
        ]
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_multigraph_parallel_edges_bias_walk(self):
        # Two parallel (0,1) edges vs one (0,2): 2/3 of first steps go to 1.
        g = Graph(3, [(0, 1), (0, 1), (0, 2), (1, 2)])
        rng = make_rng(3)
        first_steps = [g.random_neighbor(0, rng) for _ in range(6000)]
        frac = first_steps.count(1) / len(first_steps)
        assert abs(frac - 2 / 3) < 0.02


class TestCapacitySemantics:
    """Larger per-edge bandwidth must shrink congestion-bound phases."""

    def test_phase1_rounds_shrink_with_capacity(self):
        g = torus_graph(6, 6)
        rounds = {}
        for capacity in (1, 4):
            net = Network(g, seed=0, capacity=capacity)
            res = single_random_walk(g, 0, 1500, seed=7, network=net, record_paths=False)
            rounds[capacity] = res.phase_rounds["phase1"]
        assert rounds[4] < rounds[1]

    def test_dilation_unaffected_by_capacity(self):
        # The naive walk is latency-bound: capacity cannot help it.
        g = cycle_graph(16)
        for capacity in (1, 8):
            net = Network(g, seed=0, capacity=capacity)
            res = naive_random_walk(g, 0, 200, seed=9, network=net, record_paths=False)
            assert res.rounds == 200


class _EveryRoundCounter(Protocol):
    """Counts per-round ticks; sends a chain of pings to keep rounds going."""

    name = "round-counter"

    def __init__(self, hops: int) -> None:
        self.hops = hops
        self.ticks = 0
        self.done = False

    def on_start(self, api) -> None:
        api.send(0, 1, self.hops - 1)

    def on_round_begin(self, api) -> None:
        self.ticks += 1

    def on_receive(self, api, node, messages) -> None:
        for msg in messages:
            remaining = msg.payload
            if remaining == 0:
                self.done = True
            else:
                api.send(node, node + 1, remaining - 1)

    def is_done(self, api) -> bool:
        return self.done


class TestRoundTick:
    def test_on_round_begin_fires_every_round(self):
        from repro.graphs import path_graph

        g = path_graph(8)
        net = Network(g)
        proto = _EveryRoundCounter(hops=6)
        rounds = net.run(proto)
        assert rounds == 6
        assert proto.ticks == 6


class TestVerifyingRealWalks:
    """§3.2's requirement: verify a *realized walk*, where nodes hold many
    positions — not just the simple planted path."""

    def test_walk_trajectory_verifiable(self):
        g = torus_graph(4, 4)
        rng = make_rng(11)
        walk = g.walk(0, 60, rng)
        pv = PathVerificationInstance(graph=g, sequence=tuple(walk))
        result = IntervalMergingVerifier(pv).run()
        assert result.verified
        assert result.rounds >= 1

    def test_backtracking_walk_verifiable(self):
        # a-b-a-b... : two nodes alternately holding many positions each.
        g = cycle_graph(4)
        seq = tuple([0, 1] * 10 + [0])
        pv = PathVerificationInstance(graph=g, sequence=seq)
        result = IntervalMergingVerifier(pv).run()
        assert result.verified

    def test_longer_walks_cost_more(self):
        g = torus_graph(4, 4)
        rng = make_rng(13)
        short = IntervalMergingVerifier(
            PathVerificationInstance(graph=g, sequence=tuple(g.walk(0, 30, rng)))
        ).run()
        long = IntervalMergingVerifier(
            PathVerificationInstance(graph=g, sequence=tuple(g.walk(0, 480, rng)))
        ).run()
        assert long.rounds > short.rounds


class TestExampleSmoke:
    """The two fastest examples run end to end (full runs are manual)."""

    def test_quickstart_runs(self, capsys):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parent.parent / "examples" / "quickstart.py"
        spec = importlib.util.spec_from_file_location("quickstart_example", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "SINGLE-RANDOM-WALK" in out
        assert "trajectory verified" in out

    def test_lower_bound_demo_runs(self, capsys):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parent.parent / "examples" / "lower_bound_demo.py"
        spec = importlib.util.spec_from_file_location("lower_bound_example", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "PATH-VERIFICATION" in out
        assert "followed the full path" in out
