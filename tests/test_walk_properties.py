"""Hypothesis property tests over the walk stack.

These generate random connected graphs and random parameters and assert
*structural invariants* that must hold for every input: trajectories are
genuine walks, stitched lengths are exact, stores never go negative,
ledgers are additive.  Statistical laws are covered by the seeded
chi-square tests elsewhere; here we hunt for crashing or contract-breaking
corner cases.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import Network
from repro.graphs import Graph
from repro.util.rng import make_rng
from repro.walks import (
    WalkStore,
    get_more_walks,
    perform_short_walks,
    sample_destination,
    single_random_walk,
    token_counts,
)


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(3, 16))
    base = [(i, i + 1) for i in range(n - 1)]
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=10))
    return Graph(n, base + extra)


class TestSingleWalkInvariants:
    @given(connected_graphs(), st.integers(1, 120), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_trajectory_always_valid(self, g, length, seed):
        res = single_random_walk(g, 0, length, seed=seed)
        res.verify_positions(g)
        assert res.rounds > 0
        assert sum(res.phase_rounds.values()) == res.rounds

    @given(connected_graphs(), st.integers(20, 150), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_explicit_lambda_never_breaks_exact_length(self, g, length, lam, seed):
        res = single_random_walk(g, 0, length, seed=seed, lam=lam)
        assert res.positions is not None
        assert len(res.positions) == length + 1
        if res.mode == "stitched":
            for seg in res.segments:
                assert lam <= seg.length <= 2 * lam - 1


class TestSubroutineInvariants:
    @given(connected_graphs(), st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_phase1_token_conservation(self, g, lam, seed):
        net = Network(g, seed=seed)
        store = WalkStore()
        counts = token_counts(g.degrees, 1.0, degree_proportional=True)
        perform_short_walks(net, store, lam, make_rng(seed), counts=counts)
        assert store.tokens_created == int(counts.sum())
        assert store.total_unused() == store.tokens_created

    @given(connected_graphs(), st.integers(1, 6), st.integers(1, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_get_more_walks_lengths_always_in_range(self, g, lam, count, seed):
        net = Network(g, seed=seed)
        store = WalkStore()
        get_more_walks(net, store, 0, count, lam, make_rng(seed))
        lengths = [rec.length for rec in store.iter_all()]
        assert len(lengths) == count
        assert all(lam <= t <= 2 * lam - 1 for t in lengths)

    @given(connected_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sample_until_exhaustion_never_repeats(self, g, seed):
        net = Network(g, seed=seed)
        store = WalkStore()
        get_more_walks(net, store, 0, 5, 2, make_rng(seed))
        rng = make_rng(seed + 1)
        seen = set()
        for _ in range(5):
            rec, _ = sample_destination(net, store, 0, rng)
            assert rec is not None
            assert rec.token_id not in seen
            seen.add(rec.token_id)
        rec, _ = sample_destination(net, store, 0, rng)
        assert rec is None
