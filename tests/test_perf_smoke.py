"""Tier-1 perf smoke guard for the columnar hot paths.

The heavyweight wall-clock sweeps live in
``benchmarks/bench_perf_hotpaths.py`` (run directly, or via pytest where
they are ``@pytest.mark.slow``).  This module keeps a *fast* guard inside
the tier-1 gate: the bench harness still imports, emits its
machine-readable schema, and the columnar Phase-1 storage still clearly
beats the legacy per-token loop at a small size.  The full ≥5x acceptance
check at n ∈ {1k, 10k, 50k} is the slow suite's job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import bench_churn  # noqa: E402
import bench_faults  # noqa: E402
import bench_many_walks  # noqa: E402
import bench_obs  # noqa: E402
import bench_perf_hotpaths as bench  # noqa: E402
import bench_serve  # noqa: E402
import bench_tenants  # noqa: E402


class TestBenchHarnessSmoke:
    def test_run_suite_schema(self):
        results = bench.run_suite(sizes=(256,))
        assert results["schema"] == "bench_perf_hotpaths/v1"
        assert [row["n"] for row in results["phase1_token_creation"]] == [256]
        for section in ("phase1_token_creation", "csr_construction", "bfs_build"):
            assert len(results[section]) == 1
        row = results["phase1_token_creation"][0]
        assert row["tokens"] == 4 * 256  # η=1 on a 4-regular torus
        assert row["columnar_seconds"] > 0 and row["legacy_seconds"] > 0
        # JSON round-trips (the emitted file is the perf trajectory record).
        assert json.loads(json.dumps(results)) == results

    @pytest.mark.slow
    def test_columnar_storage_beats_legacy_loop(self):
        # Wall-clock assertion: slow tier only, so a loaded CI machine can
        # never flake the tier-1 gate on a timing race.
        row = bench.bench_phase1(1024)
        assert row["speedup"] >= 2.0, f"columnar Phase-1 no longer clearly wins: {row}"

    def test_committed_results_match_schema(self):
        path = bench.RESULT_PATH
        assert path.exists(), "BENCH_HOTPATHS.json must be committed at the repo root"
        results = json.loads(path.read_text())
        assert results["schema"] == "bench_perf_hotpaths/v1"
        assert set(results["sizes"]) == set(bench.SIZES)
        for row in results["phase1_token_creation"]:
            if row["n"] == 10_000:
                assert row["speedup"] >= 5.0, (
                    "committed Phase-1 speedup at n=10k below the 5x acceptance bar"
                )
                break
        else:  # pragma: no cover - schema violation
            pytest.fail("no n=10k row in committed BENCH_HOTPATHS.json")

    def test_batch_stitching_beats_serial_loop(self):
        # Live tier-1 guard for the PR-3 batch regime: at k=64 the
        # interleaved batch sweeps must use strictly fewer *simulated*
        # rounds than the serial per-source loop.  Simulated rounds are
        # deterministic, so this can sit in the fast gate without any
        # wall-clock flake risk (a small graph keeps it quick).
        section = bench_many_walks.bench_batch_k_walks(
            n=256, degree=4, length=256, ks=[64], seed=1201
        )
        row = section["rows"][0]
        assert row["k"] == 64
        assert row["batch_rounds"] < row["serial_rounds"], row
        assert row["batch_report_rounds"] == row["serial_report_rounds"], row

    def test_committed_batch_k_walks_section(self):
        # The committed n=10k sweep (benchmarks/bench_many_walks.py) must
        # show the batch regime winning at every recorded k — in
        # particular the k=64 acceptance row — and both regimes charging
        # the identical pipelined report formula.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("batch_k_walks")
        assert section is not None, "run benchmarks/bench_many_walks.py to regenerate"
        assert section["schema"] == "bench_batch_k_walks/v1"
        assert section["n"] == 10_000
        ks = {row["k"] for row in section["rows"]}
        assert {16, 64, 256} <= ks
        for row in section["rows"]:
            assert row["batch_rounds"] < row["serial_rounds"], row
            assert row["batch_report_rounds"] == row["serial_report_rounds"], row
            if row["k"] == 64:
                assert row["rounds_speedup"] > 2.0, row

    def test_scheduled_serving_beats_serial_live(self):
        # Live tier-1 guard for the PR-4 scheduler: the same 8-request
        # mixed-length workload costs strictly fewer simulated rounds
        # through merged cohorts than through request-at-a-time serving.
        # Simulated rounds are deterministic — no wall-clock flake risk.
        section = bench_serve.bench_serve(**bench_serve.QUICK_SERVE)
        row = section["rows"][0]
        assert row["requests"] == 8
        assert row["scheduled_rounds"] < row["serial_rounds"], row
        assert row["rounds_speedup"] >= 1.5, row
        assert row["scheduled_p99_rounds"] <= row["serial_p99_rounds"], row

    def test_committed_serve_scheduler_section(self):
        # The PR-4 acceptance bar: on the committed n=10k sweep the
        # scheduler serves the 8-request mixed workload with >= 2x fewer
        # total simulated rounds than serial one-at-a-time servicing, at
        # every recorded k in {16, 64, 256}.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("serve_scheduler")
        assert section is not None, "run benchmarks/bench_serve.py to regenerate"
        assert section["schema"] == "bench_serve/v1"
        assert section["n"] == 10_000
        ks = {row["k"] for row in section["rows"]}
        assert {16, 64, 256} <= ks
        for row in section["rows"]:
            assert row["requests"] == 8
            assert len(set(row["lengths"])) > 1, "workload must mix lengths"
            assert row["rounds_speedup"] >= 2.0, row
            assert row["scheduled_p99_rounds"] <= row["serial_p99_rounds"], row
            assert (
                row["scheduled_throughput_per_1k_rounds"]
                > row["serial_throughput_per_1k_rounds"]
            ), row

    def test_committed_lambda_retune_section(self):
        # PR-3 follow-up satellite: batch requests auto-preparing with the
        # k-enlarged Θ(√(klD) + k) λ must serve in fewer rounds than the
        # single-walk λ pool, for every committed k.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("batch_lambda_retune")
        assert section is not None, "run benchmarks/bench_many_walks.py to regenerate"
        assert section["schema"] == "bench_lambda_retune/v1"
        assert section["n"] == 10_000
        ks = {row["k"] for row in section["rows"]}
        assert {16, 64, 256} <= ks
        for row in section["rows"]:
            assert row["lam_after"] > row["lam_before"], row
            assert row["request_rounds_after"] < row["request_rounds_before"], row
            if row["k"] == 64:
                assert row["rounds_speedup"] > 2.0, row

    def test_packed_tenant_serving_beats_per_request_live(self):
        # Live tier-1 guard for the PR-7 multi-tenant tier: the same
        # 9-request 3-tenant mixed-length workload costs fewer simulated
        # rounds through Σk-packed cohorts with the shared pipelined
        # report than through per-request serving, and ticket splitting
        # actually exercises.  Simulated rounds are deterministic — no
        # wall-clock flake risk.
        section = bench_tenants.bench_tenants(**bench_tenants.QUICK_TENANTS)
        row = section["rows"][0]
        assert row["requests"] == 9
        assert row["cohort_splits"] > 0, row
        assert row["pipelined_report_rounds"] > 0, row
        assert row["rounds_speedup"] >= 1.3, row
        assert row["fairness_max_rel_dev"] < 0.25, row

    def test_committed_multi_tenant_section(self):
        # The PR-7 acceptance bar: on the committed n=10k sweep the
        # packed+pipelined multi-tenant scheduler beats per-request
        # serving by >= 1.3x total simulated rounds at every recorded
        # k in {16, 64, 256}, with the saturated fairness split staying
        # within 10% relative of the 1:2:4 weight shares.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("multi_tenant")
        assert section is not None, "run benchmarks/bench_tenants.py to regenerate"
        assert section["schema"] == "bench_multi_tenant/v1"
        assert section["n"] == 10_000
        ks = {row["k"] for row in section["rows"]}
        assert {16, 64, 256} <= ks
        for row in section["rows"]:
            assert row["requests"] == 9
            assert len(set(row["lengths"])) > 1, "workload must mix lengths"
            assert row["rounds_speedup"] >= 1.3, row
            assert row["cohort_splits"] > 0, row
            assert row["fairness_max_rel_dev"] < 0.10, row
            assert (
                row["packed_throughput_per_1k_rounds"]
                > row["per_request_throughput_per_1k_rounds"]
            ), row

    def test_incremental_churn_beats_rebuild_live(self):
        # Live tier-1 guard for the PR-5 churn subsystem: absorbing a 1%
        # edge-churn delta through the incremental invalidate+regenerate
        # path must cost strictly fewer simulated rounds than discarding
        # the pool and re-running Phase 1.  Simulated rounds are
        # deterministic — no wall-clock flake risk.
        section = bench_churn.bench_churn(**bench_churn.QUICK_CHURN)
        row = section["rows"][0]
        assert 0 < row["tokens_evicted"] < row["tokens_before"], row
        assert row["incremental_rounds"] < row["rebuild_rounds"], row
        assert row["rounds_speedup"] >= 1.5, row

    def test_committed_graph_churn_section(self):
        # The PR-5 acceptance bar: on the committed n=10k sweep the
        # incremental path beats the naive discard-and-re-prepare baseline
        # by >= 2x simulated rounds at 1% edge churn (and wins at every
        # recorded churn level).
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("graph_churn")
        assert section is not None, "run benchmarks/bench_churn.py to regenerate"
        assert section["schema"] == "bench_graph_churn/v1"
        assert section["n"] == 10_000
        fractions = {row["churn_fraction"] for row in section["rows"]}
        assert 0.01 in fractions
        for row in section["rows"]:
            assert row["tokens_evicted"] < row["tokens_before"], row
            assert row["incremental_rounds"] < row["rebuild_rounds"], row
            if row["churn_fraction"] == 0.01:
                assert row["rounds_speedup"] >= 2.0, row

    def test_incremental_fault_recovery_beats_discard_live(self):
        # Live tier-1 guard for the PR-6 fault subsystem: serving through
        # a seeded crash/recover schedule with incremental recovery
        # (path-scan eviction, suffix reuse) must bill materially fewer
        # ``serve/recovery`` rounds than the discard baseline (no recorded
        # paths: full-pool eviction + from-source restarts at every
        # event).  Simulated rounds are deterministic — no wall-clock
        # flake risk.
        section = bench_faults.bench_faults(**bench_faults.QUICK_FAULTS)
        faulty = [r for r in section["rows"] if r["crash_rate"] > 0]
        assert faulty, section
        for row in faulty:
            assert row["crashes_fired"] > 0, row
            assert row["completed"] == section["requests"], row  # never dropped
            assert row["recovery_rounds"] > 0, row
            assert row["recovery_speedup"] >= 1.5, row

    def test_committed_fault_recovery_section(self):
        # The PR-6 acceptance bar: on the committed n=10k sweep, under a
        # 1% crash-rate schedule every request still completes, and the
        # incremental recovery path beats discard-and-re-prepare by >= 2x
        # simulated recovery rounds.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("fault_recovery")
        assert section is not None, "run benchmarks/bench_faults.py to regenerate"
        assert section["schema"] == "bench_fault_recovery/v1"
        assert section["n"] == 10_000
        rates = {row["crash_rate"] for row in section["rows"]}
        assert {0.0, 0.001, 0.01} <= rates
        for row in section["rows"]:
            assert row["completed"] == section["requests"], row  # never dropped
            if row["crash_rate"] == 0.0:
                assert row["recovery_rounds"] == 0, row
            else:
                assert row["crashes_fired"] > 0, row
                assert row["recovery_rounds"] < row["discard_recovery_rounds"], row
            if row["crash_rate"] == 0.01:
                assert row["recovery_speedup"] >= 2.0, row

    def test_obs_overhead_harness_live(self):
        # Live tier-1 guard for the PR-9 observability layer: the quick
        # config runs all three attachment configs and the bench itself
        # asserts identical simulated rounds across them (passivity).
        # Wall-clock *ratios* are asserted only on the committed section
        # below — a loaded CI machine can never flake the tier-1 gate.
        section = bench_obs.bench_obs_overhead(**bench_obs.QUICK_OBS)
        assert section["schema"] == "bench_obs_overhead/v1"
        assert section["rounds"] > 0
        assert section["spans"] > 0 and section["spans_dropped"] == 0
        assert section["metrics_series"] > 0
        assert section["baseline_s"] > 0 and section["traced_s"] > 0
        assert json.loads(json.dumps(section)) == section

    def test_committed_obs_overhead_section(self):
        # The PR-9 acceptance bar: on the committed full-workload run the
        # never-attached/inert-attach gap is <= 3% wall-clock (zero cost
        # when off) and full tracing+metrics stays <= 25% at the default
        # ring size.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("obs_overhead")
        assert section is not None, "run benchmarks/bench_obs.py to regenerate"
        assert section["schema"] == "bench_obs_overhead/v1"
        assert section["ring_size"] == 65_536
        assert section["spans_dropped"] == 0
        assert section["overhead_disabled"] <= section["limits"]["disabled"] == 0.03
        assert section["overhead_traced"] <= section["limits"]["traced"] == 0.25

    def test_congestion_heatmap_harness_live(self):
        # Live tier-1 guard for the PR-10 congestion cartography: the quick
        # config runs baseline/detached/heatmap and the bench itself asserts
        # both passivity (identical simulated rounds) and the conservation
        # identity (every ledger phase fully attributed, zero residual,
        # per-edge maxima reproducing the ledger scalar).  Wall-clock ratios
        # are asserted only on the committed section below.
        section = bench_obs.bench_congestion_heatmap(**bench_obs.QUICK_OBS)
        assert section["schema"] == "bench_congestion_heatmap/v1"
        assert section["rounds"] > 0
        assert section["messages"] > 0
        assert section["located_messages"] == section["messages"]
        assert section["residual_messages"] == 0
        assert section["max_edge_congestion"] >= 1
        assert json.loads(json.dumps(section)) == section

    def test_committed_congestion_heatmap_section(self):
        # The PR-10 acceptance bar: per-edge attribution costs <= 35%
        # wall-clock on the committed full workload, an inert attach <= 3%,
        # and the attribution is *exact* — zero residual messages.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("congestion_heatmap")
        assert section is not None, "run benchmarks/bench_obs.py to regenerate"
        assert section["schema"] == "bench_congestion_heatmap/v1"
        assert section["residual_messages"] == 0
        assert section["located_messages"] == section["messages"]
        assert section["overhead_detached"] <= section["limits"]["detached"] == 0.03
        assert section["overhead_heatmap"] <= section["limits"]["heatmap"] == 0.35

    def test_slo_window_harness_live(self):
        # Live tier-1 guard for the streaming SLO monitor: the quick config
        # runs baseline/detached/slo and the bench asserts identical
        # simulated rounds (the monitor only reads) plus a non-empty event
        # stream folded through the sliding windows.
        section = bench_obs.bench_slo_window(**bench_obs.QUICK_OBS)
        assert section["schema"] == "bench_slo_window/v1"
        assert section["rounds"] > 0
        assert section["ticks_closed"] > 0
        assert section["events"] > 0
        assert json.loads(json.dumps(section)) == section

    def test_committed_slo_window_section(self):
        # Windowed digests + burn-rate rules stay <= 35% wall-clock on the
        # committed full workload (<= 3% for the inert attach), with every
        # scheduler tick rolled through the monitor.
        results = json.loads(bench.RESULT_PATH.read_text())
        section = results.get("slo_window")
        assert section is not None, "run benchmarks/bench_obs.py to regenerate"
        assert section["schema"] == "bench_slo_window/v1"
        assert section["ticks_closed"] > 0 and section["events"] > 0
        assert section["overhead_detached"] <= section["limits"]["detached"] == 0.03
        assert section["overhead_slo"] <= section["limits"]["slo"] == 0.35

    def test_committed_engine_reuse_section(self):
        # bench_engine_reuse.py appends this section; the committed numbers
        # must show the session API actually amortizing: one Phase-1
        # preparation for the whole query stream, and a wall-clock *and*
        # simulated-rounds win over per-query fresh calls.  (Static check on
        # the committed record — live wall-clock assertions are slow-tier.)
        results = json.loads(bench.RESULT_PATH.read_text())
        row = results.get("engine_reuse")
        assert row is not None, "run benchmarks/bench_engine_reuse.py to regenerate"
        assert row["queries"] >= 100
        assert row["full_preparations"] == 1
        assert row["wallclock_speedup"] > 1.0
        assert row["rounds_speedup"] > 1.0


@pytest.mark.slow
def test_full_acceptance_sweep():
    """The complete acceptance sweep (≥5x at every size) — slow."""
    for n in bench.SIZES:
        row = bench.bench_phase1(n)
        assert row["speedup"] >= 5.0, f"phase-1 speedup regressed at n={n}: {row}"
