"""Tests for the Section-3.2 weighted reduction (Theorem 3.7)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import build_lower_bound_graph
from repro.lowerbound import simulate_reduction, weighted_walk
from repro.util.rng import make_rng


class TestWeightedWalk:
    def test_walk_is_valid_in_graph(self):
        inst = build_lower_bound_graph(64)
        walk = weighted_walk(inst, 50, make_rng(1))
        g = inst.graph
        assert len(walk) == 51
        for a, b in zip(walk, walk[1:]):
            assert g.has_edge(a, b)

    def test_follows_path_with_high_probability(self):
        # P[follow all of P] >= 1 - l/(2n')^2; for n'=64 that's > 0.99.
        inst = build_lower_bound_graph(64)
        rng = make_rng(2)
        length = inst.n_prime - 1
        expected = [inst.path_node(i) for i in range(1, length + 2)]
        followed = sum(weighted_walk(inst, length, rng) == expected for _ in range(50))
        assert followed >= 45

    def test_deviations_are_rare_per_step(self):
        inst = build_lower_bound_graph(128)
        rng = make_rng(3)
        deviations = 0
        steps = 0
        for _ in range(20):
            walk = weighted_walk(inst, inst.n_prime - 1, rng)
            for a, b in zip(walk, walk[1:]):
                if inst.is_path_node(a):
                    steps += 1
                    # Any move that is not the forward path edge is a deviation.
                    if b != a + 1:
                        deviations += 1
        # Departures from the forward path should be far below 1% of steps.
        assert deviations / max(steps, 1) < 0.01

    def test_length_validation(self):
        inst = build_lower_bound_graph(64)
        with pytest.raises(GraphError):
            weighted_walk(inst, 0, make_rng(0))


class TestSimulateReduction:
    def test_report_fields(self):
        report = simulate_reduction(64, trials=10, seed=4)
        assert report.n == 64
        assert report.trials == 10
        assert 0.0 <= report.follow_fraction <= 1.0
        assert report.verification_rounds > 0
        assert report.lower_bound_curve > 0
        assert report.diameter_bound >= 1

    def test_follow_fraction_high(self):
        report = simulate_reduction(64, trials=30, seed=5)
        assert report.follow_fraction >= 0.9

    def test_verification_respects_curve(self):
        report = simulate_reduction(256, trials=2, seed=6)
        assert report.verification_rounds >= 0.3 * report.lower_bound_curve

    def test_skip_verification(self):
        report = simulate_reduction(64, trials=2, seed=7, verify=False)
        assert report.verification_rounds == 0

    def test_validation(self):
        with pytest.raises(GraphError):
            simulate_reduction(64, trials=0)
        with pytest.raises(GraphError):
            simulate_reduction(64, length=10**9, trials=1)
