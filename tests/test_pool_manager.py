"""Tests for the sharded pool manager and the batch k-walk serving regime.

The load-bearing claims of PR 3:

* **Shard partitioning is exact bookkeeping** — shard quotas sum to the
  Phase-1 allocation, occupancy views sum to the store's unused total, and
  consumed tokens are attributed to the right shard.
* **Background refills restore watermarks** — ``maintain()`` detects every
  shard below its low watermark and tops all of them up in one batched
  GET-MORE-WALKS sweep charged to the ``"pool-refill/maintain"`` sub-phase;
  request deltas never include it, yet the session ledger balances exactly
  (requests + maintenance = total).
* **Adversarial fairness** — a hot source issuing 10× everyone else's
  queries cannot leave any shard below its refill watermark: the
  between-request sweeps rebuild whatever the hot stream drains.
* **Batch stitching is exact and cheaper** — interleaved batch sweeps
  produce endpoints distributed exactly as ``P^ℓ`` (chi-square, the PR-2
  harness) while charging strictly fewer simulated rounds than the serial
  per-source loop.
* **Batched GET-MORE-WALKS degenerates correctly** — with a single source
  it produces the identical tokens and charges the identical rounds as the
  legacy single-source refill at the same RNG state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import Network
from repro.engine import MaintenanceReport, WalkEngine
from repro.engine.pool import default_num_shards
from repro.errors import WalkError
from repro.graphs import complete_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import get_more_walks
from repro.walks.get_more_walks import get_more_walks_batch
from repro.walks.store import WalkStore


class TestShardPartitioning:
    def test_quotas_sum_to_phase1_allocation(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        engine.prepare(length_hint=256)
        manager = engine.pool_manager
        assert manager is not None
        assert sum(s.quota for s in manager.shards) == engine.pool.store.tokens_created
        assert sum(s.num_sources for s in manager.shards) == torus_8x8.n
        for shard in manager.shards:
            assert 1 <= shard.low_watermark <= shard.quota

    def test_occupancy_views_track_store(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=3, record_paths=False)
        engine.prepare(length_hint=256)
        manager = engine.pool_manager
        assert int(manager.shard_unused().sum()) == engine.pool.unused
        engine.walk(0, 256)
        assert int(manager.shard_unused().sum()) == engine.pool.unused
        consumed = sum(s.tokens_served for s in manager.shards)
        assert consumed == engine.pool.store.tokens_consumed

    def test_shard_of_is_mod_map(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        engine.prepare(length_hint=256)
        manager = engine.pool_manager
        for v in range(torus_8x8.n):
            assert manager.shard_of(v) == v % manager.num_shards

    def test_default_shard_count_policy(self):
        assert default_num_shards(1) == 1
        assert default_num_shards(10) == 4  # ceil(sqrt(10)), not floor
        assert default_num_shards(50) == 8
        assert default_num_shards(64) == 8
        assert default_num_shards(10_000) == 64  # capped
        engine = WalkEngine(torus_graph(8, 8), seed=1, num_shards=4, record_paths=False)
        engine.prepare(length_hint=256)
        assert engine.pool_manager.num_shards == 4

    def test_manager_rejects_bad_policy(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, num_shards=0, record_paths=False)
        with pytest.raises(WalkError, match="num_shards"):
            engine.prepare(length_hint=256)
        engine = WalkEngine(torus_8x8, seed=1, watermark_fraction=1.5, record_paths=False)
        with pytest.raises(WalkError, match="watermark_fraction"):
            engine.prepare(length_hint=256)


class TestBackgroundRefills:
    def test_maintain_noop_on_full_pool(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=5, record_paths=False)
        engine.prepare(length_hint=256)
        report = engine.maintain()
        assert isinstance(report, MaintenanceReport)
        assert not report.swept and report.rounds == 0 and report.tokens_added == 0
        assert "pool-refill/maintain" not in engine.stats().phase_rounds

    def test_maintain_cold_engine_is_empty_report(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=5)
        report = engine.maintain()
        assert not report.swept and report.shards_refilled == ()

    def test_sweep_restores_depleted_shards(self, torus_8x8):
        engine = WalkEngine(
            torus_8x8, seed=7, record_paths=False, auto_maintain=False
        )
        engine.prepare(length_hint=256)
        manager = engine.pool_manager
        # Drain until at least one shard sits below its watermark.
        i = 0
        while not manager.depleted_shards():
            engine.walk(i % torus_8x8.n, 256)
            i += 1
            assert i < 200, "stream never depleted any shard"
        depleted = manager.depleted_shards()
        report = engine.maintain()
        assert report.swept and set(report.shards_refilled) == set(depleted)
        assert report.tokens_added > 0 and report.rounds > 0
        unused = manager.shard_unused()
        for shard in manager.shards:
            assert unused[shard.shard_id] >= shard.low_watermark
        # Charged to the maintain sub-phase, visible via the family total.
        stats = engine.stats()
        assert stats.phase_rounds.get("pool-refill/maintain", 0) == report.rounds
        assert engine.network.ledger.phase_total("pool-refill") >= report.rounds
        assert stats.maintenance_sweeps == 1
        assert stats.background_refill_tokens == report.tokens_added

    def test_request_deltas_plus_maintenance_balance_ledger(self):
        # Background sweeps are charged *between* requests: no request delta
        # contains them, and requests + maintenance = the session total.
        g = torus_graph(6, 6)
        engine = WalkEngine(g, seed=17, record_paths=False)
        total = sum(engine.walk(i % g.n, 300).rounds for i in range(30))
        stats = engine.stats()
        assert stats.maintenance_sweeps > 0  # the drained pool did get swept
        maintain_rounds = stats.phase_rounds["pool-refill/maintain"]
        assert total + maintain_rounds == engine.network.rounds

    def test_auto_maintain_off_means_no_background_phase(self):
        g = torus_graph(6, 6)
        engine = WalkEngine(g, seed=17, record_paths=False, auto_maintain=False)
        total = sum(engine.walk(i % g.n, 300).rounds for i in range(30))
        assert "pool-refill/maintain" not in engine.stats().phase_rounds
        assert total == engine.network.rounds


class TestMaintenanceTelemetryAndBudget:
    """PR-4 satellites: the EngineStats telemetry gap and the budgeted sweep."""

    def _deplete(self, engine, graph, limit=200):
        manager = engine.pool_manager
        i = 0
        while not manager.depleted_shards():
            engine.walk(i % graph.n, 256)
            i += 1
            assert i < limit, "stream never depleted any shard"

    def test_stats_expose_per_shard_refills_and_outstanding_deficit(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=256)
        manager = engine.pool_manager
        self._deplete(engine, torus_8x8)
        stats = engine.stats()
        assert stats.outstanding_deficit > 0  # a full sweep has work to do
        report = engine.maintain()
        stats = engine.stats()
        # After an unbudgeted maintain the deficit is fully erased and the
        # per-shard counters mirror the manager's books exactly.
        assert stats.outstanding_deficit == 0
        assert stats.shard_refill_counts == [s.refills for s in manager.shards]
        assert stats.shard_refill_tokens == [s.tokens_added for s in manager.shards]
        assert sum(stats.shard_refill_tokens) == report.tokens_added
        assert sum(stats.shard_refill_tokens) == stats.background_refill_tokens
        assert sum(1 for c in stats.shard_refill_counts if c > 0) == len(
            report.shards_refilled
        )

    def test_cold_engine_reports_empty_telemetry(self, torus_8x8):
        stats = WalkEngine(torus_8x8, seed=1).stats()
        assert stats.shard_refill_counts is None
        assert stats.shard_refill_tokens is None
        assert stats.outstanding_deficit == 0

    def _deplete_several(self, engine, g, want=3, limit=300):
        manager = engine.pool_manager
        i = 0
        while len(manager.depleted_shards()) < want:
            engine.walk(i % g.n, 300)
            i += 1
            assert i < limit, "stream never depleted enough shards"

    def test_budgeted_maintain_takes_emptiest_prefix(self):
        g = torus_graph(6, 6)
        # A high watermark makes several shards depleted quickly, forcing
        # the budget to actually choose between them.
        engine = WalkEngine(
            g, seed=17, record_paths=False, auto_maintain=False, watermark_fraction=0.9
        )
        engine.prepare(length_hint=300)
        manager = engine.pool_manager
        self._deplete_several(engine, g)
        # Force a strictly size-increasing price so the budget genuinely
        # selects a prefix (with no observed congestion the model prices
        # every sweep at the flat iteration base — tested below).
        manager._congestion_per_token = 1.0
        depleted = manager.depleted_shards()
        ordered = manager.maintenance_order(depleted)
        budget = manager.estimate_refill_rounds(ordered[:1])  # affords exactly one
        report = engine.maintain(round_budget=budget)
        assert report.swept
        assert report.shards_refilled == (ordered[0],)
        assert set(report.deferred_shards) == set(depleted) - {ordered[0]}
        assert engine.stats().outstanding_deficit > 0  # work deferred, visible
        # Repeated budgeted ticks clear the backlog, most urgent first.
        sweeps = 1
        while engine.stats().outstanding_deficit > 0:
            manager._congestion_per_token = 1.0  # keep the price size-sensitive
            engine.maintain(round_budget=budget)
            sweeps += 1
            assert sweeps <= len(depleted) + 2
        unused = manager.shard_unused()
        for shard in manager.shards:
            assert unused[shard.shard_id] >= shard.low_watermark

    def test_forced_violation_batches_free_by_model_shards(self):
        # With no observed congestion a sweep costs its 2λ−1 iteration base
        # regardless of size, so once the minimum-progress violation is
        # forced the whole depleted set joins ONE batched sweep — splitting
        # it across ticks would pay the base repeatedly for nothing.
        g = torus_graph(6, 6)
        engine = WalkEngine(
            g, seed=17, record_paths=False, auto_maintain=False, watermark_fraction=0.9
        )
        engine.prepare(length_hint=300)
        manager = engine.pool_manager
        self._deplete_several(engine, g)
        assert manager._congestion_per_token == 0.0
        depleted = manager.depleted_shards()
        report = engine.maintain(round_budget=1)
        assert set(report.shards_refilled) == set(depleted)
        assert report.deferred_shards == ()
        assert engine.stats().outstanding_deficit == 0

    def test_budget_covering_estimate_sweeps_everything(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=256)
        manager = engine.pool_manager
        self._deplete(engine, torus_8x8)
        depleted = manager.depleted_shards()
        budget = manager.estimate_refill_rounds(depleted)
        report = engine.maintain(round_budget=budget)
        assert set(report.shards_refilled) == set(depleted)
        assert report.deferred_shards == ()

    def test_estimate_refill_rounds_is_free_and_sane(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=256)
        manager = engine.pool_manager
        assert manager.estimate_refill_rounds(list(range(manager.num_shards))) == 0
        self._deplete(engine, torus_8x8)
        rounds_before = engine.network.rounds
        est = manager.estimate_refill_rounds(manager.depleted_shards())
        assert est >= 2 * engine.pool.lam - 1  # at least one full sweep length
        assert engine.network.rounds == rounds_before  # pure bookkeeping
        # The estimator calibrates: a real sweep folds its observed excess
        # congestion per launched token into the EMA, and later prices
        # grow with the token deficit being priced.
        report = engine.maintain()
        base = 2 * engine.pool.lam - 1
        expected = 0.5 * max(0.0, report.rounds / base - 1.0) / max(1, report.tokens_added)
        assert manager._congestion_per_token == pytest.approx(expected)
        assert manager._price(10) <= manager._price(1000)


class TestAdversarialFairness:
    def test_hot_source_cannot_starve_other_shards(self, torus_8x8):
        # One hot source issues 10x everyone else's queries.  Per-shard
        # watermarks plus between-request sweeps must keep EVERY shard at or
        # above its refill watermark at stream end — the hot stream's drain
        # is rebuilt before it can exhaust the population.
        engine = WalkEngine(torus_8x8, seed=23, num_shards=8, record_paths=False)
        cold = 1
        for i in range(110):
            if i % 11 == 0:
                source = cold = (cold + 7) % torus_8x8.n  # background traffic
            else:
                source = 0  # the hot source
            engine.walk(source, 256)
        stats = engine.stats()
        assert stats.full_preparations == 1  # never re-prepared under attack
        assert stats.maintenance_sweeps > 0
        assert stats.shards_below_watermark == 0
        manager = engine.pool_manager
        unused = manager.shard_unused()
        for shard in manager.shards:
            assert unused[shard.shard_id] >= shard.low_watermark, (
                f"shard {shard.shard_id} starved: {unused[shard.shard_id]} < "
                f"{shard.low_watermark}"
            )
        # Refill batching was fair: sweeps touched many shards, not just the
        # hot source's own.
        refilled = {s.shard_id for s in manager.shards if s.refills > 0}
        assert len(refilled) > 1


class TestBatchStitching:
    def test_batch_endpoint_distribution_chi_square(self):
        # 40 successive k=10 batch queries on ONE engine: batch-stitched
        # endpoints must follow the exact P^l law (every draw is an unused,
        # independently generated short walk — Lemma A.2's uniform law,
        # taken without replacement within a sweep).
        g = complete_graph(6)
        length = 40
        dist = WalkSpectrum(g).distribution(0, length)
        engine = WalkEngine(g, seed=4321, record_paths=False)
        endpoints: list[int] = []
        for _ in range(40):
            res = engine.walks([0] * 10, length)
            assert res.mode == "batch-stitched"
            endpoints.extend(res.destinations)
        assert engine.stats().full_preparations == 1
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_batch_beats_serial_rounds(self, torus_8x8):
        # The acceptance shape at test scale: identical request, strictly
        # fewer simulated rounds from interleaved sweeps than from the
        # serial per-source loop.
        k = 16
        sources = [(i * 5) % torus_8x8.n for i in range(k)]
        batch_engine = WalkEngine(torus_8x8, seed=9, record_paths=False)
        serial_engine = WalkEngine(torus_8x8, seed=9, record_paths=False)
        batch = batch_engine.walks(sources, 256)
        serial = serial_engine.walks(sources, 256, batch=False)
        assert batch.mode == "batch-stitched" and serial.mode == "stitched"
        assert batch.rounds < serial.rounds

    def test_batch_consumes_without_replacement(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=31, record_paths=False)
        before = 0
        for _ in range(5):
            engine.walks([0, 1, 2, 3], 256)
            store = engine.pool.store
            assert store.tokens_consumed > before  # sweeps actually pop
            before = store.tokens_consumed
            assert store.tokens_created - store.tokens_consumed == store.total_unused()

    def test_batch_replays_identically_at_fixed_seed(self, torus_8x8):
        def stream(seed):
            engine = WalkEngine(torus_8x8, seed=seed, record_paths=False)
            out = []
            for i in range(4):
                res = engine.walks([i, i + 9, i + 20], 256)
                out.append((tuple(res.destinations), res.rounds))
            return out, engine.network.rounds

        a, a_rounds = stream(13)
        b, b_rounds = stream(13)
        assert a == b and a_rounds == b_rounds
        c, _ = stream(14)
        assert a != c


class TestBatchedGetMoreWalks:
    def test_single_source_matches_legacy_refill(self, torus_8x8):
        # One source: the batched entry must degenerate to the legacy
        # single-source protocol — identical tokens AND identical charge.
        net_a = Network(torus_8x8, seed=0)
        net_b = Network(torus_8x8, seed=0)
        store_a, store_b = WalkStore(), WalkStore()
        rounds_a = get_more_walks(net_a, store_a, 5, 6, 8, make_rng(99))
        rounds_b = get_more_walks_batch(
            net_b, store_b, np.array([5]), np.array([6]), 8, make_rng(99)
        )
        assert rounds_a == rounds_b
        assert net_a.rounds == net_b.rounds
        assert net_a.messages_sent == net_b.messages_sent
        toks_a = sorted((t.source, t.length, t.destination) for t in store_a.iter_all())
        toks_b = sorted((t.source, t.length, t.destination) for t in store_b.iter_all())
        assert toks_a == toks_b

    def test_multi_source_single_sweep_beats_serial_refills(self, torus_8x8):
        sources = np.array([0, 9, 33, 48], dtype=np.int64)
        counts = np.array([4, 4, 4, 4], dtype=np.int64)
        net_batch = Network(torus_8x8, seed=0)
        store_batch = WalkStore()
        rounds_batch = get_more_walks_batch(
            net_batch, store_batch, sources, counts, 8, make_rng(7)
        )
        net_serial = Network(torus_8x8, seed=0)
        store_serial = WalkStore()
        rng = make_rng(7)
        rounds_serial = sum(
            get_more_walks(net_serial, store_serial, int(s), int(c), 8, rng)
            for s, c in zip(sources, counts)
        )
        assert store_batch.total_unused() == store_serial.total_unused() == int(counts.sum())
        assert rounds_batch < rounds_serial
        # Token lengths stay uniform on [lam, 2*lam-1] per source.
        for tok in store_batch.iter_all():
            assert 8 <= tok.length <= 15

    def test_batch_validates_inputs(self, torus_8x8):
        net = Network(torus_8x8, seed=0)
        with pytest.raises(WalkError, match="equal length"):
            get_more_walks_batch(net, WalkStore(), np.array([0, 1]), np.array([1]), 4, make_rng(0))
        with pytest.raises(WalkError, match=">= 1"):
            get_more_walks_batch(net, WalkStore(), np.array([0]), np.array([0]), 4, make_rng(0))


class TestUniformTokenDraw:
    def test_draw_law_is_uniform_over_unused(self, torus_8x8):
        # sample_uniform_token must implement Lemma A.2's law: uniform over
        # every unused token of the source, regardless of holder layout.
        net = Network(torus_8x8, seed=0)
        store = WalkStore()
        get_more_walks(net, store, 3, 12, 4, make_rng(5))
        ids = [t.token_id for t in store.iter_all()]
        rng = make_rng(11)
        counts = dict.fromkeys(ids, 0)
        trials = 3000
        for _ in range(trials):
            probe = WalkStore()
            # Rebuild an identical pool cheaply: same records re-added.
            for t in store.iter_all():
                probe.add(t)
            rec = probe.sample_uniform_token(3, rng)
            counts[rec.token_id] += 1
        expected = {tid: 1.0 / len(ids) for tid in ids}
        assert not chi_square_goodness_of_fit(counts, expected).rejects_at(1e-4)

    def test_draw_on_empty_source_returns_none(self):
        store = WalkStore()
        assert store.sample_uniform_token(0, make_rng(0)) is None
