"""Tests for the ``WalkEngine`` session API and the persistent Phase-1 pool.

The load-bearing claims:

* **Exactness under reuse** — N successive pooled ``engine.walk()`` calls
  produce endpoints distributed exactly as ``P^ℓ`` (chi-square), because
  every consumed token is an unused, independently generated short walk.
* **No double consumption** — a token id appears in at most one result's
  stitched segments across the whole query stream.
* **Amortization** — a long query stream triggers O(1) full Phase-1
  preparations (``stats().full_preparations``); dry connectors refill via
  GET-MORE-WALKS, charged to the ``"pool-refill"`` ledger phase.
* **Determinism** — a fixed-seed engine replays the entire stream
  (destinations *and* round bills) identically.
* **Wrapper fidelity** — the legacy free functions are thin wrappers over
  a one-shot engine (``tests/test_ledger_golden.py`` pins them to the seed
  implementation bit-for-bit; here we pin wrapper ≡ explicit engine).
"""

from __future__ import annotations

import json

import pytest

from repro.congest import Network
from repro.engine import ALGORITHMS, EngineStats, ResultBase, WalkEngine, WalkRequest
from repro.errors import WalkError
from repro.graphs import complete_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import (
    ManyWalksResult,
    WalkResult,
    many_random_walks,
    naive_random_walk,
    podc09_random_walk,
    single_random_walk,
)


class TestPoolReuse:
    def test_endpoint_distribution_chi_square(self):
        # 400 successive pooled queries on ONE engine: endpoints must follow
        # the exact P^l law even though they all drain the same token pool
        # (each consumed token is an unused independent short walk, so the
        # stitched concatenation stays an exact sample).
        g = complete_graph(6)
        length = 40
        dist = WalkSpectrum(g).distribution(0, length)
        engine = WalkEngine(g, seed=1234, record_paths=False)
        endpoints = [engine.walk(0, length).destination for _ in range(400)]
        assert engine.stats().full_preparations == 1
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_tokens_never_double_consumed(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=5)
        seen: set[int] = set()
        for i in range(20):
            res = engine.walk(i % torus_8x8.n, 256)
            ids = [seg.token_id for seg in res.segments]
            assert len(ids) == len(set(ids))
            assert not seen.intersection(ids), "token re-stitched across queries"
            seen.update(ids)
        stats = engine.stats()
        assert stats.tokens_consumed == len(seen)
        assert stats.tokens_consumed + stats.pool_unused == stats.tokens_prepared

    def test_hundred_queries_one_preparation(self, torus_8x8):
        # Acceptance criterion: a 100-query stream does O(1) full Phase-1
        # preparations; everything else is incremental refill.
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False)
        for i in range(100):
            res = engine.walk(i % torus_8x8.n, 256)
            assert res.mode == "stitched"
            assert res.rounds > 0
        stats = engine.stats()
        assert stats.queries == 100
        assert stats.full_preparations == 1
        assert stats.tokens_consumed == stats.tokens_prepared - stats.pool_unused

    def test_refills_charged_to_pool_refill_phase(self):
        # A deliberately starved pool (tiny eta) must refill via
        # GET-MORE-WALKS and charge the refill protocol to its own phase.
        g = torus_graph(6, 6)
        engine = WalkEngine(g, seed=17, eta=0.05, record_paths=False)
        total_gmw = 0
        for _ in range(10):
            res = engine.walk(3, 400)
            total_gmw += res.get_more_walks_calls
        assert total_gmw > 0
        stats = engine.stats()
        assert stats.refills == total_gmw
        assert stats.phase_rounds.get("pool-refill", 0) > 0
        assert "get-more-walks" not in stats.phase_rounds

    def test_fixed_seed_engine_replays_identically(self, torus_8x8):
        def stream(seed):
            engine = WalkEngine(torus_8x8, seed=seed, record_paths=False)
            out = []
            for i in range(8):
                res = engine.walk(i % 7, 200)
                out.append((res.destination, res.rounds))
            return out, engine.network.rounds, engine.stats()

        a_out, a_rounds, a_stats = stream(11)
        b_out, b_rounds, b_stats = stream(11)
        assert a_out == b_out
        assert a_rounds == b_rounds
        assert a_stats == b_stats
        c_out, _, _ = stream(12)
        assert a_out != c_out  # different seed actually changes the stream

    def test_per_request_rounds_sum_to_ledger(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=3, record_paths=False)
        total = sum(engine.walk(i, 256).rounds for i in range(12))
        assert total == engine.network.rounds

    def test_short_query_served_naively_pool_untouched(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=2, record_paths=False)
        engine.prepare(length_hint=256)
        unused_before = engine.pool.unused
        res = engine.walk(0, 5)  # shorter than lambda: one segment would overshoot
        assert res.mode == "naive"
        assert engine.pool.unused == unused_before
        long = engine.walk(0, 256)
        assert long.mode == "stitched"


class TestPoolLifecycle:
    def test_cold_short_query_skips_preparation(self, torus_8x8):
        # A query whose derived lambda >= l would never touch the pool, so a
        # cold engine must not pay Theta(eta*m) Phase 1 for it (the
        # use_naive policy the one-shot path honors).
        engine = WalkEngine(torus_8x8, seed=1)
        res = engine.walk(0, 2)
        assert res.mode == "naive"
        stats = engine.stats()
        assert stats.full_preparations == 0 and stats.tokens_prepared == 0
        assert "phase1" not in res.phase_rounds
        # A long query afterwards prepares once, as usual.
        assert engine.walk(0, 256).mode == "stitched"
        assert engine.stats().full_preparations == 1

    def test_endpoint_query_keeps_pool_path_homogeneous(self):
        # An endpoint-only query on a path-recording pool must not build
        # trajectories it drops NOR inject pathless refill tokens that a
        # later trajectory query would choke on.
        g = torus_graph(6, 6)
        engine = WalkEngine(g, seed=17, eta=0.05, record_paths=True)
        refills = 0
        for _ in range(6):
            res = engine.walk(3, 400, record_paths=False)
            assert res.positions is None
            refills += res.get_more_walks_calls
        assert refills > 0  # the starved pool did refill mid-stream
        traj = engine.walk(3, 400, record_paths=True)
        traj.verify_positions(g)

    def test_explicit_prepare_then_queries(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=9)
        pool = engine.prepare(length_hint=256)
        assert pool.lam >= 1 and pool.unused == pool.store.tokens_created
        res = engine.walk(4, 256)
        assert res.lam == pool.lam
        assert engine.stats().full_preparations == 1

    def test_prepare_needs_lam_or_hint(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=0)
        with pytest.raises(WalkError, match="lam= or length_hint="):
            engine.prepare()

    def test_lam_change_reprepares(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=4, record_paths=False)
        engine.walk(0, 256)
        engine.walk(0, 256, lam=12)
        stats = engine.stats()
        assert stats.full_preparations == 2
        assert stats.pool_lam == 12

    def test_trajectories_need_path_recording_pool(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=6, record_paths=False)
        engine.walk(0, 256)
        with pytest.raises(WalkError, match="record_paths=False"):
            engine.walk(0, 256, record_paths=True)
        engine.prepare(lam=engine.pool.lam, record_paths=True)
        res = engine.walk(0, 256, record_paths=True)
        res.verify_positions(torus_8x8)

    def test_pooled_rejects_params_override(self, torus_8x8):
        from repro.walks import single_walk_params

        engine = WalkEngine(torus_8x8, seed=0)
        params = single_walk_params(256, 16, n=64)
        with pytest.raises(WalkError, match="one-shot"):
            engine.walk(0, 256, params=params)
        res = engine.walk(0, 256, params=params, pooled=False)
        assert res.mode == "stitched"


class TestPooledBatch:
    def test_walks_batch_from_shared_pool(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=21, record_paths=False)
        res = engine.walks([0, 9, 33], 256)
        assert isinstance(res, ManyWalksResult)
        assert res.mode == "batch-stitched" and res.k == 3
        assert len(res.destinations) == 3
        assert engine.stats().full_preparations == 1
        # A second batch reuses the same pool.
        engine.walks([5, 6], 256)
        assert engine.stats().full_preparations == 1

    def test_serial_knob_keeps_per_source_loop(self, torus_8x8):
        # batch=False pins the PR-2 serial per-source stitching loop (the
        # comparison baseline the benches measure against).
        engine = WalkEngine(torus_8x8, seed=21, record_paths=False)
        res = engine.walks([0, 9, 33], 256, batch=False)
        assert res.mode == "stitched"
        assert len(res.destinations) == 3

    def test_batch_trajectories(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=22, record_paths=True)
        res = engine.walks([0, 1], 200, record_paths=True)
        assert res.positions is not None
        for traj, dest in zip(res.positions, res.destinations):
            assert len(traj) == 201 and traj[-1] == dest
        # Every batch-stitched trajectory is a genuine walk on the graph.
        for traj, src in zip(res.positions, res.sources):
            assert traj[0] == src
            for a, b in zip(traj[:-1], traj[1:]):
                assert torus_8x8.has_edge(int(a), int(b))


class TestAccountingFixes:
    """Regression tests for the PR-3 ledger/telemetry bugfixes."""

    def test_report_formula_identical_across_batch_branches(self, torus_8x8):
        # Both _serve_pooled_many branches must charge the pipelined
        # O(height + k) report convergecast.  The stitched path used to
        # charge deliver_sequential(depth[dest]) per destination — Σ depths,
        # measured 43 rounds for k=16 where naive-parallel charged
        # height + k = 21 for the very same report traffic.
        k = 16
        sources = [(i * 5) % torus_8x8.n for i in range(k)]

        stitched = WalkEngine(torus_8x8, seed=41, record_paths=False)
        res_stitched = stitched.walks(sources, 256)
        assert res_stitched.mode == "batch-stitched"
        height_s = stitched._tree_cache[sources[0]].height
        assert res_stitched.phase_rounds["report"] == height_s + k

        serial = WalkEngine(torus_8x8, seed=41, record_paths=False)
        res_serial = serial.walks(sources, 256, batch=False)
        assert res_serial.mode == "stitched"
        assert res_serial.phase_rounds["report"] == height_s + k

        naive = WalkEngine(torus_8x8, seed=41, record_paths=False)
        res_naive = naive.walks(sources, 2)  # λ ≥ ℓ → naive-parallel branch
        assert res_naive.mode == "naive-parallel"
        height_n = naive._tree_cache[sources[0]].height
        assert res_naive.phase_rounds["report"] == height_n + k
        # Identical formula (the trees are the same root on the same graph).
        assert height_n == height_s

    def test_pool_queries_ignores_bypassing_queries(self, torus_8x8):
        # pool.queries must count only queries actually served from tokens;
        # a λ ≥ ℓ query routed to the naive branch never touched the pool.
        engine = WalkEngine(torus_8x8, seed=2, record_paths=False)
        engine.prepare(length_hint=256)
        assert engine.pool.queries == 0
        res = engine.walk(0, 5)
        assert res.mode == "naive"
        assert engine.pool.queries == 0
        engine.walk(0, 256)
        assert engine.pool.queries == 1
        engine.walks([0, 9], 4)  # naive-parallel: bypasses the pool too
        assert engine.pool.queries == 1
        engine.walks([0, 9], 256)
        assert engine.pool.queries == 2

    def test_regenerate_counts_as_session_query(self, torus_8x8):
        # mixing_time/spanning_tree increment stats().queries; regenerate()
        # silently did not, undercounting session activity.
        engine = WalkEngine(torus_8x8, seed=19)
        res = engine.walk(0, 128, record_paths=True)
        assert engine.stats().queries == 1
        engine.regenerate(res)
        assert engine.stats().queries == 2


class TestRequestModel:
    def test_algorithm_validation(self):
        with pytest.raises(WalkError, match="unknown algorithm"):
            WalkRequest(sources=(0,), length=5, algorithm="quantum")
        with pytest.raises(WalkError, match="at least one source"):
            WalkRequest(sources=(), length=5)
        assert set(ALGORITHMS) == {"paper", "naive", "podc09", "metropolis"}

    def test_request_accessors_and_json(self):
        req = WalkRequest(sources=(3, 4), length=10, many=True)
        assert req.source == 3 and req.k == 2
        assert json.loads(json.dumps(req.to_dict()))["sources"] == [3, 4]

    def test_result_base_unifies_cost_fields(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        single = engine.walk(0, 128)
        batch = engine.walks([0, 1], 128)
        for res in (single, batch):
            assert isinstance(res, ResultBase)
            assert res.rounds > 0 and res.lam > 0 and res.phase_rounds
        payload = json.loads(json.dumps(single.to_dict()))
        assert payload["destination"] == single.destination
        assert payload["phase_rounds"] == single.phase_rounds

    def test_stats_json_roundtrip(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        engine.walk(0, 64)
        stats = engine.stats()
        assert isinstance(stats, EngineStats)
        assert json.loads(json.dumps(stats.to_dict()))["queries"] == 1


class TestBaselineDispatch:
    @pytest.mark.parametrize("algorithm,mode", [
        ("naive", "naive"),
        ("podc09", "podc09"),
        ("metropolis", "metropolis-naive"),
    ])
    def test_baselines_run_one_shot(self, torus_8x8, algorithm, mode):
        engine = WalkEngine(torus_8x8, seed=13)
        res = engine.walk(0, 200, algorithm=algorithm)
        assert res.mode == mode
        assert engine.pool is None  # baselines never build the pool

    def test_batch_requires_paper_algorithm(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=0)
        with pytest.raises(WalkError, match="single-walk requests only"):
            engine.walks([0, 1], 50, algorithm="naive")

    def test_metropolis_honors_record_paths(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=13)
        res = engine.walk(0, 100, algorithm="metropolis", record_paths=False)
        assert res.positions is None
        res = engine.walk(0, 100, algorithm="metropolis")
        assert res.positions is not None

    def test_unparameterized_algorithms_reject_params(self, torus_8x8):
        from repro.walks import single_walk_params

        engine = WalkEngine(torus_8x8, seed=0)
        params = single_walk_params(100, 16, n=64)
        for algorithm in ("naive", "metropolis"):
            with pytest.raises(WalkError, match="no params"):
                engine.walk(0, 100, algorithm=algorithm, params=params)


class TestWrapperFidelity:
    """Free functions ≡ explicit one-shot engine at identical seeds."""

    def test_single_wrapper_matches_engine(self, torus_8x8):
        a = single_random_walk(torus_8x8, 0, 256, seed=7, record_paths=False)
        b = WalkEngine(torus_8x8, seed=7).walk(0, 256, pooled=False, record_paths=False)
        assert (a.destination, a.rounds, a.phase_rounds) == (b.destination, b.rounds, b.phase_rounds)

    def test_many_wrapper_matches_engine(self, torus_8x8):
        a = many_random_walks(torus_8x8, [0, 5], 256, seed=3, lam=12)
        b = WalkEngine(torus_8x8, seed=3).walks([0, 5], 256, pooled=False, lam=12)
        assert (a.destinations, a.rounds) == (b.destinations, b.rounds)

    def test_baseline_wrappers_match_engine(self, torus_8x8):
        a = podc09_random_walk(torus_8x8, 0, 300, seed=2, record_paths=False)
        b = WalkEngine(torus_8x8, seed=2).walk(0, 300, algorithm="podc09", pooled=False, record_paths=False)
        assert (a.destination, a.rounds) == (b.destination, b.rounds)
        c = naive_random_walk(torus_8x8, 0, 300, seed=2, record_paths=False)
        d = WalkEngine(torus_8x8, seed=2).walk(
            0, 300, algorithm="naive", pooled=False, record_paths=False, report_to_source=False
        )
        assert (c.destination, c.rounds) == (d.destination, d.rounds)

    def test_wrapper_on_shared_network_accumulates(self, torus_8x8):
        net = Network(torus_8x8, seed=0)
        r1 = single_random_walk(torus_8x8, 0, 128, seed=1, network=net, record_paths=False)
        r2 = single_random_walk(torus_8x8, 1, 128, seed=2, network=net, record_paths=False)
        assert net.rounds == r1.rounds + r2.rounds


class TestApplications:
    def test_spanning_tree_on_session(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=31)
        res = engine.spanning_tree(root=0)
        assert res.mode == "rst"
        assert res.rounds > 0 and res.phase_rounds
        assert torus_8x8.subgraph_is_spanning_tree(set(res.edges))

    def test_mixing_time_on_session(self):
        g = complete_graph(8)
        engine = WalkEngine(g, seed=32)
        est = engine.mixing_time(0, samples=150)
        assert est.mode == "mixing"
        assert est.estimate >= 1 and est.rounds > 0 and est.phase_rounds
        # Both app calls and walk queries share one session ledger.
        before = engine.network.rounds
        engine.walk(0, 32, record_paths=False)
        assert engine.network.rounds > before

    def test_isinstance_result_base(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=33)
        assert isinstance(engine.spanning_tree(root=0), ResultBase)
        assert isinstance(engine.walk(0, 64, record_paths=False), WalkResult)
